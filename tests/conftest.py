"""Shared fixtures: small hand-built environments with known optima."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model import CpuNode, Job, NodeSpec, ResourceRequest, Slot, SlotPool


def make_node(
    node_id: int,
    performance: float = 4.0,
    price: float = 2.0,
    **spec_kwargs,
) -> CpuNode:
    """A node with explicit performance and price (test helper)."""
    return CpuNode(
        node_id=node_id,
        performance=performance,
        price_per_unit=price,
        spec=NodeSpec(**spec_kwargs) if spec_kwargs else NodeSpec(),
    )


def make_slot(
    node_id: int,
    start: float,
    end: float,
    performance: float = 4.0,
    price: float = 2.0,
) -> Slot:
    return Slot(make_node(node_id, performance, price), start, end)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def basic_request() -> ResourceRequest:
    """Two tasks of nominal length 20, generous budget."""
    return ResourceRequest(node_count=2, reservation_time=20.0, budget=1000.0)


@pytest.fixture
def basic_job(basic_request: ResourceRequest) -> Job:
    return Job(job_id="job-basic", request=basic_request)


@pytest.fixture
def uniform_pool() -> SlotPool:
    """Four identical nodes (perf 4, price 2), all free on [0, 100).

    A task of nominal length 20 runs 5 units and costs 10 on each node.
    """
    slots = [make_slot(i, 0.0, 100.0) for i in range(4)]
    return SlotPool.from_slots(slots)


@pytest.fixture
def heterogeneous_pool() -> SlotPool:
    """Five nodes with distinct speeds/prices and staggered availability.

    node 0: perf 2,  price 1  -> task(20) runs 10, costs 10, slot [0, 100)
    node 1: perf 4,  price 2  -> task(20) runs  5, costs 10, slot [0, 100)
    node 2: perf 5,  price 4  -> task(20) runs  4, costs 16, slot [10, 100)
    node 3: perf 10, price 9  -> task(20) runs  2, costs 18, slot [20, 100)
    node 4: perf 1,  price 0.5-> task(20) runs 20, costs 10, slot [0, 30)
    """
    slots = [
        make_slot(0, 0.0, 100.0, performance=2.0, price=1.0),
        make_slot(1, 0.0, 100.0, performance=4.0, price=2.0),
        make_slot(2, 10.0, 100.0, performance=5.0, price=4.0),
        make_slot(3, 20.0, 100.0, performance=10.0, price=9.0),
        make_slot(4, 0.0, 30.0, performance=1.0, price=0.5),
    ]
    return SlotPool.from_slots(slots)


def random_small_pool(
    rng: np.random.Generator,
    node_count: int = 8,
    horizon: float = 60.0,
) -> SlotPool:
    """A random small pool for property-style comparisons with Exhaustive."""
    slots = []
    for node_id in range(node_count):
        performance = float(rng.integers(1, 8))
        price = float(rng.uniform(0.5, 6.0))
        node = make_node(node_id, performance, price)
        start = float(rng.uniform(0.0, horizon / 2))
        end = start + float(rng.uniform(5.0, horizon - start))
        slots.append(Slot(node, start, end))
    return SlotPool.from_slots(slots)
