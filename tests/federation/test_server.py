"""End-to-end server/client tests over real loopback sockets."""

from __future__ import annotations

import asyncio

import pytest

from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.federation import (
    FederationClient,
    FederationClientError,
    FederationConfig,
    FederationServer,
    FederationTraceValidator,
    ShardManager,
)
from repro.federation.protocol import read_frame
from repro.service import ServiceConfig
from repro.simulation import JobGenerator


def make_server(shards=2, node_count=16, sinks=()):
    pool = (
        EnvironmentGenerator(EnvironmentConfig(node_count=node_count, seed=7))
        .generate()
        .slot_pool()
    )
    config = FederationConfig(
        shards=shards, service=ServiceConfig(workers=1)
    )
    return FederationServer(ShardManager(pool, config=config, sinks=sinks))


def run(coro):
    return asyncio.run(coro)


class TestLifecycleOps:
    def test_ping_and_advance(self):
        async def _run():
            server = make_server()
            await server.start()
            try:
                async with await FederationClient.connect(
                    port=server.port
                ) as client:
                    assert await client.ping() == 0.0
                    assert await client.advance(12.5) == 12.5
                    assert await client.ping() == 12.5
            finally:
                await server.stop()

        run(_run())

    def test_submit_status_cancel_stats_drain(self):
        validator = FederationTraceValidator()

        async def _run():
            server = make_server(sinks=[validator])
            await server.start()
            arrivals = list(JobGenerator(seed=3).iter_arrivals(10, rate=2.0))
            try:
                async with await FederationClient.connect(
                    port=server.port
                ) as client:
                    for when, job in arrivals:
                        response = await client.submit(job, at=when)
                        assert response["job_id"] == job.job_id
                    # At least one job should have been admitted somewhere.
                    stats = await client.stats()
                    assert stats["federation"]["submitted"] == 10
                    status = await client.status(arrivals[0][1].job_id)
                    assert status["state"] in ("shard", "coallocated", "unknown")
                    assert await client.status("job-nope") == {
                        "ok": True,
                        "job_id": "job-nope",
                        "state": "unknown",
                    }
                    assert await client.cancel("job-nope") is False
                    await client.drain()
                    stats = await client.stats()
                    assert stats["aggregate"]["scheduled"] > 0
                    await client.shutdown()
            finally:
                await server.stop()

        run(_run())
        validator.check(expect_drained=True)

    def test_stats_carries_scan_kernel_telemetry(self):
        """The ``stats`` wire op ships the scan kernel's dispatch
        counters, so clients can see whether serving ran vectorized
        without shelling into the server host."""

        async def _run():
            server = make_server()
            await server.start()
            try:
                async with await FederationClient.connect(
                    port=server.port
                ) as client:
                    before = (await client.stats())["scan_kernel"]
                    assert set(before) >= {
                        "vectorized",
                        "fallback",
                        "plans_built",
                        "plans_reused",
                    }
                    for when, job in JobGenerator(seed=9).iter_arrivals(
                        6, rate=2.0
                    ):
                        await client.submit(job, at=when)
                    await client.drain()
                    after = (await client.stats())["scan_kernel"]
                    assert all(
                        isinstance(value, int) and value >= before[key]
                        for key, value in after.items()
                    )
            finally:
                await server.stop()

        run(_run())

    def test_kill_shard_over_the_wire(self):
        validator = FederationTraceValidator()

        async def _run():
            server = make_server(shards=3, node_count=24, sinks=[validator])
            await server.start()
            try:
                async with await FederationClient.connect(
                    port=server.port
                ) as client:
                    for when, job in JobGenerator(seed=5).iter_arrivals(
                        12, rate=4.0
                    ):
                        await client.submit(job, at=when)
                    await client.kill_shard(1)
                    stats = await client.stats()
                    assert stats["federation"]["shard_losses"] == 1
                    assert not stats["shards"][1]["alive"]
                    await client.drain()
            finally:
                await server.stop()

        run(_run())
        validator.check(expect_drained=True)
        assert validator.summary()["dead_shards"] == [1]


class TestProtocolEdges:
    def test_unknown_op_is_reported_not_fatal(self):
        async def _run():
            server = make_server()
            await server.start()
            try:
                async with await FederationClient.connect(
                    port=server.port
                ) as client:
                    response = await client.request({"op": "florble"})
                    assert response["ok"] is False
                    assert "unknown op" in response["error"]
                    # The connection survives a rejected op.
                    assert await client.ping() == 0.0
            finally:
                await server.stop()

        run(_run())

    def test_malformed_submit_payloads(self):
        async def _run():
            server = make_server()
            await server.start()
            try:
                async with await FederationClient.connect(
                    port=server.port
                ) as client:
                    response = await client.request({"op": "submit"})
                    assert response["ok"] is False
                    assert "requires a 'job'" in response["error"]
                    # Typed helpers surface server errors as exceptions.
                    with pytest.raises(FederationClientError):
                        await client.kill_shard(99)
                    # Malformed job dicts surface as errors, not crashes.
                    response = await client.request(
                        {"op": "submit", "job": {"nope": 1}}
                    )
                    assert response["ok"] is False
                    assert "malformed job payload" in response["error"]
            finally:
                await server.stop()

        run(_run())

    def test_unframed_garbage_gets_error_frame_then_close(self):
        async def _run():
            server = make_server()
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                # A declared length far beyond MAX_FRAME.
                writer.write(b"\xff\xff\xff\xff garbage")
                await writer.drain()
                response = await read_frame(reader)
                assert response["ok"] is False
                assert await reader.read() == b""  # server closed
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        run(_run())

    def test_shutdown_op_stops_serve_until_shutdown(self):
        async def _run():
            server = make_server()
            await server.start()
            port = server.port
            serve_task = asyncio.create_task(server.serve_until_shutdown())
            async with await FederationClient.connect(port=port) as client:
                await client.shutdown()
            await asyncio.wait_for(serve_task, timeout=5.0)

        run(_run())


class TestBackpressure:
    def test_many_clients_interleave_on_one_federation(self):
        async def _run():
            server = make_server(shards=2, node_count=24)
            await server.start()
            arrivals = list(JobGenerator(seed=9).iter_arrivals(20, rate=2.0))
            try:
                clients = [
                    await FederationClient.connect(port=server.port)
                    for _ in range(4)
                ]
                try:
                    async def drive(client, chunk):
                        results = []
                        for _, job in chunk:
                            results.append(await client.submit(job))
                        return results

                    chunks = [arrivals[i::4] for i in range(4)]
                    all_results = await asyncio.gather(
                        *(
                            drive(client, chunk)
                            for client, chunk in zip(clients, chunks)
                        )
                    )
                    assert sum(len(r) for r in all_results) == 20
                    stats = await clients[0].stats()
                    assert stats["federation"]["submitted"] == 20
                finally:
                    for client in clients:
                        await client.close()
            finally:
                await server.stop()
            return server.connections_served

        assert run(_run()) == 4
