"""FederationTraceValidator: demux, intake machine, and ledger laws."""

from __future__ import annotations

import pytest

from repro.federation.tracing import FederationTraceValidator, FedJobState
from repro.service.events import Event, EventType
from repro.service.tracing import TraceInvariantError


def ev(seq, type_, job_id=None, time=0.0, **fields):
    return Event(seq=seq, type=type_, time=time, job_id=job_id, fields=fields)


def routed_pair(seq, job_id, shard):
    """A fed SUBMITTED/ROUTED pair plus the shard's own admission."""
    return [
        ev(seq, EventType.SUBMITTED, job_id),
        ev(seq + 1, EventType.SUBMITTED, job_id, shard_id=shard),
        ev(seq + 2, EventType.ADMITTED, job_id, shard_id=shard),
        ev(seq + 3, EventType.ROUTED, job_id, shard=shard, policy="hash"),
    ]


class TestDemultiplexing:
    def test_shard_events_replay_per_shard(self):
        validator = FederationTraceValidator().observe_all(
            routed_pair(0, "job-1", 0) + routed_pair(4, "job-2", 1)
        )
        assert sorted(validator.shard_validators) == [0, 1]
        assert validator.counts[EventType.ROUTED] == 2
        validator.check()

    def test_routed_without_shard_admission_fails(self):
        validator = FederationTraceValidator().observe_all(
            [
                ev(0, EventType.SUBMITTED, "job-1"),
                ev(1, EventType.ROUTED, "job-1", shard=0),
            ]
        )
        with pytest.raises(TraceInvariantError, match="shard admissions"):
            validator.check()


class TestIntakeMachine:
    def test_rejection_resolves_a_submission(self):
        validator = FederationTraceValidator().observe_all(
            [
                ev(0, EventType.SUBMITTED, "job-1"),
                ev(1, EventType.REJECTED, "job-1", reason="budget_infeasible"),
            ]
        )
        validator.check(expect_drained=True)
        assert validator.job_states()["job-1"] is FedJobState.REJECTED

    def test_unresolved_submission_fails(self):
        validator = FederationTraceValidator().observe_all(
            [ev(0, EventType.SUBMITTED, "job-1")]
        )
        with pytest.raises(TraceInvariantError, match="never reached"):
            validator.check()

    def test_illegal_transition_is_a_violation(self):
        validator = FederationTraceValidator().observe_all(
            [ev(0, EventType.DROPPED, "job-1", cause="shard_lost")]
        )
        with pytest.raises(TraceInvariantError, match="illegal federation"):
            validator.check()

    def test_duplicate_submission_must_be_rejected(self):
        events = routed_pair(0, "job-1", 0) + [
            ev(4, EventType.SUBMITTED, "job-1"),
            ev(5, EventType.REJECTED, "job-1", reason="duplicate_id"),
        ]
        validator = FederationTraceValidator().observe_all(events)
        validator.check()
        # The original routing survives the duplicate episode.
        assert validator.job_states()["job-1"] is FedJobState.ROUTED

    def test_duplicate_followed_by_non_reject_fails(self):
        events = routed_pair(0, "job-1", 0) + [
            ev(4, EventType.SUBMITTED, "job-1"),
            ev(5, EventType.ROUTED, "job-1", shard=0),
        ]
        validator = FederationTraceValidator().observe_all(events)
        with pytest.raises(TraceInvariantError, match="resubmitted"):
            validator.check()


class TestCoallocationLedger:
    def _coalloc(self, seq, job_id, node_seconds=100.0):
        return [
            ev(seq, EventType.SUBMITTED, job_id),
            ev(
                seq + 1,
                EventType.COALLOCATED,
                job_id,
                shards=[0, 1],
                node_seconds=node_seconds,
            ),
        ]

    def test_retire_balances_the_ledger(self):
        events = self._coalloc(0, "job-1") + [
            ev(2, EventType.RETIRED, "job-1", released_node_seconds=100.0)
        ]
        validator = FederationTraceValidator().observe_all(events)
        validator.check(expect_drained=True)
        assert validator.coalloc_released_node_seconds == pytest.approx(100.0)

    def test_over_release_is_a_violation(self):
        events = self._coalloc(0, "job-1") + [
            ev(2, EventType.RETIRED, "job-1", released_node_seconds=150.0)
        ]
        validator = FederationTraceValidator().observe_all(events)
        with pytest.raises(TraceInvariantError, match="exceed"):
            validator.check()

    def test_drained_trace_must_not_leak_committed_seconds(self):
        events = self._coalloc(0, "job-1") + [
            ev(2, EventType.RETIRED, "job-1", released_node_seconds=60.0)
        ]
        validator = FederationTraceValidator().observe_all(events)
        validator.check()  # fine while running ...
        with pytest.raises(TraceInvariantError, match="leaks"):
            validator.check(expect_drained=True)  # ... a leak once drained

    def test_revocation_splits_released_and_forfeited(self):
        events = (
            self._coalloc(0, "job-1")
            + [ev(2, EventType.SHARD_LOST, shard=1, evacuated=0)]
            + [
                ev(
                    3,
                    EventType.REVOKED,
                    "job-1",
                    cause="shard_lost",
                    shard=1,
                    node_seconds=40.0,
                    released_node_seconds=60.0,
                ),
                ev(4, EventType.DROPPED, "job-1", cause="shard_lost"),
            ]
        )
        validator = FederationTraceValidator().observe_all(events)
        validator.check(expect_drained=True)
        assert validator.coalloc_forfeited_node_seconds == pytest.approx(40.0)
        assert validator.coalloc_released_node_seconds == pytest.approx(60.0)
        assert validator.dead_shards == {1}

    def test_displaced_job_left_hanging_fails(self):
        events = (
            self._coalloc(0, "job-1")
            + [
                ev(
                    2,
                    EventType.REVOKED,
                    "job-1",
                    node_seconds=40.0,
                    released_node_seconds=60.0,
                )
            ]
        )
        validator = FederationTraceValidator().observe_all(events)
        with pytest.raises(TraceInvariantError, match="displaced"):
            validator.check()


class TestShardLoss:
    def test_double_shard_loss_is_a_violation(self):
        events = [
            ev(0, EventType.SHARD_LOST, shard=0, evacuated=0),
            ev(1, EventType.SHARD_LOST, shard=0, evacuated=0),
        ]
        validator = FederationTraceValidator().observe_all(events)
        with pytest.raises(TraceInvariantError, match="lost twice"):
            validator.check()

    def test_dead_shards_skip_drained_laws(self):
        # Shard 0 admits a job and dies mid-flight: its sub-trace is not
        # drained, but the federation dropped the job, so drained-mode
        # check must still pass.
        events = routed_pair(0, "job-1", 0) + [
            ev(4, EventType.SHARD_LOST, shard=0, evacuated=1),
            ev(5, EventType.DROPPED, "job-1", cause="shard_lost", shard=0),
        ]
        validator = FederationTraceValidator().observe_all(events)
        validator.check(expect_drained=True)

    def test_summary_reports_both_tiers(self):
        validator = FederationTraceValidator().observe_all(
            routed_pair(0, "job-1", 0)
        )
        summary = validator.summary()
        assert summary["routed"] == 1
        assert summary["shards"][0]["admitted"] == 1
        assert summary["violations"] == 0
