"""Placement policies: deterministic, total, and estimate-driven."""

from __future__ import annotations

import zlib
from types import SimpleNamespace

import pytest

from repro.core import Criterion
from repro.federation.router import (
    CriterionAwarePolicy,
    HashPolicy,
    LeastLoadedPolicy,
    earliest_fit_estimate,
    make_policy,
    stable_hash,
)
from repro.model import Job, ResourceRequest, SlotPool
from repro.model.errors import ConfigurationError
from tests.conftest import make_slot


def fake_shard(shard_id, pool=None, queue_depth=0, active_count=0):
    """Shard stand-in: the policies only touch broker stats and pool."""
    broker = SimpleNamespace(
        queue_depth=queue_depth, active_count=active_count, pool=pool
    )
    return SimpleNamespace(shard_id=shard_id, broker=broker)


def job(job_id="job-x", node_count=2, reservation=20.0, budget=1000.0):
    return Job(
        job_id=job_id,
        request=ResourceRequest(
            node_count=node_count,
            reservation_time=reservation,
            budget=budget,
        ),
    )


class TestStableHash:
    def test_matches_crc32(self):
        assert stable_hash("job-1") == zlib.crc32(b"job-1")

    def test_is_process_stable(self):
        # The exact value is part of the replay contract.
        assert stable_hash("job-1") == 1279408703


class TestHashPolicy:
    def test_rotation_covers_all_shards(self):
        shards = [fake_shard(i) for i in range(5)]
        order = HashPolicy().order(job("job-7"), shards)
        assert sorted(s.shard_id for s in order) == [0, 1, 2, 3, 4]

    def test_primary_is_crc_modulo(self):
        shards = [fake_shard(i) for i in range(3)]
        order = HashPolicy().order(job("job-7"), shards)
        assert order[0].shard_id == stable_hash("job-7") % 3
        # ... and the fallback is the rotation from there.
        expected = [(order[0].shard_id + step) % 3 for step in range(3)]
        assert [s.shard_id for s in order] == expected

    def test_empty_shard_list(self):
        assert HashPolicy().order(job(), []) == []


class TestLeastLoadedPolicy:
    def test_orders_by_backlog_then_id(self):
        shards = [
            fake_shard(0, queue_depth=3, active_count=1),
            fake_shard(1, queue_depth=0, active_count=1),
            fake_shard(2, queue_depth=1, active_count=0),
        ]
        order = LeastLoadedPolicy().order(job(), shards)
        assert [s.shard_id for s in order] == [1, 2, 0]

    def test_tie_breaks_on_shard_id(self):
        shards = [fake_shard(2), fake_shard(0), fake_shard(1)]
        order = LeastLoadedPolicy().order(job(), shards)
        assert [s.shard_id for s in order] == [0, 1, 2]


class TestEarliestFitEstimate:
    def test_nth_earliest_node_start(self):
        # perf 4 -> a 20-unit task runs 5 time units on either node.
        pool = SlotPool.from_slots(
            [make_slot(0, 0.0, 100.0), make_slot(1, 20.0, 100.0)]
        )
        estimate = earliest_fit_estimate(job(node_count=2).request, pool)
        assert estimate == pytest.approx(20.0)

    def test_too_few_nodes_is_none(self):
        pool = SlotPool.from_slots([make_slot(0, 0.0, 100.0)])
        assert earliest_fit_estimate(job(node_count=2).request, pool) is None

    def test_short_slots_do_not_count(self):
        # 1 time unit of free time cannot host a 5-unit task.
        pool = SlotPool.from_slots(
            [make_slot(0, 0.0, 100.0), make_slot(1, 0.0, 1.0)]
        )
        assert earliest_fit_estimate(job(node_count=2).request, pool) is None


class TestCriterionAwarePolicy:
    def test_time_criterion_prefers_earlier_fit(self):
        early = SlotPool.from_slots(
            [make_slot(0, 0.0, 100.0), make_slot(1, 0.0, 100.0)]
        )
        late = SlotPool.from_slots(
            [make_slot(2, 50.0, 100.0), make_slot(3, 50.0, 100.0)]
        )
        shards = [fake_shard(0, pool=late), fake_shard(1, pool=early)]
        order = CriterionAwarePolicy(Criterion.START_TIME).order(job(), shards)
        assert [s.shard_id for s in order] == [1, 0]

    def test_cost_criterion_prefers_cheaper_shard(self):
        cheap = SlotPool.from_slots(
            [make_slot(0, 0.0, 100.0, price=1.0), make_slot(1, 0.0, 100.0, price=1.0)]
        )
        dear = SlotPool.from_slots(
            [make_slot(2, 0.0, 100.0, price=9.0), make_slot(3, 0.0, 100.0, price=9.0)]
        )
        shards = [fake_shard(0, pool=dear), fake_shard(1, pool=cheap)]
        order = CriterionAwarePolicy(Criterion.COST).order(job(), shards)
        assert [s.shard_id for s in order] == [1, 0]

    def test_hopeless_shards_come_last_not_never(self):
        fits = SlotPool.from_slots(
            [make_slot(0, 0.0, 100.0), make_slot(1, 0.0, 100.0)]
        )
        hopeless = SlotPool.from_slots([make_slot(2, 0.0, 100.0)])
        shards = [fake_shard(0, pool=hopeless), fake_shard(1, pool=fits)]
        order = CriterionAwarePolicy(Criterion.START_TIME).order(job(), shards)
        assert [s.shard_id for s in order] == [1, 0]


class TestMakePolicy:
    def test_all_names_resolve(self):
        for name in ("hash", "least-loaded", "criterion"):
            assert make_policy(name, Criterion.COST).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_policy("random", Criterion.COST)
