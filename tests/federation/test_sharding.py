"""Partitioning laws: shard pools are a true partition of the source.

Property-tested (hypothesis): node-seconds are conserved by the split,
each node's slots land wholly in one shard, and interleaved
``commit_window`` / ``release`` / ``trim_before`` on *different* shard
pools keep every per-node bucket index consistent.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation.sharding import partition_nodes, partition_pool
from repro.model import SlotPool, Window, WindowSlot
from repro.model.errors import ConfigurationError
from tests.conftest import make_slot


def build_pool(node_count: int, horizon: float = 100.0) -> SlotPool:
    return SlotPool.from_slots(
        make_slot(node_id, 0.0, horizon) for node_id in range(node_count)
    )


class TestPartitionNodes:
    def test_round_robin_deal(self):
        assert partition_nodes([5, 1, 3, 2, 4, 0], 2) == [
            [0, 2, 4],
            [1, 3, 5],
        ]

    def test_single_shard_keeps_everything(self):
        assert partition_nodes([2, 0, 1], 1) == [[0, 1, 2]]

    def test_rejects_more_shards_than_nodes(self):
        with pytest.raises(ConfigurationError):
            partition_nodes([0, 1], 3)

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ConfigurationError):
            partition_nodes([0, 0, 1], 2)

    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigurationError):
            partition_nodes([0], 0)


class TestPartitionPool:
    def test_rejects_unassigned_node(self):
        pool = build_pool(3)
        with pytest.raises(ConfigurationError):
            partition_pool(pool, [[0], [1]])

    def test_rejects_double_assignment(self):
        pool = build_pool(2)
        with pytest.raises(ConfigurationError):
            partition_pool(pool, [[0, 1], [1]])

    @given(
        node_count=st.integers(min_value=1, max_value=12),
        shards=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60)
    def test_partition_conserves_node_seconds(self, node_count, shards):
        if node_count < shards:
            return
        pool = build_pool(node_count)
        total_before = pool.total_free_time()
        nodes_before = pool.by_node()
        assignments = partition_nodes(sorted(nodes_before), shards)
        pools = partition_pool(pool, assignments)

        assert sum(p.total_free_time() for p in pools) == pytest.approx(
            total_before
        )
        seen: set[int] = set()
        for shard_id, shard_pool in enumerate(pools):
            shard_nodes = shard_pool.by_node()
            # Whole nodes only, matching the assignment exactly.
            assert set(shard_nodes) == set(assignments[shard_id])
            assert not seen.intersection(shard_nodes)
            seen.update(shard_nodes)
            shard_pool.assert_disjoint_per_node()
            for node_id, slots in shard_nodes.items():
                assert sum(s.length for s in slots) == pytest.approx(
                    sum(s.length for s in nodes_before[node_id])
                )
        assert seen == set(nodes_before)


def _commit_one(pool: SlotPool, length: float = 10.0):
    """Commit a reservation on the first long-enough slot, or ``None``."""
    for slot in pool:
        if slot.length >= length:
            window = Window(
                start=slot.start,
                slots=(
                    WindowSlot(
                        slot=slot,
                        required_time=length,
                        cost=length * slot.node.price_per_unit,
                    ),
                ),
            )
            pool.commit_window(window, mode="split")
            return window
    return None


class TestInterleavedShardOperations:
    """Commit/release/trim interleaved across shards, indexes intact."""

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),  # shard
                st.sampled_from(["commit", "release"]),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_commit_release_conserve_node_seconds(self, ops):
        pool = build_pool(6)
        total = pool.total_free_time()
        pools = partition_pool(pool, partition_nodes(range(6), 3))
        outstanding: dict[int, list[Window]] = {0: [], 1: [], 2: []}
        for shard, action in ops:
            if action == "commit":
                window = _commit_one(pools[shard])
                if window is not None:
                    outstanding[shard].append(window)
            elif outstanding[shard]:
                pools[shard].release(outstanding[shard].pop())
        committed = sum(
            w.processor_time for ws in outstanding.values() for w in ws
        )
        assert sum(p.total_free_time() for p in pools) + committed == (
            pytest.approx(total)
        )
        for shard_pool in pools:
            shard_pool.assert_disjoint_per_node()

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.sampled_from(["commit", "release", "trim"]),
                st.floats(min_value=0.0, max_value=120.0),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_bucket_indexes_stay_consistent_under_trim(self, ops):
        pools = partition_pool(
            build_pool(6), assignments := partition_nodes(range(6), 3)
        )
        outstanding: dict[int, list[Window]] = {0: [], 1: [], 2: []}
        clocks = [0.0, 0.0, 0.0]
        for shard, action, value in ops:
            if action == "commit":
                window = _commit_one(pools[shard])
                if window is not None:
                    outstanding[shard].append(window)
            elif action == "release":
                if outstanding[shard]:
                    pools[shard].release(outstanding[shard].pop())
            else:
                # Trims only move forward, like the shared virtual clock.
                clocks[shard] = max(clocks[shard], value)
                pools[shard].trim_before(clocks[shard])
            for shard_id, shard_pool in enumerate(pools):
                shard_pool.assert_disjoint_per_node()
                grouped = shard_pool.by_node()
                # The index serves exactly the slots iteration yields,
                # and never a node belonging to another shard.
                assert set(grouped) <= set(assignments[shard_id])
                indexed = sorted(
                    (s.node.node_id, s.start, s.end)
                    for slots in grouped.values()
                    for s in slots
                )
                iterated = sorted(
                    (s.node.node_id, s.start, s.end) for s in shard_pool
                )
                assert indexed == iterated
                assert shard_pool.node_count() == len(grouped)
