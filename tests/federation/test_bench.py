"""Federation benchmark and CLI smoke tests (small, real sockets)."""

from __future__ import annotations

import json

from repro.cli import main
from repro.federation.bench import bench_federation


class TestBenchFederation:
    def test_small_run_reports_latency_and_equivalence(self):
        payload = bench_federation(
            shard_counts=(1, 2), jobs=12, rate=2.0, node_count=12, seed=3
        )
        assert payload["bench"] == "federation"
        assert [row["shards"] for row in payload["results"]] == [1, 2]
        equivalence = payload["single_shard_equivalence"]
        assert equivalence["checked"]
        assert equivalence["federation"] == equivalence["reference"]
        for row in payload["results"]:
            latency = row["submit_to_schedule_s"]
            assert latency["samples"] == row["counts"]["aggregate"][
                "scheduled"
            ] + row["counts"]["federation"]["coallocated"]
            assert latency["p50"] <= latency["p99"] <= latency["max"]
            assert row["frames"] >= row["jobs"]
        assert isinstance(payload["host"]["cpu_limited"], bool)


class TestFederationCli:
    def test_serve_federation_self_drive(self, tmp_path, capsys):
        trace = tmp_path / "fed.jsonl"
        code = main(
            [
                "serve-federation",
                "--jobs",
                "10",
                "--nodes",
                "12",
                "--shards",
                "2",
                "--seed",
                "3",
                "--trace",
                str(trace),
                "--validate-trace",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "listening on 127.0.0.1:" in out
        assert "federation trace invariants OK" in out
        lines = trace.read_text().splitlines()
        assert lines
        for line in lines:
            json.loads(line)

    def test_serve_federation_json_stats(self, capsys):
        code = main(
            [
                "serve-federation",
                "--jobs",
                "8",
                "--nodes",
                "12",
                "--shards",
                "2",
                "--json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        stats = json.loads(out[out.index("{"):])
        assert stats["federation"]["submitted"] == 8

    def test_bench_federation_writes_payload(self, tmp_path, capsys):
        output = tmp_path / "BENCH_federation.json"
        code = main(
            [
                "bench-federation",
                "--shards",
                "1,2",
                "--jobs",
                "10",
                "--nodes",
                "12",
                "-o",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "submit→schedule" in out
        assert "matches the single broker" in out
        payload = json.loads(output.read_text())
        assert payload["bench"] == "federation"

    def test_parser_rejects_unknown_policy(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["serve-federation", "--policy", "bogus"])
