"""ShardManager behaviour: routing, equivalence, shard loss, draining."""

from __future__ import annotations

import pytest

from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.federation import (
    FederationConfig,
    FederationTraceValidator,
    ShardManager,
)
from repro.model import Job, ResourceRequest, SlotPool
from repro.model.errors import ConfigurationError, SchedulingError
from repro.service import BrokerService, ServiceConfig
from repro.simulation import JobGenerator
from tests.conftest import make_slot


def env_pool(node_count=16, seed=7) -> SlotPool:
    config = EnvironmentConfig(node_count=node_count, seed=seed)
    return EnvironmentGenerator(config).generate().slot_pool()


def arrivals(jobs=30, rate=2.0, seed=11):
    return list(JobGenerator(seed=seed).iter_arrivals(jobs, rate=rate))


def wide_job(job_id="job-wide", node_count=3):
    return Job(
        job_id=job_id,
        request=ResourceRequest(
            node_count=node_count, reservation_time=20.0, budget=1000.0
        ),
    )


class TestSingleShardEquivalence:
    def test_one_shard_hash_matches_plain_broker(self):
        """Federating must not change any scheduling decision at N=1."""
        service = ServiceConfig(workers=1)
        stream = arrivals(jobs=40)
        with BrokerService(env_pool(), config=service) as broker:
            reference = broker.process(iter(stream))
        config = FederationConfig(shards=1, policy="hash", service=service)
        with ShardManager(env_pool(), config=config) as manager:
            manager.process(iter(stream))
            shard_stats = manager.shards[0].broker.stats
        assert shard_stats.scheduled == reference.scheduled
        assert shard_stats.dropped == reference.dropped
        assert shard_stats.rejected == reference.rejected
        assert shard_stats.retired == reference.retired
        assert shard_stats.cycles == reference.cycles


class TestIntake:
    def test_routed_jobs_land_on_one_shard(self):
        config = FederationConfig(shards=2, service=ServiceConfig(workers=1))
        with ShardManager(env_pool(), config=config) as manager:
            decision = manager.submit(arrivals(jobs=1)[0][1])
            assert decision.admitted
            assert decision.shard_id in (0, 1)
            assert not decision.coallocated

    def test_duplicate_id_rejected_everywhere(self):
        config = FederationConfig(shards=2, service=ServiceConfig(workers=1))
        with ShardManager(env_pool(), config=config) as manager:
            job = arrivals(jobs=1)[0][1]
            assert manager.submit(job).admitted
            duplicate = manager.submit(job)
            assert not duplicate.admitted
            assert duplicate.reason == "duplicate_id"

    def test_coallocation_when_no_shard_is_wide_enough(self):
        # 4 nodes in 2 shards of 2: a 3-node job fits no single shard.
        pool = SlotPool.from_slots(
            make_slot(i, 0.0, 200.0) for i in range(4)
        )
        config = FederationConfig(shards=2, service=ServiceConfig(workers=1))
        validator = FederationTraceValidator()
        with ShardManager(pool, config=config, sinks=[validator]) as manager:
            decision = manager.submit(wide_job())
            assert decision.admitted and decision.coallocated
            assert len(decision.shard_ids) == 2
            located = manager.locate("job-wide")
            assert located == {
                "state": "coallocated",
                "shards": list(decision.shard_ids),
            }
            manager.drain()
            assert manager.stats.coalloc_retired == 1
        validator.check(expect_drained=True)

    def test_coallocation_disabled_rejects_wide_jobs(self):
        pool = SlotPool.from_slots(
            make_slot(i, 0.0, 200.0) for i in range(4)
        )
        config = FederationConfig(
            shards=2, coallocation=False, service=ServiceConfig(workers=1)
        )
        with ShardManager(pool, config=config) as manager:
            decision = manager.submit(wide_job())
            assert not decision.admitted
            assert decision.reason == "too_few_nodes"

    def test_cancel_reaches_the_owning_shard(self):
        # A huge batch trigger keeps the job queued at cancel time.
        config = FederationConfig(
            shards=2,
            service=ServiceConfig(workers=1, batch_size=100, max_wait=1e6),
        )
        with ShardManager(env_pool(), config=config) as manager:
            job = arrivals(jobs=1)[0][1]
            assert manager.submit(job).admitted
            assert manager.cancel(job.job_id)
            assert manager.locate(job.job_id) is None
            assert not manager.cancel(job.job_id)


class TestClockAndDrain:
    def test_advance_is_monotone(self):
        config = FederationConfig(shards=2, service=ServiceConfig(workers=1))
        with ShardManager(env_pool(), config=config) as manager:
            manager.advance_to(10.0)
            with pytest.raises(SchedulingError):
                manager.advance_to(5.0)

    def test_process_drains_everything(self):
        validator = FederationTraceValidator()
        config = FederationConfig(shards=3, service=ServiceConfig(workers=1))
        with ShardManager(
            env_pool(24), config=config, sinks=[validator]
        ) as manager:
            manager.process(iter(arrivals(jobs=30)))
            assert manager.is_idle()
            snapshot = manager.stats_snapshot()
        validator.check(expect_drained=True)
        federation = snapshot["federation"]
        assert federation["submitted"] == 30
        assert (
            federation["routed"]
            + federation["coallocated"]
            + federation["rejected"]
            == 30
        )

    def test_stats_snapshot_aggregate_sums_shards(self):
        config = FederationConfig(shards=2, service=ServiceConfig(workers=1))
        with ShardManager(env_pool(), config=config) as manager:
            manager.process(iter(arrivals(jobs=20)))
            snapshot = manager.stats_snapshot()
        for key in ("submitted", "scheduled", "dropped", "retired"):
            assert snapshot["aggregate"][key] == sum(
                row[key] for row in snapshot["shards"]
            )


class TestShardLoss:
    def _run_with_kill(self, kill_after=10, shards=3, jobs=30):
        validator = FederationTraceValidator()
        config = FederationConfig(
            shards=shards,
            # Large batch trigger: jobs pile up queued, so the kill hits
            # a shard with real in-flight state to evacuate.
            service=ServiceConfig(workers=1, batch_size=12, max_wait=50.0),
        )
        manager = ShardManager(env_pool(24), config=config, sinks=[validator])
        with manager:
            stream = arrivals(jobs=jobs)
            for when, job in stream[:kill_after]:
                manager.advance_to(when)
                manager.submit(job)
                manager.pump()
            evacuated = manager.kill_shard(1)
            for when, job in stream[kill_after:]:
                manager.advance_to(max(when, manager.now))
                manager.submit(job)
                manager.pump()
            manager.drain()
        return manager, validator, evacuated

    def test_lost_shard_jobs_rerouted_or_dropped_never_lost(self):
        manager, validator, evacuated = self._run_with_kill()
        validator.check(expect_drained=True)
        assert manager.stats.shard_losses == 1
        assert not manager.shards[1].alive
        # Every evacuated job reached a terminal or re-routed state:
        # the fed validator would flag any job stuck in "displaced".
        assert manager.stats.rerouted + manager.stats.dropped >= 0
        summary = validator.summary()
        assert summary["dead_shards"] == [1]
        assert summary["violations"] == 0

    def test_killing_dead_or_unknown_shard_raises(self):
        manager, _, _ = self._run_with_kill()
        with pytest.raises(SchedulingError):
            manager.kill_shard(1)
        with pytest.raises(ConfigurationError):
            manager.kill_shard(99)

    def test_submissions_continue_on_survivors(self):
        manager, validator, _ = self._run_with_kill()
        # The run above already drained; live shards still admit.
        job = Job(
            job_id="job-after-loss",
            request=ResourceRequest(
                node_count=2, reservation_time=20.0, budget=1000.0
            ),
        )
        decision = manager.submit(job)
        assert decision.admitted
        assert decision.shard_id != 1
        manager.drain()
        validator.check(expect_drained=True)

    def test_losing_every_shard_rejects_new_work(self):
        config = FederationConfig(shards=2, service=ServiceConfig(workers=1))
        with ShardManager(env_pool(), config=config) as manager:
            manager.kill_shard(0)
            manager.kill_shard(1)
            decision = manager.submit(arrivals(jobs=1)[0][1])
            assert not decision.admitted
            assert decision.reason == "no_live_shards"
