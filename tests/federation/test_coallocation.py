"""Cross-shard co-allocation: two-phase commit, rollback, shard death.

The headline law: a failed commit — or a shard death mid-flight — never
leaks node-seconds.  Every committed leg is either released back to a
live pool or explicitly accounted as forfeited.
"""

from __future__ import annotations

import pytest

from repro.federation.coallocation import CoAllocator
from repro.model import Job, ResourceRequest, SlotPool
from repro.model.errors import AllocationError
from repro.model.window import Window
from repro.service.config import ServiceConfig
from tests.conftest import make_slot


def two_node_pool(first_id: int) -> SlotPool:
    return SlotPool.from_slots(
        [make_slot(first_id, 0.0, 100.0), make_slot(first_id + 1, 0.0, 100.0)]
    )


def wide_job(job_id="job-wide", node_count=3, budget=1000.0) -> Job:
    return Job(
        job_id=job_id,
        request=ResourceRequest(
            node_count=node_count, reservation_time=20.0, budget=budget
        ),
    )


class FailingCommitPool(SlotPool):
    """A pool whose commit always fails — forces the rollback path."""

    def commit_window(self, window: Window, mode: str = "split") -> None:
        raise AllocationError("injected commit failure")


class TestTryPlace:
    def test_spans_shards_when_no_single_shard_fits(self):
        pools = {0: two_node_pool(0), 1: two_node_pool(2)}
        before = {i: p.total_free_time() for i, p in pools.items()}
        allocator = CoAllocator(ServiceConfig())
        entry = allocator.try_place(wide_job(), pools, now=0.0)
        assert entry is not None
        assert len(entry.shard_ids) == 2
        assert allocator.active_count == 1
        # Every leg's node-seconds actually left its shard's pool.
        for shard_id, window in entry.legs.items():
            assert pools[shard_id].total_free_time() == pytest.approx(
                before[shard_id] - window.processor_time
            )
        assert entry.committed_node_seconds == pytest.approx(
            sum(w.processor_time for w in entry.legs.values())
        )

    def test_infeasible_job_places_nowhere(self):
        pools = {0: two_node_pool(0), 1: two_node_pool(2)}
        allocator = CoAllocator(ServiceConfig())
        assert allocator.try_place(wide_job(node_count=9), pools, 0.0) is None
        assert allocator.active_count == 0

    def test_empty_pool_mapping(self):
        allocator = CoAllocator(ServiceConfig())
        assert allocator.try_place(wide_job(), {}, 0.0) is None


class TestRollback:
    def test_failed_commit_forfeits_zero_node_seconds(self):
        healthy = two_node_pool(0)
        poisoned = FailingCommitPool()
        for slot in two_node_pool(2):
            poisoned.add(slot, coalesce=False)
        pools = {0: healthy, 1: poisoned}
        before = healthy.total_free_time()
        allocator = CoAllocator(ServiceConfig())

        entry = allocator.try_place(wide_job(), pools, now=0.0)

        # Shard 0 committed first (sorted order), shard 1's commit blew
        # up — the rollback must have returned shard 0's legs in full.
        assert entry is None
        assert allocator.active_count == 0
        assert healthy.total_free_time() == pytest.approx(before)
        healthy.assert_disjoint_per_node()


class TestLifecycle:
    def test_release_due_returns_all_legs(self):
        pools = {0: two_node_pool(0), 1: two_node_pool(2)}
        before = {i: p.total_free_time() for i, p in pools.items()}
        allocator = CoAllocator(ServiceConfig())
        entry = allocator.try_place(wide_job(), pools, now=0.0)
        assert entry is not None

        assert allocator.release_due(pools, entry.completes_at - 1.0) == []
        retired = allocator.release_due(pools, entry.completes_at)
        assert [e.job.job_id for e in retired] == ["job-wide"]
        assert allocator.active_count == 0
        for shard_id, pool in pools.items():
            assert pool.total_free_time() == pytest.approx(before[shard_id])
            pool.assert_disjoint_per_node()

    def test_next_completion_tracks_earliest(self):
        pools = {0: two_node_pool(0), 1: two_node_pool(2)}
        allocator = CoAllocator(ServiceConfig())
        assert allocator.next_completion() is None
        entry = allocator.try_place(wide_job(), pools, now=0.0)
        assert allocator.next_completion() == pytest.approx(entry.completes_at)


class TestFailShard:
    def test_dead_legs_forfeited_survivors_released(self):
        pools = {0: two_node_pool(0), 1: two_node_pool(2)}
        before_live = pools[0].total_free_time()
        allocator = CoAllocator(ServiceConfig())
        entry = allocator.try_place(wide_job(), pools, now=0.0)
        assert entry is not None
        live_leg = entry.legs[0].processor_time
        dead_leg = entry.legs[1].processor_time

        results = allocator.fail_shard(1, live_pools={0: pools[0]})

        assert len(results) == 1
        victim, released, forfeited = results[0]
        assert victim.job.job_id == "job-wide"
        assert released == pytest.approx(live_leg)
        assert forfeited == pytest.approx(dead_leg)
        # The conservation split: released + forfeited == committed.
        assert released + forfeited == pytest.approx(
            entry.committed_node_seconds
        )
        assert pools[0].total_free_time() == pytest.approx(before_live)
        assert allocator.active_count == 0

    def test_unrelated_entries_survive(self):
        pools = {0: two_node_pool(0), 1: two_node_pool(2), 2: two_node_pool(4)}
        allocator = CoAllocator(ServiceConfig())
        entry = allocator.try_place(wide_job(node_count=3), pools, now=0.0)
        assert entry is not None
        untouched = [i for i in (0, 1, 2) if i not in entry.legs]
        if untouched:
            assert allocator.fail_shard(untouched[0], pools) == []
            assert allocator.active_count == 1
