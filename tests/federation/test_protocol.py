"""Frame protocol: roundtrips, bounds, and truncation behaviour."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.federation.protocol import (
    MAX_FRAME,
    ProtocolError,
    decode_payload,
    encode_frame,
    read_frame,
)


def read_from_bytes(data: bytes):
    """Drive read_frame against an in-memory stream."""

    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(_run())


class TestEncode:
    def test_roundtrip(self):
        message = {"op": "submit", "job": {"job_id": "j1"}, "at": 1.5}
        assert read_from_bytes(encode_frame(message)) == message

    def test_frame_layout_is_length_prefixed(self):
        frame = encode_frame({"op": "ping"})
        (length,) = struct.unpack("!I", frame[:4])
        assert length == len(frame) - 4
        assert decode_payload(frame[4:]) == {"op": "ping"}

    def test_canonical_json_is_deterministic(self):
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b

    def test_oversized_payload_refused(self):
        with pytest.raises(ProtocolError, match="exceeds MAX_FRAME"):
            encode_frame({"blob": "x" * MAX_FRAME})


class TestRead:
    def test_clean_eof_returns_none(self):
        assert read_from_bytes(b"") is None

    def test_partial_header_raises(self):
        with pytest.raises(ProtocolError, match="mid-header"):
            read_from_bytes(b"\x00\x00")

    def test_truncated_payload_raises(self):
        frame = encode_frame({"op": "ping"})
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_from_bytes(frame[:-3])

    def test_oversized_declared_length_refused_before_allocation(self):
        header = struct.pack("!I", MAX_FRAME + 1)
        with pytest.raises(ProtocolError, match="declared frame length"):
            read_from_bytes(header)

    def test_non_object_payload_refused(self):
        payload = b"[1, 2, 3]"
        frame = struct.pack("!I", len(payload)) + payload
        with pytest.raises(ProtocolError, match="JSON object"):
            read_from_bytes(frame)

    def test_undecodable_payload_refused(self):
        payload = b"\xff\xfe{"
        frame = struct.pack("!I", len(payload)) + payload
        with pytest.raises(ProtocolError, match="undecodable"):
            read_from_bytes(frame)

    def test_back_to_back_frames(self):
        async def _run():
            reader = asyncio.StreamReader()
            reader.feed_data(
                encode_frame({"n": 1}) + encode_frame({"n": 2})
            )
            reader.feed_eof()
            first = await read_frame(reader)
            second = await read_frame(reader)
            third = await read_frame(reader)
            return first, second, third

        assert asyncio.run(_run()) == ({"n": 1}, {"n": 2}, None)
