"""The tenancy layer across a federation: shared ledger, protocol ops.

The federation-level opt-in promise is pinned the same way as the
broker's: with ``ServiceConfig.tenancy`` unset the merged federation
trace is byte-identical to the pre-tenancy build.  Enabled, one
``TenancyManager`` is shared by every shard broker and the co-allocator,
so the credit laws are checked federation-wide (a tenant's spending
interleaves across shards) — including through a mid-run shard death.
"""

from __future__ import annotations

import asyncio
import hashlib
import json

import pytest

from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.federation import (
    FederationClient,
    FederationConfig,
    FederationServer,
    FederationTraceValidator,
    ShardManager,
)
from repro.service import CollectingSink, ServiceConfig, deterministic_trace
from repro.service.events import EventType
from repro.simulation.jobgen import JobGenerator
from repro.tenancy import TenancyConfig, TenantSpec

#: SHA-256 of the canonical 60-job seed-42 3-shard federation trace,
#: captured on the commit before the tenancy subsystem existed.
FEDERATION_FINGERPRINT = (
    "5538f46f78e30aa9a3c1ca3a0da79084cde9f610fc9c0f045595b6e58733fe19"
)


def make_pool():
    return (
        EnvironmentGenerator(EnvironmentConfig(node_count=24, seed=42))
        .generate()
        .slot_pool()
    )


def tenancy_config() -> TenancyConfig:
    return TenancyConfig(
        tenants=(
            TenantSpec("alice", credit=50_000.0),
            TenantSpec("bob", credit=50_000.0, weight=2.0),
        ),
        default_credit=30_000.0,
    )


class TestDisabledIsByteIdentical:
    def test_federation_trace_matches_the_pre_tenancy_fingerprint(self):
        sink = CollectingSink()
        manager = ShardManager(
            make_pool(),
            config=FederationConfig(
                shards=3, service=ServiceConfig(batch_size=4)
            ),
            sinks=[sink],
        )
        with manager:
            manager.process(JobGenerator(seed=42).iter_arrivals(60, rate=1.5))
        assert manager.tenancy is None
        canonical = json.dumps(
            deterministic_trace(sink.events), sort_keys=True
        )
        assert (
            hashlib.sha256(canonical.encode()).hexdigest()
            == FEDERATION_FINGERPRINT
        )


class TestSharedLedgerAcrossShards:
    def run_federation(self, kill: bool):
        sink = CollectingSink()
        validator = FederationTraceValidator()
        manager = ShardManager(
            make_pool(),
            config=FederationConfig(
                shards=3,
                service=ServiceConfig(
                    batch_size=4, tenancy=tenancy_config()
                ),
            ),
            sinks=[sink, validator],
        )
        with manager:
            arrivals = list(JobGenerator(seed=42).iter_arrivals(60, rate=1.5))
            for when, job in arrivals[:30]:
                manager.advance_to(when)
                manager.submit(job)
                manager.pump()
            if kill:
                manager.kill_shard(1)
            for when, job in arrivals[30:]:
                manager.advance_to(when)
                manager.submit(job)
                manager.pump()
            manager.drain()
        return manager, validator, sink

    def test_clean_run_balances_the_shared_ledger(self):
        manager, validator, _ = self.run_federation(kill=False)
        validator.check(expect_drained=True)
        manager.tenancy.ledger.assert_conservation()
        assert manager.tenancy.ledger.open_escrow() == 0.0
        assert validator.counts[EventType.CREDIT_DEBITED] > 0
        assert "credits" in validator.summary()

    def test_shard_death_refunds_are_conserved(self):
        manager, validator, sink = self.run_federation(kill=True)
        validator.check(expect_drained=True)
        ledger = manager.tenancy.ledger
        ledger.assert_conservation()
        assert ledger.open_escrow() == 0.0
        kinds = [event.type for event in sink.events]
        assert EventType.SHARD_LOST in kinds
        # The death path actually exercised the refund legs.
        assert validator.counts[EventType.CREDIT_REFUNDED] > 0
        snapshot = manager.stats_snapshot()
        assert "tenancy" in snapshot


class TestProtocolOps:
    def make_server(self, sinks=()):
        manager = ShardManager(
            make_pool(),
            config=FederationConfig(
                shards=2,
                service=ServiceConfig(
                    workers=1, batch_size=2, tenancy=tenancy_config()
                ),
            ),
            sinks=sinks,
        )
        return FederationServer(manager)

    def test_submit_carries_the_tenant_and_credits_report_it(self):
        async def _run():
            server = self.make_server()
            await server.start()
            try:
                async with await FederationClient.connect(
                    port=server.port
                ) as client:
                    for index, (when, job) in enumerate(
                        JobGenerator(seed=3).iter_arrivals(12, rate=3.0)
                    ):
                        response = await client.submit(
                            job,
                            at=when,
                            tenant_id="alice" if index % 2 else "bob",
                        )
                        assert response["job_id"] == job.job_id
                    await client.drain()
                    credits = await client.credits()
                    tenants = await client.tenants()
            finally:
                await server.stop()
            return credits, tenants

        credits, tenants = asyncio.run(_run())
        assert credits["ledger"]["open_escrow"] == pytest.approx(0.0)
        names = {row["name"] for row in tenants}
        assert {"alice", "bob"} <= names
        by_name = {row["name"]: row for row in tenants}
        assert by_name["bob"]["weight"] == 2.0
        for row in tenants:
            assert row["balance"] >= 0.0
            assert row["dominant_share"] >= 0.0

    def test_credits_op_errors_without_tenancy(self):
        async def _run():
            pool = make_pool()
            manager = ShardManager(
                pool,
                config=FederationConfig(
                    shards=2, service=ServiceConfig(workers=1)
                ),
            )
            server = FederationServer(manager)
            await server.start()
            try:
                async with await FederationClient.connect(
                    port=server.port
                ) as client:
                    from repro.federation import FederationClientError

                    with pytest.raises(FederationClientError):
                        await client.credits()
                    with pytest.raises(FederationClientError):
                        await client.tenants()
            finally:
                await server.stop()

        asyncio.run(_run())
