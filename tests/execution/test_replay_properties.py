"""Hypothesis property tests for the execution replay engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.disturbance import Preemption
from repro.execution.replay import _replay_node


@st.composite
def node_instances(draw):
    """Random per-node reservations plus preemption events."""
    reservation_count = draw(st.integers(min_value=1, max_value=4))
    reservations = []
    cursor = 0.0
    for index in range(reservation_count):
        gap = draw(st.floats(min_value=0.0, max_value=20.0, allow_nan=False))
        duration = draw(st.floats(min_value=1.0, max_value=30.0, allow_nan=False))
        start = cursor + gap
        reservations.append((f"job{index}", start, duration))
        cursor = start + duration
    preemption_count = draw(st.integers(min_value=0, max_value=5))
    preemptions = sorted(
        (
            Preemption(
                arrival=draw(
                    st.floats(min_value=0.0, max_value=cursor + 50.0, allow_nan=False)
                ),
                length=draw(st.floats(min_value=0.5, max_value=25.0, allow_nan=False)),
            )
            for _ in range(preemption_count)
        ),
        key=lambda event: event.arrival,
    )
    return reservations, preemptions


@given(instance=node_instances())
@settings(max_examples=200, deadline=None)
def test_tasks_never_finish_early(instance):
    reservations, preemptions = instance
    outcomes = _replay_node(reservations, preemptions)
    for outcome in outcomes:
        assert outcome.actual_start >= outcome.planned_start - 1e-9
        assert outcome.actual_end >= outcome.planned_end - 1e-9


@given(instance=node_instances())
@settings(max_examples=200, deadline=None)
def test_duration_conservation(instance):
    """Actual span = planned duration + preempted time (+ queueing shift)."""
    reservations, preemptions = instance
    outcomes = _replay_node(reservations, preemptions)
    by_job = {job_id: (start, duration) for job_id, start, duration in reservations}
    for outcome in outcomes:
        _, duration = by_job[outcome.job_id]
        assert outcome.actual_end - outcome.actual_start == (
            pytest_approx(duration + outcome.preempted_time)
        )


def pytest_approx(value):
    import pytest

    return pytest.approx(value, rel=1e-9, abs=1e-7)


@given(instance=node_instances())
@settings(max_examples=200, deadline=None)
def test_no_overlap_between_consecutive_tasks(instance):
    reservations, preemptions = instance
    outcomes = _replay_node(reservations, preemptions)
    ordered = sorted(outcomes, key=lambda outcome: outcome.actual_start)
    for earlier, later in zip(ordered, ordered[1:]):
        assert later.actual_start >= earlier.actual_end - 1e-9


@given(instance=node_instances())
@settings(max_examples=200, deadline=None)
def test_no_preemptions_means_planned_schedule(instance):
    reservations, _ = instance
    outcomes = _replay_node(reservations, [])
    for outcome in outcomes:
        assert outcome.actual_start == pytest_approx(outcome.planned_start)
        assert outcome.actual_end == pytest_approx(outcome.planned_end)
        assert outcome.preemption_count == 0


@given(instance=node_instances())
@settings(max_examples=150, deadline=None)
def test_preempted_time_bounded_by_total_events(instance):
    reservations, preemptions = instance
    outcomes = _replay_node(reservations, preemptions)
    total_preempted = sum(outcome.preempted_time for outcome in outcomes)
    total_available = sum(event.length for event in preemptions)
    assert total_preempted <= total_available + 1e-6
    total_hits = sum(outcome.preemption_count for outcome in outcomes)
    assert total_hits <= len(preemptions)
