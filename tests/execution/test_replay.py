"""Unit tests for the execution replay on non-dedicated resources."""

import numpy as np
import pytest

from repro.execution import PoissonDisturbances, Preemption, replay_execution
from repro.execution.replay import _replay_node
from repro.model import ConfigurationError, ResourceRequest, Window, WindowSlot
from tests.conftest import make_slot


def window(start=0.0, performance=4.0, node_ids=(0, 1), reservation=20.0):
    request = ResourceRequest(node_count=len(node_ids), reservation_time=reservation)
    legs = tuple(
        WindowSlot.for_request(
            make_slot(node_id, start, start + 500.0, performance, 2.0), request
        )
        for node_id in node_ids
    )
    return Window(start=start, slots=legs)


class TestDisturbanceModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonDisturbances(rate=-1.0)
        with pytest.raises(ConfigurationError):
            PoissonDisturbances(length_range=(0.0, 5.0))
        with pytest.raises(ConfigurationError):
            PoissonDisturbances(length_range=(10.0, 5.0))

    def test_zero_rate_no_events(self):
        model = PoissonDisturbances(rate=0.0)
        assert model.sample(1000.0, np.random.default_rng(0)) == []

    def test_events_sorted_and_in_horizon(self):
        model = PoissonDisturbances(rate=0.05, length_range=(5.0, 10.0))
        events = model.sample(500.0, np.random.default_rng(1))
        assert events
        arrivals = [event.arrival for event in events]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= arrival <= 500.0 for arrival in arrivals)
        assert all(5.0 <= event.length <= 10.0 for event in events)

    def test_rate_scales_count(self):
        rng = np.random.default_rng(2)
        sparse = np.mean(
            [len(PoissonDisturbances(rate=0.001).sample(1000.0, rng)) for _ in range(50)]
        )
        dense = np.mean(
            [len(PoissonDisturbances(rate=0.01).sample(1000.0, rng)) for _ in range(50)]
        )
        assert dense > 5 * sparse


class TestReplayNode:
    def test_undisturbed_task_runs_as_planned(self):
        (outcome,) = _replay_node([("job", 10.0, 5.0)], [])
        assert outcome.actual_start == 10.0
        assert outcome.actual_end == 15.0
        assert outcome.preempted_time == 0.0
        assert outcome.preemption_count == 0

    def test_mid_task_preemption_extends_it(self):
        (outcome,) = _replay_node(
            [("job", 0.0, 10.0)], [Preemption(arrival=4.0, length=3.0)]
        )
        assert outcome.actual_end == pytest.approx(13.0)
        assert outcome.preempted_time == pytest.approx(3.0)
        assert outcome.preemption_count == 1

    def test_preemption_after_task_ignored(self):
        (outcome,) = _replay_node(
            [("job", 0.0, 10.0)], [Preemption(arrival=11.0, length=3.0)]
        )
        assert outcome.actual_end == pytest.approx(10.0)

    def test_two_preemptions_accumulate(self):
        (outcome,) = _replay_node(
            [("job", 0.0, 10.0)],
            [Preemption(2.0, 1.0), Preemption(8.0, 2.0)],
        )
        # 2 run + 1 preempt + 5 run (clock 8) + 2 preempt + 3 run -> 13.
        assert outcome.actual_end == pytest.approx(13.0)
        assert outcome.preemption_count == 2

    def test_preemption_during_preemption_window(self):
        (outcome,) = _replay_node(
            [("job", 0.0, 10.0)],
            [Preemption(2.0, 5.0), Preemption(4.0, 2.0)],
        )
        # Second event arrives while suspended: adds its full length.
        assert outcome.actual_end == pytest.approx(17.0)

    def test_delayed_predecessor_pushes_successor(self):
        outcomes = _replay_node(
            [("a", 0.0, 10.0), ("b", 12.0, 5.0)],
            [Preemption(5.0, 10.0)],
        )
        first, second = outcomes
        assert first.actual_end == pytest.approx(20.0)
        assert second.actual_start == pytest.approx(20.0)
        assert second.actual_end == pytest.approx(25.0)


class TestReplayExecution:
    def test_no_disturbances_everything_on_time(self):
        assignments = {"j1": window(0.0), "j2": window(100.0, node_ids=(2, 3))}
        report = replay_execution(
            assignments, PoissonDisturbances(rate=0.0), np.random.default_rng(0)
        )
        assert report.mean_delay == pytest.approx(0.0)
        assert report.mean_slowdown == pytest.approx(1.0)
        assert report.disturbed_fraction == 0.0
        assert report.total_preemptions() == 0

    def test_disturbances_delay_jobs(self):
        assignments = {"j1": window(0.0, performance=1.0)}  # 20-unit tasks
        report = replay_execution(
            assignments,
            PoissonDisturbances(rate=0.05, length_range=(10.0, 20.0)),
            np.random.default_rng(3),
        )
        outcome = report.jobs["j1"]
        assert outcome.actual_finish >= outcome.planned_finish
        assert report.mean_slowdown >= 1.0

    def test_job_finish_is_max_of_tasks(self):
        assignments = {"j1": window(0.0, node_ids=(0, 1, 2))}
        report = replay_execution(
            assignments,
            PoissonDisturbances(rate=0.01, length_range=(10.0, 15.0)),
            np.random.default_rng(5),
        )
        outcome = report.jobs["j1"]
        assert outcome.actual_finish == pytest.approx(
            max(task.actual_end for task in outcome.tasks)
        )

    def test_reproducible_with_seed(self):
        assignments = {"j1": window(0.0), "j2": window(50.0, node_ids=(2, 3))}
        model = PoissonDisturbances(rate=0.02)
        a = replay_execution(assignments, model, np.random.default_rng(7))
        b = replay_execution(assignments, model, np.random.default_rng(7))
        assert a.mean_delay == pytest.approx(b.mean_delay)

    def test_empty_assignments(self):
        report = replay_execution({}, PoissonDisturbances(), np.random.default_rng(0))
        assert report.mean_delay == 0.0
        assert report.mean_slowdown == 1.0

    def test_more_node_hours_more_exposure(self):
        # A window on slow nodes (long tasks) accumulates more expected
        # preempted time than a compact window on fast nodes.
        model = PoissonDisturbances(rate=0.01, length_range=(10.0, 20.0))
        slow_delays, fast_delays = [], []
        for seed in range(40):
            slow = replay_execution(
                {"j": window(0.0, performance=1.0)},  # 20-unit tasks
                model,
                np.random.default_rng(seed),
            )
            fast = replay_execution(
                {"j": window(0.0, performance=10.0)},  # 2-unit tasks
                model,
                np.random.default_rng(seed),
            )
            slow_delays.append(slow.mean_delay)
            fast_delays.append(fast.mean_delay)
        assert np.mean(slow_delays) > np.mean(fast_delays)

    def test_outcome_properties(self):
        assignments = {"j1": window(10.0)}
        report = replay_execution(
            assignments, PoissonDisturbances(rate=0.0), np.random.default_rng(0)
        )
        outcome = report.jobs["j1"]
        assert outcome.delay == pytest.approx(0.0)
        assert outcome.preemption_count == 0
        assert outcome.slowdown == pytest.approx(1.0)
