"""Every ``bench-*`` CLI target must have a committed baseline.

The repo's convention is that each benchmark subcommand archives its
refuse-to-record-gated payload as ``BENCH_<name>.json`` at the repo
root, so regressions are diffable.  This guard walks the real argparse
tree — a new ``bench-foo`` subcommand without a committed
``BENCH_foo.json`` fails CI until the baseline is recorded.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parents[1]


def bench_commands() -> list[str]:
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return sorted(
                name
                for name in action.choices
                if name.startswith("bench-")
            )
    raise AssertionError("the CLI lost its subparsers")


def baseline_path(command: str) -> Path:
    return REPO_ROOT / f"BENCH_{command.removeprefix('bench-')}.json"


def test_the_cli_still_has_benchmarks():
    assert bench_commands()


@pytest.mark.parametrize("command", bench_commands())
def test_every_bench_target_has_a_committed_baseline(command):
    path = baseline_path(command)
    assert path.is_file(), (
        f"CLI target {command!r} has no committed baseline: run "
        f"`repro {command} -o {path.name}` and commit the result"
    )
    payload = json.loads(path.read_text())
    assert isinstance(payload, dict) and payload, (
        f"{path.name} is not a benchmark payload"
    )
