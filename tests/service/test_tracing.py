"""The trace validator: conservation laws over recorded event streams."""

from __future__ import annotations

import pytest

from repro.service import (
    CollectingSink,
    Event,
    EventType,
    JsonlSink,
    ServiceConfig,
    TraceConfig,
    TraceInvariantError,
    TraceValidator,
    deterministic_trace,
    load_trace,
    run_service_trace,
    validate_trace_file,
)


def make_events(*specs) -> list[Event]:
    """Build an event list from ``(type, time, job_id, fields)`` tuples."""
    events = []
    for seq, spec in enumerate(specs):
        event_type, time, job_id, fields = spec
        events.append(
            Event(seq=seq, type=event_type, time=time, job_id=job_id, fields=fields)
        )
    return events


def happy_path_events() -> list[Event]:
    """submit -> admit -> queue -> schedule -> retire, one clean job."""
    return make_events(
        (EventType.SUBMITTED, 0.0, "a", {}),
        (EventType.ADMITTED, 0.0, "a", {}),
        (EventType.QUEUED, 0.0, "a", {"deferrals": 0, "depth": 1}),
        (EventType.CYCLE_START, 1.0, None, {"cycle": 0}),
        (EventType.SCHEDULED, 1.0, "a", {"cycle": 0, "node_seconds": 40.0}),
        (EventType.CYCLE_END, 1.0, None, {"cycle": 0}),
        (EventType.RETIRED, 30.0, "a", {"released_node_seconds": 40.0}),
    )


class TestValidatorStateMachine:
    def test_happy_path_passes(self):
        validator = TraceValidator().observe_all(happy_path_events())
        validator.check(expect_drained=True)
        summary = validator.summary()
        assert summary["scheduled"] == summary["retired"] == 1
        assert summary["violations"] == 0

    def test_backwards_virtual_time_is_caught(self):
        events = make_events(
            (EventType.SUBMITTED, 5.0, "a", {}),
            (EventType.ADMITTED, 2.0, "a", {}),
        )
        validator = TraceValidator().observe_all(events)
        with pytest.raises(TraceInvariantError, match="ran backwards"):
            validator.check()

    def test_retire_without_schedule_is_caught(self):
        events = make_events(
            (EventType.RETIRED, 1.0, "ghost", {"released_node_seconds": 5.0}),
        )
        with pytest.raises(TraceInvariantError, match="illegal transition"):
            TraceValidator().observe_all(events).check()

    def test_released_exceeding_committed_is_caught(self):
        events = happy_path_events()[:-1] + make_events(
            (EventType.RETIRED, 30.0, "a", {"released_node_seconds": 45.0}),
        )
        with pytest.raises(TraceInvariantError, match="released 45.0"):
            TraceValidator().observe_all(events).check()

    def test_lost_job_breaks_conservation(self):
        # admitted and queued, then the trace simply ends: fine while the
        # service is live (still-pending), a violation once drained.
        events = happy_path_events()[:3]
        TraceValidator().observe_all(events).check(expect_drained=False)
        with pytest.raises(TraceInvariantError, match="still pending"):
            TraceValidator().observe_all(events).check(expect_drained=True)

    def test_double_terminal_state_is_caught(self):
        events = happy_path_events() + make_events(
            (EventType.DROPPED, 31.0, "a", {"cause": "max_deferrals"}),
        )
        with pytest.raises(TraceInvariantError, match="illegal transition"):
            TraceValidator().observe_all(events).check()

    def test_unbalanced_cycle_markers_are_caught(self):
        events = make_events((EventType.CYCLE_START, 0.0, None, {"cycle": 0}))
        with pytest.raises(TraceInvariantError, match="never ended"):
            TraceValidator().observe_all(events).check()

    def test_all_violations_reported_in_one_pass(self):
        events = make_events(
            (EventType.SUBMITTED, 5.0, "a", {}),
            (EventType.ADMITTED, 1.0, "a", {}),  # time backwards
            (EventType.RETIRED, 6.0, "b", {"released_node_seconds": 1.0}),
        )
        validator = TraceValidator().observe_all(events)
        with pytest.raises(TraceInvariantError) as excinfo:
            validator.check()
        message = str(excinfo.value)
        assert "ran backwards" in message
        assert "illegal transition" in message


class TestEndToEndConservation:
    """The seeded-Poisson conservation suite over the live broker."""

    @pytest.mark.parametrize("seed", [3, 7, 11, 2013])
    def test_seeded_trace_conserves_jobs_and_node_seconds(self, seed):
        outcome = run_service_trace(
            TraceConfig(
                jobs=80,
                rate=2.0,
                node_count=30,
                seed=seed,
                validate_trace=True,
            )
        )
        stats = outcome.service.stats
        # drained: nothing pending, everything scheduled came back
        assert stats.admitted == stats.scheduled + stats.dropped
        assert outcome.service.queue_depth == 0
        assert stats.scheduled == stats.retired
        validator = outcome.validator
        assert validator is not None
        summary = validator.summary()
        assert summary["admitted"] == stats.admitted
        assert summary["scheduled"] == stats.scheduled
        assert summary["dropped"] == stats.dropped
        assert summary["retired"] == stats.retired
        # full reservations released: committed == released node-seconds
        assert validator.released_node_seconds == pytest.approx(
            validator.committed_node_seconds
        )

    def test_validator_accounts_undrained_queue_as_pending(self):
        from repro.service import BrokerService, build_service

        config = TraceConfig(jobs=0, node_count=25, seed=2)
        collector = CollectingSink()
        validator = TraceValidator()
        service = build_service(config, sinks=[collector, validator])
        assert isinstance(service, BrokerService)
        from repro.model import Job, ResourceRequest

        for index in range(3):
            service.submit(
                Job(
                    f"j{index}",
                    ResourceRequest(
                        node_count=2, reservation_time=20.0, budget=2000.0
                    ),
                )
            )
        # three admitted jobs sit in the queue; conservation holds with
        # them counted as still-pending, and fails if a drain is claimed
        validator.check(expect_drained=False)
        assert validator.pending_jobs == {"j0", "j1", "j2"}
        with pytest.raises(TraceInvariantError):
            validator.check(expect_drained=True)

    def test_jsonl_file_round_trip_validates(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        run_service_trace(
            TraceConfig(jobs=40, node_count=25, seed=5, trace_path=path)
        )
        validator = validate_trace_file(path, expect_drained=True)
        assert validator.summary()["violations"] == 0
        assert validator.events_seen == len(load_trace(path))


class TestWorkerInvariance:
    """Same seed, any worker count: identical traces modulo wall-clock."""

    def run_collected(self, workers: int):
        collector = CollectingSink()
        from repro.service import build_service
        from repro.simulation.jobgen import JobGenerator

        config = TraceConfig(
            jobs=60,
            rate=2.0,
            node_count=30,
            seed=7,
            service=ServiceConfig(workers=workers),
        )
        service = build_service(config, sinks=[collector])
        service.process(JobGenerator(seed=7).iter_arrivals(60, rate=2.0))
        return collector.events

    def test_traces_identical_across_worker_counts(self):
        sequential = deterministic_trace(self.run_collected(workers=1))
        parallel = deterministic_trace(self.run_collected(workers=4))
        assert sequential == parallel

    def test_jsonl_bytes_identical_modulo_wall_clock(self, tmp_path):
        paths = {}
        for workers in (1, 4):
            path = tmp_path / f"w{workers}.jsonl"
            run_service_trace(
                TraceConfig(
                    jobs=50,
                    node_count=25,
                    seed=9,
                    service=ServiceConfig(workers=workers),
                    trace_path=str(path),
                )
            )
            paths[workers] = path
        lines = {
            workers: [
                event.deterministic_dict()
                for event in load_trace(str(path))
            ]
            for workers, path in paths.items()
        }
        assert lines[1] == lines[4]


class TestJsonlFailureArtifact:
    def test_trace_file_is_complete_when_validation_fails(self, tmp_path):
        # a validator attached behind a JSONL sink: when check() raises,
        # the JSONL on disk must already be flushed (the CI artifact)
        path = str(tmp_path / "bad.jsonl")
        with JsonlSink(path) as sink:
            for event in happy_path_events()[:3]:
                sink.emit(event)
        with pytest.raises(TraceInvariantError):
            validate_trace_file(path, expect_drained=True)
        assert len(load_trace(path)) == 3
