"""Tests of the on-line broker service layer."""
