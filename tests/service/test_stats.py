"""Counters, percentiles, and the stats snapshot."""

from __future__ import annotations

import pytest

from repro.service import LatencyTracker, ServiceStats, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_median_of_odd_list(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 0.25) == 2.5

    def test_extremes(self):
        samples = [5.0, 1.0, 9.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 9.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestLatencyTracker:
    def test_mean_over_all_samples(self):
        tracker = LatencyTracker()
        for value in (1.0, 2.0, 3.0):
            tracker.add(value)
        assert tracker.mean == 2.0
        assert tracker.count == 3

    def test_percentiles_use_bounded_window(self):
        tracker = LatencyTracker(max_samples=2)
        for value in (100.0, 1.0, 2.0):
            tracker.add(value)
        # the window forgot the 100.0 outlier; the mean never forgets
        assert tracker.p50 == 1.5
        assert tracker.mean > 30.0

    def test_empty_tracker(self):
        tracker = LatencyTracker()
        assert tracker.mean == 0.0
        assert tracker.p95 == 0.0
        assert tracker.quantiles(0.5, 0.95) == (0.0, 0.0)

    def test_quantiles_match_per_call_path(self):
        # the single-sort batch path must agree with the one-off properties
        tracker = LatencyTracker()
        for value in (9.0, 1.0, 4.0, 7.0, 2.0, 8.0):
            tracker.add(value)
        p50, p95 = tracker.quantiles(0.50, 0.95)
        assert p50 == tracker.p50
        assert p95 == tracker.p95


class TestServiceStats:
    def test_record_rejection_buckets_by_reason(self):
        stats = ServiceStats()
        stats.record_rejection("queue_full")
        stats.record_rejection("queue_full")
        stats.record_rejection("duplicate_id")
        assert stats.rejected == 3
        assert stats.rejected_by_reason == {"queue_full": 2, "duplicate_id": 1}

    def test_windows_per_second(self):
        stats = ServiceStats()
        assert stats.windows_per_second == 0.0
        stats.windows_found = 50
        stats.search_seconds = 2.0
        assert stats.windows_per_second == 25.0

    def test_snapshot_shape(self):
        stats = ServiceStats(submitted=10, admitted=8, scheduled=6)
        stats.cycle_latency.add(0.002)
        payload = stats.snapshot(elapsed_seconds=2.0)
        assert payload["submitted"] == 10
        assert payload["jobs_per_second"] == 5.0
        assert payload["cycle_latency_ms"]["mean"] == 2.0
        # without a wall-clock, no throughput entry
        assert "jobs_per_second" not in stats.snapshot()
        assert "scheduled_per_second" not in stats.snapshot()

    def test_snapshot_reports_useful_throughput(self):
        # jobs_per_second is offered load; scheduled_per_second is what
        # actually got windows — rejections must not inflate the latter
        stats = ServiceStats(submitted=10, admitted=4, rejected=6, scheduled=4)
        payload = stats.snapshot(elapsed_seconds=2.0)
        assert payload["jobs_per_second"] == 5.0
        assert payload["scheduled_per_second"] == 2.0
