"""Counters, percentiles, and the stats snapshot."""

from __future__ import annotations

import pytest

from repro.service import LatencyTracker, ServiceStats, percentile
from repro.service.stats import ReservoirSampler


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_median_of_odd_list(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 0.25) == 2.5

    def test_extremes(self):
        samples = [5.0, 1.0, 9.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 9.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestLatencyTracker:
    def test_mean_over_all_samples(self):
        tracker = LatencyTracker()
        for value in (1.0, 2.0, 3.0):
            tracker.add(value)
        assert tracker.mean == 2.0
        assert tracker.count == 3

    def test_percentiles_use_bounded_window(self):
        tracker = LatencyTracker(max_samples=2)
        for value in (100.0, 1.0, 2.0):
            tracker.add(value)
        # the window forgot the 100.0 outlier; the mean never forgets
        assert tracker.p50 == 1.5
        assert tracker.mean > 30.0

    def test_empty_tracker(self):
        tracker = LatencyTracker()
        assert tracker.mean == 0.0
        assert tracker.p95 == 0.0
        assert tracker.quantiles(0.5, 0.95) == (0.0, 0.0)

    def test_quantiles_match_per_call_path(self):
        # the single-sort batch path must agree with the one-off properties
        tracker = LatencyTracker()
        for value in (9.0, 1.0, 4.0, 7.0, 2.0, 8.0):
            tracker.add(value)
        p50, p95 = tracker.quantiles(0.50, 0.95)
        assert p50 == tracker.p50
        assert p95 == tracker.p95


class TestReservoirSampler:
    def test_memory_is_bounded_and_quantiles_track_exact(self):
        """10^5 observations through a 4096-slot reservoir: memory stays
        capped while p50/p99 estimate the exact stream quantiles — the
        regression guard for soak-length latency tracking."""
        import numpy as np

        rng = np.random.default_rng(7)
        stream = rng.lognormal(mean=0.0, sigma=0.75, size=100_000)
        sampler = ReservoirSampler(capacity=4096, seed=1)
        for value in stream:
            sampler.add(float(value))
        assert len(sampler) == 4096  # hard cap, 10^5 observed
        assert sampler.count == 100_000
        exact_p50 = percentile(list(stream), 0.50)
        exact_p99 = percentile(list(stream), 0.99)
        est_p50, est_p99 = sampler.quantiles(0.50, 0.99)
        assert abs(est_p50 - exact_p50) <= 0.05 * exact_p50
        assert abs(est_p99 - exact_p99) <= 0.15 * exact_p99
        # count/total stay exact regardless of sampling.
        assert sampler.mean == pytest.approx(float(stream.mean()))

    def test_fills_exactly_before_sampling(self):
        sampler = ReservoirSampler(capacity=10, seed=0)
        for value in range(10):
            sampler.add(float(value))
        assert sorted(sampler._samples) == [float(v) for v in range(10)]
        assert sampler.quantile(0.0) == 0.0
        assert sampler.quantile(1.0) == 9.0

    def test_seeded_replay_is_reproducible(self):
        first = ReservoirSampler(capacity=8, seed=3)
        second = ReservoirSampler(capacity=8, seed=3)
        for value in range(1000):
            first.add(float(value))
            second.add(float(value))
        assert first._samples == second._samples

    def test_empty_and_invalid(self):
        sampler = ReservoirSampler(capacity=4)
        assert sampler.mean == 0.0
        assert sampler.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            ReservoirSampler(capacity=0)


class TestServiceStats:
    def test_record_rejection_buckets_by_reason(self):
        stats = ServiceStats()
        stats.record_rejection("queue_full")
        stats.record_rejection("queue_full")
        stats.record_rejection("duplicate_id")
        assert stats.rejected == 3
        assert stats.rejected_by_reason == {"queue_full": 2, "duplicate_id": 1}

    def test_windows_per_second(self):
        stats = ServiceStats()
        assert stats.windows_per_second == 0.0
        stats.windows_found = 50
        stats.search_seconds = 2.0
        assert stats.windows_per_second == 25.0

    def test_snapshot_shape(self):
        stats = ServiceStats(submitted=10, admitted=8, scheduled=6)
        stats.cycle_latency.add(0.002)
        payload = stats.snapshot(elapsed_seconds=2.0)
        assert payload["submitted"] == 10
        assert payload["jobs_per_second"] == 5.0
        assert payload["cycle_latency_ms"]["mean"] == 2.0
        # without a wall-clock, no throughput entry
        assert "jobs_per_second" not in stats.snapshot()
        assert "scheduled_per_second" not in stats.snapshot()

    def test_snapshot_exposes_scan_kernel_telemetry(self):
        """The scan kernel's dispatch counters ride along in every stats
        snapshot, so services and soak runs can assert the vector path
        actually served them."""
        from repro.core.vectorized import scan_counters

        payload = ServiceStats().snapshot()
        assert payload["scan_kernel"] == dict(scan_counters)
        assert set(payload["scan_kernel"]) >= {
            "vectorized", "fallback", "plans_built", "plans_reused"
        }
        assert payload["slots_published"] == 0
        assert "p99" in payload["cycle_latency_ms"]

    def test_snapshot_reports_useful_throughput(self):
        # jobs_per_second is offered load; scheduled_per_second is what
        # actually got windows — rejections must not inflate the latter
        stats = ServiceStats(submitted=10, admitted=4, rejected=6, scheduled=4)
        payload = stats.snapshot(elapsed_seconds=2.0)
        assert payload["jobs_per_second"] == 5.0
        assert payload["scheduled_per_second"] == 2.0
