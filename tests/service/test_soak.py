"""The soak harness: payload shape and refuse-to-record gates.

Full-scale soak runs live in ``repro bench-soak`` (minutes of wall
clock); these tests drive a miniature run with the gates relaxed to
prove the harness measures and reports the right things, and a second
run with an impossible gate to prove it refuses to record.
"""

from __future__ import annotations

import pytest

from repro.service.soak import SoakGateError, bench_soak

#: One miniature soak shared by the payload assertions — ~2s wall.
MINI = dict(
    jobs=300,
    node_count=12,
    rate=1.0,
    seed=5,
    lead=200.0,
    stride=100.0,
    batch_size=4,
    sample_every=8,
)


@pytest.fixture(scope="module")
def payload():
    return bench_soak(
        **MINI,
        # Tiny pools amortize nothing; gates are exercised separately.
        min_speedup=0.0,
        max_p99_ratio=100.0,
        max_rss_ratio=100.0,
    )


class TestSoakPayload:
    def test_counts_add_up(self, payload):
        counts = payload["counts"]
        assert counts["submitted"] == MINI["jobs"]
        assert counts["admitted"] + counts["rejected"] == counts["submitted"]
        assert counts["scheduled"] > 0

    def test_rolling_horizon_actually_rolled(self, payload):
        virtual = payload["virtual"]
        assert virtual["segments_published"] > 2
        assert virtual["slots_published"] > 0
        # Bounded serving: the live pool stayed far below total published.
        assert virtual["pool_size_max"] < virtual["slots_published"]

    def test_latency_and_memory_sections(self, payload):
        latency = payload["cycle_latency_ms"]
        assert latency["p99_overall"] >= latency["p50_overall"] > 0.0
        # Reported fields are rounded for the JSON artifact.
        assert latency["p99_ratio"] == pytest.approx(
            latency["p99_last_decile"] / latency["p99_first_decile"], abs=1e-2
        )
        rss = payload["rss_mb"]
        assert rss["last_decile"] > 0.0
        assert rss["samples"] > 0
        assert rss["ratio"] == pytest.approx(
            rss["last_decile"] / rss["first_decile"], abs=1e-2
        )

    def test_snapshot_and_kernel_telemetry(self, payload):
        snapshot = payload["snapshot"]
        assert snapshot["samples"] > 0
        assert snapshot["incremental_us_mean"] > 0.0
        assert snapshot["speedup"] > 0.0
        kernel = payload["scan_kernel"]
        assert kernel["vectorized"] > 0  # cheapest AMP policy dispatches
        assert kernel["fallback"] == 0

    def test_outlook_rides_along(self, payload):
        criterion = payload["config"]["criterion"]
        assert criterion in payload["outlook"]
        view = payload["outlook"][criterion]
        assert 0.0 <= view["fit_probability"] <= 1.0
        assert view["cycles_observed"] > 0

    def test_gates_record_their_thresholds(self, payload):
        gates = payload["gates"]
        assert gates["min_speedup"] == 0.0
        assert gates["warmup_cycles_excluded"] >= 0


class TestSoakGates:
    def test_impossible_speedup_gate_refuses_to_record(self):
        with pytest.raises(SoakGateError, match="faster than"):
            bench_soak(
                **MINI,
                min_speedup=1e9,
                max_p99_ratio=100.0,
                max_rss_ratio=100.0,
            )

    def test_impossible_rss_gate_refuses_to_record(self):
        with pytest.raises(SoakGateError, match="RSS|rss"):
            bench_soak(
                **MINI,
                min_speedup=0.0,
                max_p99_ratio=100.0,
                max_rss_ratio=0.0,
            )
