"""The virtual-clock job lifecycle: start, retire, release."""

from __future__ import annotations

import pytest

from repro.core.algorithms import AMP
from repro.model import Job, ResourceRequest
from repro.model.errors import SchedulingError
from repro.service import JobLifecycle


@pytest.fixture
def scheduled(uniform_pool):
    job = Job("lc", ResourceRequest(node_count=2, reservation_time=20.0, budget=1000.0))
    window = AMP().select(job, uniform_pool)
    assert window is not None
    uniform_pool.cut_window(window)
    return job, window, uniform_pool


def test_start_and_retire_releases_slots(scheduled):
    job, window, pool = scheduled
    free_before = pool.total_free_time()
    lifecycle = JobLifecycle()
    entry = lifecycle.start(job, window, now=0.0)
    assert entry.completes_at == window.start + window.runtime
    assert lifecycle.active_count == 1
    assert lifecycle.next_completion() == entry.completes_at

    assert lifecycle.retire_due(entry.completes_at - 1.0, pool) == []
    retired = lifecycle.retire_due(entry.completes_at, pool)
    assert [item.job.job_id for item in retired] == ["lc"]
    assert lifecycle.active_count == 0
    assert pool.total_free_time() > free_before
    pool.assert_disjoint_per_node()


def test_completion_factor_shortens_the_run(scheduled):
    job, window, pool = scheduled
    lifecycle = JobLifecycle()
    entry = lifecycle.start(job, window, now=0.0, completion_factor=0.5)
    assert entry.completes_at == window.start + window.runtime * 0.5
    # the full reservation is still released at (early) completion
    retired = lifecycle.retire_due(entry.completes_at, pool)
    assert len(retired) == 1
    pool.assert_disjoint_per_node()


def test_duplicate_start_raises(scheduled):
    job, window, pool = scheduled
    lifecycle = JobLifecycle()
    lifecycle.start(job, window, now=0.0)
    with pytest.raises(SchedulingError, match="already running"):
        lifecycle.start(job, window, now=1.0)


def test_bad_completion_factor_raises(scheduled):
    job, window, pool = scheduled
    lifecycle = JobLifecycle()
    for factor in (0.0, -0.5, 1.5):
        with pytest.raises(SchedulingError, match="completion_factor"):
            lifecycle.start(job, window, now=0.0, completion_factor=factor)


def test_retirement_order_is_deterministic(uniform_pool):
    lifecycle = JobLifecycle()
    windows = []
    for index in range(2):
        job = Job(
            f"lc-{index}",
            ResourceRequest(node_count=2, reservation_time=20.0, budget=1000.0),
        )
        window = AMP().select(job, uniform_pool)
        assert window is not None
        uniform_pool.cut_window(window)
        lifecycle.start(job, window, now=0.0)
        windows.append(window)
    retired = lifecycle.retire_due(1e9, uniform_pool)
    assert [item.job.job_id for item in retired] == [
        item.job.job_id
        for item in sorted(retired, key=lambda it: (it.completes_at, it.job.job_id))
    ]
    assert lifecycle.active_count == 0
    uniform_pool.assert_disjoint_per_node()
