"""The zero-copy phase-one fan-out: one shared snapshot per cycle, a
persistent executor on the broker, and — above all — determinism: the
alternatives must be identical inline, with a transient pool, and with a
caller-supplied persistent executor."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.algorithms.csa import CSA
from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.model import Job, ResourceRequest
from repro.service import BrokerService, ServiceConfig
from repro.service.parallel import parallel_find_alternatives


def make_pool(node_count: int = 30, seed: int = 5):
    environment = EnvironmentGenerator(
        EnvironmentConfig(node_count=node_count, seed=seed)
    ).generate()
    return environment.slot_pool()


def make_jobs(count: int = 8) -> list[Job]:
    return [
        Job(
            f"job-{index}",
            ResourceRequest(
                node_count=2 + index % 2, reservation_time=20.0, budget=2000.0
            ),
        )
        for index in range(count)
    ]


def fingerprint(alternatives):
    return {
        job_id: [
            (window.start, tuple(sorted(window.nodes())))
            for window in windows
        ]
        for job_id, windows in alternatives.items()
    }


class TestSharedSnapshotFanOut:
    def test_identical_across_execution_modes(self):
        pool = make_pool()
        jobs = make_jobs()
        search = CSA(max_alternatives=5)
        inline = parallel_find_alternatives(search, jobs, pool, workers=1, limit=5)
        transient = parallel_find_alternatives(search, jobs, pool, workers=4, limit=5)
        with ThreadPoolExecutor(max_workers=4) as executor:
            persistent = parallel_find_alternatives(
                search, jobs, pool, workers=4, limit=5, executor=executor
            )
        assert fingerprint(inline) == fingerprint(transient) == fingerprint(persistent)

    def test_pool_unchanged_by_fan_out(self):
        pool = make_pool()
        before = [(slot.node.node_id, slot.start, slot.end) for slot in pool]
        parallel_find_alternatives(
            CSA(max_alternatives=3), make_jobs(4), pool, workers=4, limit=3
        )
        after = [(slot.node.node_id, slot.start, slot.end) for slot in pool]
        assert before == after

    def test_result_keyed_in_job_order(self):
        pool = make_pool()
        jobs = make_jobs(5)
        result = parallel_find_alternatives(
            CSA(max_alternatives=2), jobs, pool, workers=3, limit=2
        )
        assert list(result) == [job.job_id for job in jobs]


class TestPersistentBrokerExecutor:
    def test_executor_reused_across_cycles(self):
        service = BrokerService(
            make_pool(), config=ServiceConfig(workers=4, batch_size=2, max_wait=5.0)
        )
        assert service._executor is None  # lazy until the first parallel cycle
        for index, job in enumerate(make_jobs(8)):
            service.advance_to(float(index))
            service.submit(job)
            service.pump()
        first = service._executor
        assert first is not None
        service.drain()
        assert service._executor is first  # same pool across all cycles
        service.close()
        assert service._executor is None
        service.close()  # idempotent

    def test_inline_broker_never_builds_executor(self):
        service = BrokerService(
            make_pool(), config=ServiceConfig(workers=1, batch_size=2, max_wait=5.0)
        )
        for index, job in enumerate(make_jobs(6)):
            service.advance_to(float(index))
            service.submit(job)
            service.pump()
        service.drain()
        assert service._executor is None
        service.close()

    def test_context_manager_closes(self):
        with BrokerService(
            make_pool(), config=ServiceConfig(workers=2, batch_size=1, max_wait=5.0)
        ) as service:
            service.submit(make_jobs(1)[0])
            service.pump()
            service.drain()
            assert service._executor is not None
        assert service._executor is None

    def test_worker_count_invariance_end_to_end(self):
        jobs = make_jobs(10)

        def run(workers: int):
            service = BrokerService(
                make_pool(),
                config=ServiceConfig(workers=workers, batch_size=3, max_wait=5.0),
            )
            for index, job in enumerate(jobs):
                service.advance_to(float(index))
                service.submit(job)
                service.pump()
            service.drain()
            service.close()
            return {
                job_id: (window.start, tuple(sorted(window.nodes())))
                for job_id, window in service.assignments.items()
            }

        assert run(1) == run(4)


class TestProcessFanOut:
    """The shared-memory process transport must be invisible in the
    results: identical alternatives, identical broker assignments."""

    def test_process_mode_matches_inline(self):
        pool = make_pool()
        jobs = make_jobs(6)
        search = CSA(max_alternatives=4)
        inline = parallel_find_alternatives(search, jobs, pool, workers=1, limit=4)
        process = parallel_find_alternatives(
            search, jobs, pool, workers=2, limit=4, mode="process"
        )
        assert fingerprint(inline) == fingerprint(process)

    def test_process_mode_leaves_pool_untouched(self):
        pool = make_pool()
        before = [(slot.node.node_id, slot.start, slot.end) for slot in pool]
        parallel_find_alternatives(
            CSA(max_alternatives=3),
            make_jobs(4),
            pool,
            workers=2,
            limit=3,
            mode="process",
        )
        after = [(slot.node.node_id, slot.start, slot.end) for slot in pool]
        assert before == after

    def test_broker_process_mode_matches_thread_mode(self):
        jobs = make_jobs(8)

        def run(mode: str):
            service = BrokerService(
                make_pool(),
                config=ServiceConfig(
                    workers=2, worker_mode=mode, batch_size=3, max_wait=5.0
                ),
            )
            for index, job in enumerate(jobs):
                service.advance_to(float(index))
                service.submit(job)
                service.pump()
            service.drain()
            service.close()
            return {
                job_id: (window.start, tuple(sorted(window.nodes())))
                for job_id, window in service.assignments.items()
            }

        assert run("thread") == run("process")

    def test_unknown_worker_mode_rejected(self):
        from repro.model.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ServiceConfig(worker_mode="fiber")


class TestClassGroupedFanOut:
    """Request-class grouping is a pure optimization: every transport and
    worker count must produce the identical mapping with grouping on and
    off, and the grouping telemetry must record the sharing."""

    def test_grouped_matches_per_job_across_modes(self):
        pool = make_pool()
        jobs = make_jobs(10)  # two request classes, five duplicates each
        search = CSA(max_alternatives=4)
        per_job = parallel_find_alternatives(
            search, jobs, pool, workers=1, limit=4, group_by_class=False
        )
        reference = fingerprint(per_job)
        for workers, mode in ((1, "thread"), (4, "thread"), (2, "process")):
            grouped = parallel_find_alternatives(
                search, jobs, pool, workers=workers, limit=4, mode=mode
            )
            assert fingerprint(grouped) == reference, (workers, mode)
            ungrouped = parallel_find_alternatives(
                search,
                jobs,
                pool,
                workers=workers,
                limit=4,
                mode=mode,
                group_by_class=False,
            )
            assert fingerprint(ungrouped) == reference, (workers, mode)

    def test_grouping_counters_record_sharing(self):
        from repro.core.vectorized import scan_counters

        pool = make_pool()
        jobs = make_jobs(10)
        before = dict(scan_counters)
        parallel_find_alternatives(
            CSA(max_alternatives=3), jobs, pool, workers=4, limit=3
        )
        assert scan_counters["grouped_jobs"] - before["grouped_jobs"] == 10
        assert scan_counters["grouped_classes"] - before["grouped_classes"] == 2
        assert scan_counters["grouped_shared"] - before["grouped_shared"] == 8

    def test_duplicate_jobs_receive_independent_lists(self):
        pool = make_pool()
        jobs = make_jobs(4)
        result = parallel_find_alternatives(
            CSA(max_alternatives=3), jobs, pool, workers=2, limit=3
        )
        # jobs 0 and 2 share a request class; their lists are equal but
        # not the same object, so a caller may mutate one safely.
        first, third = result[jobs[0].job_id], result[jobs[2].job_id]
        assert first == third
        assert first is not third

    def test_nondeterministic_search_dispatched_per_job(self):
        import numpy as np

        from repro.core.algorithms.minproctime import MinProcTime

        pool = make_pool()
        jobs = make_jobs(6)  # duplicate request classes
        assert MinProcTime(simplified=True).deterministic is False
        # The randomized search consumes one shared random stream, so
        # grouping would draw fewer times than a sequential loop.  With
        # grouping requested (the default) the fan-out must fall back to
        # per-job dispatch: identical results to group_by_class=False
        # for same-seeded instances.
        grouped_path = parallel_find_alternatives(
            MinProcTime(simplified=True, rng=np.random.default_rng(42)),
            jobs,
            pool,
            workers=1,
            limit=3,
        )
        per_job_path = parallel_find_alternatives(
            MinProcTime(simplified=True, rng=np.random.default_rng(42)),
            jobs,
            pool,
            workers=1,
            limit=3,
            group_by_class=False,
        )
        assert fingerprint(grouped_path) == fingerprint(per_job_path)
