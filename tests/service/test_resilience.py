"""The live resilience layer: injection, recovery policies, broker wiring.

Three levels of granularity:

* unit — config validation, injector stream discipline, policy decision
  tables (pure deciders on hand-built contexts);
* manager — a real broker, one scheduled job, one hand-crafted
  preemption applied directly, with the pool/lifecycle/queue/stats
  effects asserted exactly;
* end-to-end — scripted runs per policy with the trace validator riding
  along (conservation laws, repaired-window invariants), plus the
  strict-no-op guarantee: a rate-0 resilience layer leaves the
  deterministic trace view byte-identical to a broker without one.
"""

from __future__ import annotations

import pytest

from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.execution import PoissonDisturbances
from repro.model import Job, ResourceRequest, SlotPool, Window, WindowSlot
from repro.model.errors import ConfigurationError
from repro.service import (
    AbandonPolicy,
    BrokerService,
    NodePreemption,
    RepairPolicy,
    ReplanPolicy,
    ResilienceConfig,
    RevocationContext,
    RevocationInjector,
    ServiceConfig,
    TraceConfig,
    deterministic_trace,
    load_trace,
    run_service_trace,
)
from repro.service.resilience.bench import bench_resilience, goodput_by_policy
from repro.service.resilience.policies import (
    AbandonAction,
    RepairAction,
    ReplanAction,
)

from tests.conftest import make_slot


def make_pool(node_count: int = 40, seed: int = 11) -> SlotPool:
    environment = EnvironmentGenerator(
        EnvironmentConfig(node_count=node_count, seed=seed)
    ).generate()
    return environment.slot_pool()


def make_job(job_id: str = "j0", nodes: int = 2, budget: float = 2000.0) -> Job:
    return Job(
        job_id,
        ResourceRequest(node_count=nodes, reservation_time=20.0, budget=budget),
    )


def resilient_config(policy: str, rate: float = 0.0, **kwargs) -> ServiceConfig:
    return ServiceConfig(
        batch_size=1,
        record_assignments=True,
        resilience=ResilienceConfig(rate=rate, policy=policy, **kwargs),
    )


def first_hit(window: Window, length: float = 5.0) -> NodePreemption:
    """A local job trampling the window's first leg from its start."""
    leg = window.slots[0]
    return NodePreemption(
        node_id=leg.slot.node.node_id, arrival=window.start, length=length
    )


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
class TestResilienceConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": -0.1},
            {"length_range": (0.0, 10.0)},
            {"length_range": (10.0, 5.0)},
            {"policy": "pray"},
            {"max_retries": -1},
            {"backoff_base": 0.0},
            {"backoff_factor": 0.5},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(**kwargs)

    def test_build_policy_matches_the_name(self):
        assert isinstance(ResilienceConfig(policy="repair").build_policy(), RepairPolicy)
        built = ResilienceConfig(policy="replan", max_retries=7).build_policy()
        assert isinstance(built, ReplanPolicy) and not isinstance(built, RepairPolicy)
        assert built.max_retries == 7
        assert isinstance(ResilienceConfig(policy="abandon").build_policy(), AbandonPolicy)


# ----------------------------------------------------------------------
# Injector stream discipline
# ----------------------------------------------------------------------
MODEL = PoissonDisturbances(rate=0.05, length_range=(5.0, 15.0))


class TestRevocationInjector:
    def test_same_seed_same_intervals_same_hits(self):
        a = RevocationInjector(MODEL, seed=42)
        b = RevocationInjector(MODEL, seed=42)
        for interval in [(0.0, 40.0), (40.0, 90.0)]:
            assert a.sample_interval(*interval, [3, 1, 2]) == b.sample_interval(
                *interval, [1, 2, 3]
            )

    def test_hits_are_ordered_and_inside_the_interval(self):
        hits = RevocationInjector(MODEL, seed=1).sample_interval(10.0, 60.0, range(8))
        assert hits, "rate 0.05 over 8 nodes x 50 units should land arrivals"
        assert hits == sorted(hits, key=lambda h: (h.arrival, h.node_id))
        for hit in hits:
            assert 10.0 <= hit.arrival < 60.0
            assert hit.busy_end == hit.arrival + hit.length

    def test_empty_samples_consume_no_spawned_child(self):
        """Provably-empty calls must not shift the stream (strict no-op)."""
        plain = RevocationInjector(MODEL, seed=7)
        padded = RevocationInjector(MODEL, seed=7)
        assert padded.sample_interval(0.0, 10.0, []) == []  # no nodes
        assert padded.sample_interval(5.0, 5.0, [1, 2]) == []  # empty interval
        zero = RevocationInjector(PoissonDisturbances(rate=0.0), seed=7)
        assert zero.sample_interval(0.0, 100.0, [1, 2]) == []  # rate 0
        assert plain.sample_interval(0.0, 50.0, [1, 2, 3]) == padded.sample_interval(
            0.0, 50.0, [1, 2, 3]
        )


# ----------------------------------------------------------------------
# Policy decision tables
# ----------------------------------------------------------------------
def make_context(
    *,
    now: float = 0.0,
    retries: int = 0,
    deadline: float | None = None,
    budget: float = 1000.0,
    pool: SlotPool | None = None,
    start: float = 10.0,
) -> RevocationContext:
    request = ResourceRequest(
        node_count=2, reservation_time=20.0, budget=budget, deadline=deadline
    )
    job = Job("ctx", request)
    legs = tuple(
        WindowSlot.for_request(make_slot(node_id, 0.0, 100.0), request)
        for node_id in (1, 2)
    )
    window = Window(start=start, slots=legs)
    return RevocationContext(
        job=job,
        window=window,
        revoked=legs[:1],
        surviving=legs[1:],
        now=now,
        retries=retries,
        pool=pool if pool is not None else SlotPool(),
    )


class TestPolicies:
    def test_abandon_policy_is_terminal(self):
        action = AbandonPolicy().decide(make_context())
        assert isinstance(action, AbandonAction)
        assert action.cause == "policy_abandon"

    def test_replan_backoff_is_exponential_in_the_retry_count(self):
        policy = ReplanPolicy(max_retries=5, backoff_base=5.0, backoff_factor=2.0)
        for retries, expected in [(0, 5.0), (1, 10.0), (2, 20.0)]:
            action = policy.decide(make_context(now=100.0, retries=retries))
            assert isinstance(action, ReplanAction)
            assert action.ready_at == pytest.approx(100.0 + expected)

    def test_replan_abandons_at_the_retry_bound(self):
        action = ReplanPolicy(max_retries=2).decide(make_context(retries=2))
        assert isinstance(action, AbandonAction)
        assert action.cause == "max_retries"

    def test_replan_is_deadline_aware(self):
        # ready_at = 100 + 5 crosses a deadline of 104: retrying is futile.
        action = ReplanPolicy(backoff_base=5.0).decide(
            make_context(now=100.0, deadline=104.0)
        )
        assert isinstance(action, AbandonAction)
        assert action.cause == "deadline"

    def test_repair_swaps_only_the_revoked_leg(self):
        pool = SlotPool.from_slots(
            [make_slot(3, 0.0, 100.0), make_slot(4, 0.0, 100.0, price=9.0)]
        )
        ctx = make_context(pool=pool)
        action = RepairPolicy().decide(ctx)
        assert isinstance(action, RepairAction)
        assert len(action.replacements) == 1
        # The cheapest substitute wins, and window nodes are excluded.
        assert action.replacements[0].slot.node.node_id == 3

    def test_repair_degrades_to_replan_once_the_window_started(self):
        pool = SlotPool.from_slots([make_slot(3, 0.0, 100.0)])
        action = RepairPolicy().decide(make_context(pool=pool, start=10.0, now=12.0))
        assert isinstance(action, ReplanAction)

    def test_repair_respects_the_remaining_budget(self):
        # Surviving leg already spent most of the budget; the only
        # substitute is too expensive, so the policy falls back.
        pool = SlotPool.from_slots([make_slot(3, 0.0, 100.0, price=50.0)])
        action = RepairPolicy().decide(make_context(pool=pool, budget=20.0))
        assert isinstance(action, ReplanAction)


# ----------------------------------------------------------------------
# Manager effects through a real broker
# ----------------------------------------------------------------------
def scheduled_service(policy: str, **kwargs) -> tuple[BrokerService, Window]:
    service = BrokerService(make_pool(), resilient_config(policy, **kwargs))
    assert service.submit(make_job())
    assert service.pump() == 1
    return service, service.assignments["j0"]


class TestManager:
    def test_repair_keeps_start_and_distinct_nodes(self):
        service, window = scheduled_service("repair")
        hit = first_hit(window)
        service.resilience.apply(hit, service.now)

        assert service.stats.revocations == 1
        assert service.stats.repaired == 1
        assert service.active_count == 1
        repaired = service.assignments["j0"]
        assert repaired.start == window.start
        nodes = repaired.nodes()
        assert len(set(nodes)) == len(nodes)
        assert hit.node_id not in nodes
        assert service.stats.forfeited_node_seconds == pytest.approx(
            window.slots[0].required_time
        )
        service.pool.assert_disjoint_per_node()

        service.drain()
        assert service.stats.retired == 1

    def test_replan_buffers_the_retry_and_reschedules_it(self):
        service, window = scheduled_service(
            "replan", backoff_base=5.0, backoff_factor=2.0
        )
        service.resilience.apply(first_hit(window), service.now)

        assert service.stats.replanned == 1
        assert service.active_count == 0
        assert "j0" not in service.assignments
        assert service.resilience.pending_retries == 1
        assert service.resilience.next_wakeup() == pytest.approx(5.0)
        # The surviving leg went back to the pool; the revoked one did not.
        service.pool.assert_disjoint_per_node()

        # While buffered, the job id is still "known": no duplicate entry.
        assert not service.submit(make_job("j0"))

        service.advance_to(6.0)
        assert service.resilience.pending_retries == 0
        assert service.stats.scheduled == 2
        assert service.stats.retried == 1
        service.drain()
        assert service.stats.retired == 1

    def test_abandon_releases_survivors_and_seals_the_job(self):
        service, window = scheduled_service("abandon")
        free_before = sum(slot.length for slot in service.pool)
        service.resilience.apply(first_hit(window), service.now)

        assert service.stats.abandoned == 1
        assert service.active_count == 0
        assert service.resilience.pending_retries == 0
        surviving_seconds = sum(
            leg.required_time for leg in window.slots[1:]
        )
        free_after = sum(slot.length for slot in service.pool)
        assert free_after - free_before == pytest.approx(surviving_seconds)
        # The job's fate is sealed: its id may be submitted afresh.
        assert service.submit(make_job("j0"))
        service.drain()

    def test_max_retries_exhaustion_abandons(self):
        service, window = scheduled_service("replan", max_retries=0)
        service.resilience.apply(first_hit(window), service.now)
        assert service.stats.replanned == 0
        assert service.stats.abandoned == 1


# ----------------------------------------------------------------------
# End-to-end scripted runs
# ----------------------------------------------------------------------
def traced_run(tmp_path, name: str, resilience: ResilienceConfig | None):
    path = str(tmp_path / f"{name}.jsonl")
    outcome = run_service_trace(
        TraceConfig(
            jobs=30,
            node_count=30,
            seed=3,
            service=ServiceConfig(resilience=resilience),
            trace_path=path,
            validate_trace=True,
        )
    )
    return outcome, load_trace(path)


class TestEndToEnd:
    def test_rate_zero_is_a_strict_noop(self, tmp_path):
        bare, bare_trace = traced_run(tmp_path, "bare", None)
        wired, wired_trace = traced_run(
            tmp_path, "wired", ResilienceConfig(rate=0.0, policy="repair")
        )
        assert deterministic_trace(wired_trace) == deterministic_trace(bare_trace)
        assert wired.service.stats.revocations == 0
        assert wired.final_virtual_time == bare.final_virtual_time

    @pytest.mark.parametrize("policy", ["repair", "replan", "abandon"])
    def test_disturbed_runs_drain_and_balance(self, tmp_path, policy):
        """The validator (riding the run) enforces the conservation laws
        and the repaired-window invariants; here we make sure the run
        actually exercised the policy under test."""
        outcome, _ = traced_run(
            tmp_path,
            policy,
            ResilienceConfig(rate=0.01, seed=5, policy=policy),
        )
        stats = outcome.service.stats
        assert stats.revocations > 0
        if policy == "repair":
            assert stats.repaired > 0
        elif policy == "replan":
            assert stats.replanned > 0
        else:
            assert stats.abandoned == stats.revocations
        assert stats.delivered_node_seconds > 0
        assert outcome.validator.forfeited_node_seconds == pytest.approx(
            stats.forfeited_node_seconds
        )


# ----------------------------------------------------------------------
# Benchmark driver
# ----------------------------------------------------------------------
class TestBenchResilience:
    def test_smoke_payload_shape(self):
        payload = bench_resilience(
            jobs=8,
            node_count=20,
            rates=(0.0, 0.01),
            policies=("repair",),
            seed=3,
            disturbance_seed=5,
        )
        assert payload["benchmark"] == "service_resilience"
        assert len(payload["results"]) == 2
        for row in payload["results"]:
            assert row["goodput"] >= 0.0
        clean = goodput_by_policy(payload, 0.0)
        assert set(clean) == {"repair"}
