"""The typed event stream: records, emitter, and the pluggable sinks."""

from __future__ import annotations

import json

import pytest

from repro.service import (
    CollectingSink,
    Event,
    EventEmitter,
    EventType,
    JsonlSink,
    RingBufferSink,
    deterministic_trace,
    load_trace,
)


def make_event(seq: int = 0, **fields) -> Event:
    return Event(seq=seq, type=EventType.SCHEDULED, time=1.5, job_id="j0", fields=fields)


class TestEvent:
    def test_to_dict_flattens_fields(self):
        event = make_event(cost=12.5, nodes=[1, 2])
        payload = event.to_dict()
        assert payload["type"] == "scheduled"
        assert payload["job_id"] == "j0"
        assert payload["cost"] == 12.5
        assert payload["nodes"] == [1, 2]

    def test_to_dict_omits_missing_job_id(self):
        event = Event(seq=3, type=EventType.CYCLE_START, time=0.0, fields={"cycle": 0})
        assert "job_id" not in event.to_dict()

    def test_deterministic_dict_strips_wall_clock_fields(self):
        event = make_event(batch=4, wall_cycle_seconds=0.017)
        deterministic = event.deterministic_dict()
        assert deterministic["batch"] == 4
        assert "wall_cycle_seconds" not in deterministic
        # the full dict still carries the timing
        assert "wall_cycle_seconds" in event.to_dict()

    def test_json_round_trip(self):
        event = make_event(cause="queue_full", deferrals=2)
        restored = Event.from_dict(json.loads(event.to_json()))
        assert restored == event

    def test_json_is_canonical(self):
        # sorted keys, compact separators: byte-comparable across runs
        event = make_event(b=1, a=2)
        line = event.to_json()
        assert line == json.dumps(json.loads(line), sort_keys=True, separators=(",", ":"))


class TestEmitter:
    def test_no_sinks_is_a_noop(self):
        emitter = EventEmitter()
        assert not emitter.enabled
        assert emitter.emit(EventType.SUBMITTED, job_id="a") is None

    def test_sequence_and_clock(self):
        sink = CollectingSink()
        clock_value = [4.0]
        emitter = EventEmitter([sink], clock=lambda: clock_value[0])
        emitter.emit(EventType.SUBMITTED, job_id="a")
        clock_value[0] = 9.0
        emitter.emit(EventType.ADMITTED, job_id="a")
        assert [event.seq for event in sink.events] == [0, 1]
        assert [event.time for event in sink.events] == [4.0, 9.0]

    def test_reserved_field_names_rejected(self):
        emitter = EventEmitter([CollectingSink()])
        with pytest.raises(ValueError, match="envelope"):
            emitter.emit(EventType.SUBMITTED, job_id="a", time=3.0)

    def test_add_sink_takes_effect(self):
        emitter = EventEmitter()
        sink = CollectingSink()
        emitter.add_sink(sink)
        emitter.emit(EventType.SUBMITTED, job_id="a")
        assert len(sink.events) == 1


class TestRingBufferSink:
    def test_keeps_only_the_most_recent(self):
        ring = RingBufferSink(capacity=3)
        for seq in range(10):
            ring.emit(make_event(seq=seq))
        assert len(ring) == 3
        assert [event.seq for event in ring.events] == [7, 8, 9]
        assert [event.seq for event in ring.tail(2)] == [8, 9]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)
        with pytest.raises(ValueError):
            RingBufferSink(capacity=1).tail(-1)


class TestJsonlSink:
    def test_writes_one_line_per_event_and_loads_back(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlSink(path) as sink:
            sink.emit(make_event(seq=0, cost=1.0))
            sink.emit(make_event(seq=1, cost=2.0))
        assert sink.count == 2
        events = load_trace(path)
        assert [event.seq for event in events] == [0, 1]
        assert events[1].fields["cost"] == 2.0

    def test_deterministic_trace_view(self, tmp_path):
        events = [
            make_event(seq=0, wall_cycle_seconds=0.1, batch=2),
            make_event(seq=1, wall_cycle_seconds=0.2, batch=2),
        ]
        view = deterministic_trace(events)
        assert all("wall_cycle_seconds" not in record for record in view)
        assert all(record["batch"] == 2 for record in view)
