"""The typed event stream: records, emitter, and the pluggable sinks."""

from __future__ import annotations

import json

import pytest

from repro.model.errors import ConfigurationError
from repro.service import (
    CollectingSink,
    Event,
    EventEmitter,
    EventType,
    JsonlSink,
    RingBufferSink,
    deterministic_trace,
    load_trace,
)


def make_event(seq: int = 0, **fields) -> Event:
    return Event(seq=seq, type=EventType.SCHEDULED, time=1.5, job_id="j0", fields=fields)


class TestEvent:
    def test_to_dict_flattens_fields(self):
        event = make_event(cost=12.5, nodes=[1, 2])
        payload = event.to_dict()
        assert payload["type"] == "scheduled"
        assert payload["job_id"] == "j0"
        assert payload["cost"] == 12.5
        assert payload["nodes"] == [1, 2]

    def test_to_dict_omits_missing_job_id(self):
        event = Event(seq=3, type=EventType.CYCLE_START, time=0.0, fields={"cycle": 0})
        assert "job_id" not in event.to_dict()

    def test_deterministic_dict_strips_wall_clock_fields(self):
        event = make_event(batch=4, wall_cycle_seconds=0.017)
        deterministic = event.deterministic_dict()
        assert deterministic["batch"] == 4
        assert "wall_cycle_seconds" not in deterministic
        # the full dict still carries the timing
        assert "wall_cycle_seconds" in event.to_dict()

    def test_json_round_trip(self):
        event = make_event(cause="queue_full", deferrals=2)
        restored = Event.from_dict(json.loads(event.to_json()))
        assert restored == event

    def test_json_is_canonical(self):
        # sorted keys, compact separators: byte-comparable across runs
        event = make_event(b=1, a=2)
        line = event.to_json()
        assert line == json.dumps(json.loads(line), sort_keys=True, separators=(",", ":"))


class TestEmitter:
    def test_no_sinks_is_a_noop(self):
        emitter = EventEmitter()
        assert not emitter.enabled
        assert emitter.emit(EventType.SUBMITTED, job_id="a") is None

    def test_sequence_and_clock(self):
        sink = CollectingSink()
        clock_value = [4.0]
        emitter = EventEmitter([sink], clock=lambda: clock_value[0])
        emitter.emit(EventType.SUBMITTED, job_id="a")
        clock_value[0] = 9.0
        emitter.emit(EventType.ADMITTED, job_id="a")
        assert [event.seq for event in sink.events] == [0, 1]
        assert [event.time for event in sink.events] == [4.0, 9.0]

    def test_reserved_field_names_rejected(self):
        emitter = EventEmitter([CollectingSink()])
        with pytest.raises(ValueError, match="envelope"):
            emitter.emit(EventType.SUBMITTED, job_id="a", time=3.0)

    def test_add_sink_takes_effect(self):
        emitter = EventEmitter()
        sink = CollectingSink()
        emitter.add_sink(sink)
        emitter.emit(EventType.SUBMITTED, job_id="a")
        assert len(sink.events) == 1


class TestRingBufferSink:
    def test_keeps_only_the_most_recent(self):
        ring = RingBufferSink(capacity=3)
        for seq in range(10):
            ring.emit(make_event(seq=seq))
        assert len(ring) == 3
        assert [event.seq for event in ring.events] == [7, 8, 9]
        assert [event.seq for event in ring.tail(2)] == [8, 9]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)
        with pytest.raises(ValueError):
            RingBufferSink(capacity=1).tail(-1)


class TestJsonlSink:
    def test_writes_one_line_per_event_and_loads_back(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlSink(path) as sink:
            sink.emit(make_event(seq=0, cost=1.0))
            sink.emit(make_event(seq=1, cost=2.0))
        assert sink.count == 2
        events = load_trace(path)
        assert [event.seq for event in events] == [0, 1]
        assert events[1].fields["cost"] == 2.0

    def test_deterministic_trace_view(self, tmp_path):
        events = [
            make_event(seq=0, wall_cycle_seconds=0.1, batch=2),
            make_event(seq=1, wall_cycle_seconds=0.2, batch=2),
        ]
        view = deterministic_trace(events)
        assert all("wall_cycle_seconds" not in record for record in view)
        assert all(record["batch"] == 2 for record in view)


class TestFromDictValidation:
    """Forward-compatibility diagnosis: satellite regression for the loader."""

    def test_unknown_event_type_names_the_type_and_the_known_set(self):
        payload = {"seq": 0, "type": "teleported", "time": 1.0}
        with pytest.raises(ConfigurationError, match="unknown event type 'teleported'"):
            Event.from_dict(payload)
        with pytest.raises(ConfigurationError, match="scheduled"):
            Event.from_dict(payload)

    def test_missing_envelope_key_is_diagnosed(self):
        for key in ("seq", "type", "time"):
            payload = {"seq": 0, "type": "scheduled", "time": 1.0}
            del payload[key]
            with pytest.raises(ConfigurationError, match=f"missing the {key!r}"):
                Event.from_dict(payload)

    def test_resilience_event_types_round_trip(self):
        for name in ("revoked", "repaired", "replanned", "abandoned"):
            event = Event(
                seq=1, type=EventType(name), time=2.0, job_id="j", fields={}
            )
            assert Event.from_dict(json.loads(event.to_json())).type is EventType(name)

    def test_load_trace_wraps_errors_with_path_and_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"seq": 0, "type": "scheduled", "time": 0.0})
            + "\n"
            + json.dumps({"seq": 1, "type": "warp", "time": 1.0})
            + "\n"
        )
        with pytest.raises(ConfigurationError, match=r"bad\.jsonl:2: unknown event"):
            load_trace(str(path))
