"""Admission control: structural rejects and the cost lower bound."""

from __future__ import annotations

from repro.model import Job, ResourceRequest
from repro.service import (
    AdmissionController,
    AdmissionDecision,
    RejectionReason,
    cheapest_feasible_cost,
)


def make_job(job_id: str = "adm", nodes: int = 2, budget: float = 1000.0) -> Job:
    return Job(
        job_id,
        ResourceRequest(node_count=nodes, reservation_time=20.0, budget=budget),
    )


class TestCheapestFeasibleCost:
    def test_uniform_pool_lower_bound(self, uniform_pool):
        # perf 4, price 2: task(20) runs 5 and costs 10 per node
        assert cheapest_feasible_cost(make_job().request, uniform_pool) == 20.0

    def test_heterogeneous_pool_picks_cheapest_nodes(self, heterogeneous_pool):
        # cheapest task costs are 10 (nodes 0, 1 and 4)
        bound = cheapest_feasible_cost(make_job(nodes=3).request, heterogeneous_pool)
        assert bound == 30.0

    def test_too_few_nodes_returns_none(self, uniform_pool):
        assert cheapest_feasible_cost(make_job(nodes=5).request, uniform_pool) is None

    def test_short_slots_do_not_count(self, uniform_pool):
        # task needs 5 units on these nodes; a 200-unit reservation does not fit
        request = ResourceRequest(node_count=4, reservation_time=800.0, budget=1e6)
        assert cheapest_feasible_cost(request, uniform_pool) is None


class TestAdmissionController:
    def evaluate(self, pool, job, depth=0, capacity=8, known=frozenset()):
        return AdmissionController().evaluate(
            job, pool, queue_depth=depth, queue_capacity=capacity, known_ids=known
        )

    def test_admits_feasible_job(self, uniform_pool):
        decision = self.evaluate(uniform_pool, make_job())
        assert decision
        assert decision.reason is None

    def test_rejects_full_queue(self, uniform_pool):
        decision = self.evaluate(uniform_pool, make_job(), depth=8, capacity=8)
        assert not decision
        assert decision.reason is RejectionReason.QUEUE_FULL

    def test_rejects_duplicate_id(self, uniform_pool):
        decision = self.evaluate(uniform_pool, make_job("dup"), known={"dup"})
        assert decision.reason is RejectionReason.DUPLICATE_ID

    def test_rejects_too_many_nodes(self, uniform_pool):
        decision = self.evaluate(uniform_pool, make_job(nodes=5))
        assert decision.reason is RejectionReason.TOO_FEW_NODES

    def test_rejects_hopeless_budget(self, uniform_pool):
        decision = self.evaluate(uniform_pool, make_job(budget=19.0))
        assert decision.reason is RejectionReason.BUDGET_INFEASIBLE
        assert "budget" in decision.detail

    def test_admits_budget_exactly_at_lower_bound(self, uniform_pool):
        assert self.evaluate(uniform_pool, make_job(budget=20.0))

    def test_lenient_controller_skips_budget_check(self, uniform_pool):
        controller = AdmissionController(strict_budget=False)
        decision = controller.evaluate(
            make_job(budget=1.0),
            uniform_pool,
            queue_depth=0,
            queue_capacity=8,
            known_ids=frozenset(),
        )
        assert decision.admitted

    def test_decision_truthiness(self):
        assert AdmissionDecision.accept()
        assert not AdmissionDecision.reject(RejectionReason.QUEUE_FULL)
