"""Admission control: structural rejects, the cost lower bound, and the
warm-start outlook gate."""

from __future__ import annotations

import pytest

from repro.model import Job, ResourceRequest
from repro.service import (
    AdmissionController,
    AdmissionDecision,
    RejectionReason,
    cheapest_feasible_cost,
)
from repro.service.admission import (
    AdmissionOutlook,
    cheapest_feasible_cost_reference,
)


def make_job(job_id: str = "adm", nodes: int = 2, budget: float = 1000.0) -> Job:
    return Job(
        job_id,
        ResourceRequest(node_count=nodes, reservation_time=20.0, budget=budget),
    )


class TestCheapestFeasibleCost:
    def test_uniform_pool_lower_bound(self, uniform_pool):
        # perf 4, price 2: task(20) runs 5 and costs 10 per node
        assert cheapest_feasible_cost(make_job().request, uniform_pool) == 20.0

    def test_heterogeneous_pool_picks_cheapest_nodes(self, heterogeneous_pool):
        # cheapest task costs are 10 (nodes 0, 1 and 4)
        bound = cheapest_feasible_cost(make_job(nodes=3).request, heterogeneous_pool)
        assert bound == 30.0

    def test_too_few_nodes_returns_none(self, uniform_pool):
        assert cheapest_feasible_cost(make_job(nodes=5).request, uniform_pool) is None

    def test_short_slots_do_not_count(self, uniform_pool):
        # task needs 5 units on these nodes; a 200-unit reservation does not fit
        request = ResourceRequest(node_count=4, reservation_time=800.0, budget=1e6)
        assert cheapest_feasible_cost(request, uniform_pool) is None


class TestAdmissionController:
    def evaluate(self, pool, job, depth=0, capacity=8, known=frozenset()):
        return AdmissionController().evaluate(
            job, pool, queue_depth=depth, queue_capacity=capacity, known_ids=known
        )

    def test_admits_feasible_job(self, uniform_pool):
        decision = self.evaluate(uniform_pool, make_job())
        assert decision
        assert decision.reason is None

    def test_rejects_full_queue(self, uniform_pool):
        decision = self.evaluate(uniform_pool, make_job(), depth=8, capacity=8)
        assert not decision
        assert decision.reason is RejectionReason.QUEUE_FULL

    def test_rejects_duplicate_id(self, uniform_pool):
        decision = self.evaluate(uniform_pool, make_job("dup"), known={"dup"})
        assert decision.reason is RejectionReason.DUPLICATE_ID

    def test_rejects_too_many_nodes(self, uniform_pool):
        decision = self.evaluate(uniform_pool, make_job(nodes=5))
        assert decision.reason is RejectionReason.TOO_FEW_NODES

    def test_rejects_hopeless_budget(self, uniform_pool):
        decision = self.evaluate(uniform_pool, make_job(budget=19.0))
        assert decision.reason is RejectionReason.BUDGET_INFEASIBLE
        assert "budget" in decision.detail

    def test_admits_budget_exactly_at_lower_bound(self, uniform_pool):
        assert self.evaluate(uniform_pool, make_job(budget=20.0))

    def test_lenient_controller_skips_budget_check(self, uniform_pool):
        controller = AdmissionController(strict_budget=False)
        decision = controller.evaluate(
            make_job(budget=1.0),
            uniform_pool,
            queue_depth=0,
            queue_capacity=8,
            known_ids=frozenset(),
        )
        assert decision.admitted

    def test_decision_truthiness(self):
        assert AdmissionDecision.accept()
        assert not AdmissionDecision.reject(RejectionReason.QUEUE_FULL)


class TestVectorizedLowerBound:
    """The memoized columnar bound is float-identical to the object-loop
    reference on every request shape."""

    def test_matches_reference_across_seeds(self):
        from repro.environment import EnvironmentConfig, EnvironmentGenerator
        from repro.simulation.jobgen import JobGenerator

        for seed in range(12):
            pool = EnvironmentGenerator(
                EnvironmentConfig(node_count=20, seed=seed)
            ).generate().slot_pool()
            for job in JobGenerator(seed=seed + 100).generate_batch(40):
                fast = cheapest_feasible_cost(job.request, pool)
                slow = cheapest_feasible_cost_reference(job.request, pool)
                assert fast == slow, (seed, job.job_id)

    def test_cache_is_reused_and_bounded(self, uniform_pool):
        from repro.service.admission import ADMISSION_CACHE_LIMIT

        request = make_job().request
        cheapest_feasible_cost(request, uniform_pool)
        cache = uniform_pool.as_arrays()._admission_cache
        assert len(cache) == 1
        cheapest_feasible_cost(request, uniform_pool)
        assert len(cache) == 1  # hit, not a second entry
        # node_count/budget changes share the per-shape entry.
        other = ResourceRequest(node_count=3, reservation_time=20.0, budget=5.0)
        cheapest_feasible_cost(other, uniform_pool)
        assert len(cache) == 1
        for i in range(ADMISSION_CACHE_LIMIT + 10):
            varied = ResourceRequest(
                node_count=2, reservation_time=20.0 + i, budget=1e6
            )
            cheapest_feasible_cost(varied, uniform_pool)
        assert len(cache) <= ADMISSION_CACHE_LIMIT


class TestAdmissionOutlook:
    def test_decayed_fit_probability(self):
        outlook = AdmissionOutlook(decay=0.5)
        outlook.observe_cycle("finish_time", batched=4, scheduled=4, mean_wait=1.0)
        assert outlook.fit_probability("finish_time") == 1.0
        outlook.observe_cycle("finish_time", batched=4, scheduled=0, mean_wait=3.0)
        # weights 0.5 and 1.0 over fits 1.0 and 0.0
        assert outlook.fit_probability("finish_time") == pytest.approx(1 / 3)
        assert outlook.cycles_observed("finish_time") == 2

    def test_predicted_wait_tracks_recent_cycles(self):
        outlook = AdmissionOutlook(decay=0.85)
        for wait in (2.0, 4.0, 6.0):
            outlook.observe_cycle("min_cost", 8, 8, mean_wait=wait)
        predicted = outlook.predicted_wait("min_cost")
        # decay-weighted toward the most recent cycle
        assert 4.0 < predicted < 6.0

    def test_empty_batches_are_skipped(self):
        outlook = AdmissionOutlook()
        outlook.observe_cycle("min_cost", batched=0, scheduled=0, mean_wait=0.0)
        assert outlook.cycles_observed("min_cost") == 0
        assert outlook.fit_probability("min_cost") is None
        assert outlook.predicted_wait("min_cost") is None

    def test_criteria_are_independent(self):
        outlook = AdmissionOutlook()
        outlook.observe_cycle("min_cost", 4, 0, 1.0)
        outlook.observe_cycle("finish_time", 4, 4, 1.0)
        assert outlook.fit_probability("min_cost") == 0.0
        assert outlook.fit_probability("finish_time") == 1.0
        view = outlook.snapshot()
        assert set(view) == {"min_cost", "finish_time"}
        assert view["finish_time"]["fit_probability"] == 1.0

    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError):
            AdmissionOutlook(decay=0.0)
        with pytest.raises(ValueError):
            AdmissionOutlook(decay=1.0)


class TestPredictedMissGate:
    def evaluate(self, controller, pool, job):
        return controller.evaluate(
            job, pool, queue_depth=0, queue_capacity=8, known_ids=frozenset()
        )

    def gated_controller(self, outlook, min_fit=0.5, min_fit_cycles=3):
        return AdmissionController(
            outlook=outlook,
            criterion="finish_time",
            min_fit=min_fit,
            min_fit_cycles=min_fit_cycles,
        )

    def test_fires_after_enough_bad_cycles(self, uniform_pool):
        outlook = AdmissionOutlook()
        controller = self.gated_controller(outlook)
        for _ in range(5):
            outlook.observe_cycle("finish_time", 6, 0, mean_wait=10.0)
        decision = self.evaluate(controller, uniform_pool, make_job())
        assert decision.reason is RejectionReason.PREDICTED_MISS
        assert "0%" in decision.detail

    def test_holds_fire_until_min_cycles(self, uniform_pool):
        outlook = AdmissionOutlook()
        controller = self.gated_controller(outlook, min_fit_cycles=3)
        outlook.observe_cycle("finish_time", 6, 0, mean_wait=10.0)
        outlook.observe_cycle("finish_time", 6, 0, mean_wait=10.0)
        assert self.evaluate(controller, uniform_pool, make_job()).admitted

    def test_recovers_when_fit_improves(self, uniform_pool):
        outlook = AdmissionOutlook(decay=0.5)
        controller = self.gated_controller(outlook)
        for _ in range(4):
            outlook.observe_cycle("finish_time", 6, 0, mean_wait=10.0)
        assert not self.evaluate(controller, uniform_pool, make_job())
        for _ in range(4):
            outlook.observe_cycle("finish_time", 6, 6, mean_wait=1.0)
        assert self.evaluate(controller, uniform_pool, make_job()).admitted

    def test_gate_off_by_default(self, uniform_pool):
        """min_fit=0.0 (the default) never rejects, no matter how bleak
        the outlook — decision streams are unchanged unless opted in."""
        outlook = AdmissionOutlook()
        for _ in range(10):
            outlook.observe_cycle("finish_time", 6, 0, mean_wait=50.0)
        default = AdmissionController(outlook=outlook, criterion="finish_time")
        assert self.evaluate(default, uniform_pool, make_job()).admitted
