"""The scripted-trace driver, arrival streaming, and the service CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.model.errors import ConfigurationError
from repro.service import TraceConfig, bench_service, run_service_trace
from repro.simulation.jobgen import JobGenerator


class TestIterArrivals:
    def test_times_strictly_increase(self):
        generator = JobGenerator(seed=9)
        times = [t for t, _ in generator.iter_arrivals(20, rate=2.0)]
        assert len(times) == 20
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_seeded_streams_are_reproducible(self):
        first = [
            (t, job.job_id)
            for t, job in JobGenerator(seed=4).iter_arrivals(10, rate=1.0)
        ]
        second = [
            (t, job.job_id)
            for t, job in JobGenerator(seed=4).iter_arrivals(10, rate=1.0)
        ]
        assert first == second

    def test_invalid_parameters(self):
        generator = JobGenerator(seed=1)
        with pytest.raises(ConfigurationError):
            list(generator.iter_arrivals(-1))
        with pytest.raises(ConfigurationError):
            list(generator.iter_arrivals(1, rate=0.0))


class TestDriver:
    def test_trace_config_validation(self):
        with pytest.raises(ConfigurationError):
            TraceConfig(jobs=-1)
        with pytest.raises(ConfigurationError):
            TraceConfig(rate=0.0)
        with pytest.raises(ConfigurationError):
            TraceConfig(node_count=0)

    def test_run_service_trace_snapshot(self):
        outcome = run_service_trace(TraceConfig(jobs=15, node_count=25, seed=2))
        payload = outcome.snapshot()
        assert payload["submitted"] == 15
        assert payload["final_virtual_time"] == round(outcome.final_virtual_time, 1)
        assert "cycle_latency_ms" in payload

    def test_bench_service_payload(self):
        payload = bench_service(node_counts=(20,), jobs=12, workers=2, seed=1)
        assert payload["benchmark"] == "service_throughput"
        assert payload["config"]["jobs"] == 12
        (row,) = payload["results"]
        assert row["nodes"] == 20
        assert row["scheduled"] + row["rejected"] + row["dropped"] == 12
        # offered vs useful throughput: scheduled/s never exceeds jobs/s
        assert row["scheduled_per_second"] <= row["jobs_per_second"]

    def test_run_service_trace_with_tracing(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        outcome = run_service_trace(
            TraceConfig(
                jobs=20, node_count=25, seed=2, trace_path=path,
                validate_trace=True,
            )
        )
        assert outcome.validator is not None
        payload = outcome.snapshot()
        assert payload["trace"]["violations"] == 0
        assert payload["trace"]["submitted"] == 20
        assert payload["scheduled_per_second"] <= payload["jobs_per_second"]
        from repro.service import load_trace

        assert len(load_trace(path)) == payload["trace"]["events"]

    def test_bench_service_archives_traces(self, tmp_path):
        trace_path = str(tmp_path / "bench.jsonl")
        bench_service(
            node_counts=(20,), jobs=10, workers=2, seed=1, trace_path=trace_path
        )
        from repro.service import TraceValidator, load_trace

        events = load_trace(str(tmp_path / "bench-20nodes.jsonl"))
        assert events
        TraceValidator().observe_all(events).check(expect_drained=True)


class TestServiceCli:
    def test_serve_runs(self, capsys):
        code = main(["serve", "--jobs", "12", "--nodes", "25", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "submitted 12" in out
        assert "cycles" in out

    def test_serve_json(self, capsys):
        code = main(
            ["serve", "--jobs", "8", "--nodes", "25", "--seed", "3", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["submitted"] == 8

    def test_serve_trace_and_validation(self, tmp_path, capsys):
        path = str(tmp_path / "serve.jsonl")
        code = main(
            [
                "serve", "--jobs", "15", "--nodes", "25", "--seed", "3",
                "--trace", path, "--validate-trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace invariants OK" in out
        from repro.service import validate_trace_file

        validate_trace_file(path, expect_drained=True)

    def test_serve_options(self, capsys):
        code = main(
            [
                "serve", "--jobs", "10", "--nodes", "25", "--seed", "3",
                "--workers", "2", "--batch-size", "4", "--max-wait", "15",
                "--criterion", "cost", "--completion-factor", "0.8",
            ]
        )
        assert code == 0

    def test_bench_service_writes_json(self, tmp_path, capsys):
        path = str(tmp_path / "bench.json")
        code = main(
            [
                "bench-service", "--nodes", "20", "--jobs", "10",
                "--workers", "2", "-o", path,
            ]
        )
        assert code == 0
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["benchmark"] == "service_throughput"
        assert payload["results"][0]["nodes"] == 20

    def test_schedule_json_output(self, capsys):
        code = main(
            ["schedule", "--nodes", "30", "--seed", "5", "--jobs", "3", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["jobs"] == 3
        assert set(payload) == {"jobs", "summary", "assignments", "unscheduled"}
        for window in payload["assignments"].values():
            assert "slots" in window

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")
