"""Signal handling: SIGTERM drains to a clean exit with flushed sinks."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.service.signals import graceful_interrupt


class TestGracefulInterrupt:
    def test_sigterm_becomes_keyboard_interrupt(self):
        with pytest.raises(KeyboardInterrupt):
            with graceful_interrupt():
                os.kill(os.getpid(), signal.SIGTERM)
                # The signal is delivered synchronously on the main
                # thread before the next bytecode boundary passes.
                time.sleep(0.5)
                pytest.fail("SIGTERM was not converted")

    def test_previous_handler_restored(self):
        sentinel = []
        previous = signal.signal(signal.SIGTERM, lambda *a: sentinel.append(1))
        try:
            with graceful_interrupt():
                assert signal.getsignal(signal.SIGTERM) is not previous
            restored = signal.getsignal(signal.SIGTERM)
            assert restored is not signal.SIG_DFL
            os.kill(os.getpid(), signal.SIGTERM)
            time.sleep(0.1)
            assert sentinel == [1]
        finally:
            signal.signal(signal.SIGTERM, previous)

    def test_noop_off_main_thread(self):
        outcome = {}

        def worker():
            try:
                with graceful_interrupt():
                    outcome["entered"] = True
            except Exception as error:  # pragma: no cover - fail path
                outcome["error"] = error

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert outcome == {"entered": True}

    def test_exception_inside_context_still_restores(self):
        previous = signal.getsignal(signal.SIGTERM)
        with pytest.raises(ValueError):
            with graceful_interrupt():
                raise ValueError("boom")
        assert signal.getsignal(signal.SIGTERM) is previous


class TestServeSigtermRegression:
    """`repro serve` under SIGTERM: exit 130 and a flushed, valid trace."""

    def test_sigterm_exits_130_with_flushed_trace(self, tmp_path: Path):
        trace = tmp_path / "trace.jsonl"
        env = dict(os.environ)
        repo_src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--jobs",
                "200000",
                "--nodes",
                "40",
                "--trace",
                str(trace),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if trace.exists() and trace.stat().st_size > 0:
                    break
                if process.poll() is not None:
                    pytest.fail(
                        f"serve exited early: {process.communicate()}"
                    )
                time.sleep(0.05)
            else:
                pytest.fail("trace never started growing")
            process.send_signal(signal.SIGTERM)
            _, stderr = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 130
        assert "interrupted" in stderr
        # The JSONL sink was flushed and closed: every line parses.
        lines = trace.read_text().splitlines()
        assert lines
        for line in lines:
            json.loads(line)
