"""End-to-end broker service behaviour, including the acceptance run.

The headline checks: a 500-job streaming run completes with the pool's
per-node disjointness verified after *every* cycle, every retired job's
reservations come back through :meth:`SlotPool.release`, and the parallel
phase-one path (4 workers) produces assignments identical to the
sequential one at the same seed.
"""

from __future__ import annotations

import pytest

from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.model import Job, ResourceRequest
from repro.model.errors import SchedulingError
from repro.scheduling.combination import CombinationChoice
from repro.scheduling.metascheduler import CycleReport
from repro.service import (
    BrokerService,
    CollectingSink,
    EventType,
    RejectionReason,
    ServiceConfig,
    TraceConfig,
    TraceValidator,
    build_service,
    run_service_trace,
)
from repro.simulation.jobgen import JobGenerator

from tests.test_window_invariants import assert_window_invariants


def make_pool(node_count: int = 40, seed: int = 11):
    environment = EnvironmentGenerator(
        EnvironmentConfig(node_count=node_count, seed=seed)
    ).generate()
    return environment.slot_pool()


def make_job(job_id: str, nodes: int = 2, budget: float = 2000.0) -> Job:
    return Job(
        job_id,
        ResourceRequest(node_count=nodes, reservation_time=20.0, budget=budget),
    )


class NeverScheduler:
    """Cycle kernel stub that schedules nothing: every job defers."""

    class _NoSearch:
        def find_alternatives(self, job, pool, limit=None):
            return []

    def __init__(self):
        self.search = self._NoSearch()

    def plan(self, batch, pool, alternatives=None):
        jobs = tuple(batch.by_priority())
        return CycleReport(
            choice=CombinationChoice(
                assignments={},
                total_value=0.0,
                unscheduled=tuple(job.job_id for job in jobs),
            ),
            alternatives_found={job.job_id: 0 for job in jobs},
            jobs=jobs,
        )


class TestSubmitAndCycle:
    def test_submit_admits_and_queues(self):
        service = BrokerService(make_pool())
        assert service.submit(make_job("a"))
        assert service.queue_depth == 1
        assert service.stats.admitted == 1

    def test_duplicate_submission_rejected(self):
        service = BrokerService(make_pool())
        service.submit(make_job("a"))
        decision = service.submit(make_job("a"))
        assert decision.reason is RejectionReason.DUPLICATE_ID
        assert service.stats.rejected == 1

    def test_batch_size_triggers_a_cycle_on_pump(self):
        config = ServiceConfig(batch_size=3, record_assignments=True)
        service = BrokerService(make_pool(), config=config)
        for index in range(3):
            service.submit(make_job(f"j{index}"))
        assert service.pump() == 1
        assert service.queue_depth == 0
        assert service.stats.scheduled == 3
        assert service.active_count == 3

    def test_max_wait_deadline_fires_at_exact_time(self):
        config = ServiceConfig(batch_size=100, max_wait=10.0)
        service = BrokerService(make_pool(), config=config)
        service.advance_to(5.0)
        service.submit(make_job("slow"))
        # a coarse jump far past the deadline still fires the cycle at 15
        service.advance_to(200.0)
        assert service.stats.cycles == 1
        assert service.stats.scheduled == 1

    def test_clock_is_monotone(self):
        service = BrokerService(make_pool(), clock_start=10.0)
        with pytest.raises(SchedulingError, match="monotone"):
            service.advance_to(5.0)

    def test_committed_windows_satisfy_invariants(self):
        config = ServiceConfig(batch_size=4, record_assignments=True)
        service = BrokerService(make_pool(), config=config)
        jobs = {f"j{index}": make_job(f"j{index}") for index in range(4)}
        for job in jobs.values():
            service.submit(job)
        service.pump()
        assert service.assignments
        for job_id, window in service.assignments.items():
            assert_window_invariants(window, jobs[job_id].request)

    def test_drain_completes_and_releases_everything(self):
        service = BrokerService(make_pool())
        for index in range(5):
            service.submit(make_job(f"j{index}"))
        service.drain()
        assert service.queue_depth == 0
        assert service.active_count == 0
        assert service.stats.retired == service.stats.scheduled == 5


class TestAcceptanceRun:
    """The 500-job streaming acceptance criteria of this subsystem."""

    JOBS = 500

    def run_trace(self, **service_kwargs):
        config = TraceConfig(
            jobs=self.JOBS,
            rate=2.0,
            node_count=50,
            seed=7,
            service=ServiceConfig(record_assignments=True, **service_kwargs),
        )
        return run_service_trace(config)

    def test_streaming_run_is_leak_free(self):
        outcome = self.run_trace(check_invariants=True)
        service = outcome.service
        # check_invariants=True already verified per-node disjointness
        # after every cycle; assert the bookkeeping balanced out too.
        stats = service.stats
        assert stats.submitted == self.JOBS
        assert stats.admitted == stats.submitted - stats.rejected
        assert stats.scheduled == stats.retired + service.active_count
        assert stats.admitted == stats.scheduled + stats.dropped
        assert service.queue_depth == 0
        assert service.active_count == 0
        service.pool.assert_disjoint_per_node()

    def test_every_retirement_goes_through_release(self):
        config = TraceConfig(
            jobs=120,
            rate=2.0,
            node_count=40,
            seed=3,
            service=ServiceConfig(record_assignments=True),
        )
        service = build_service(config)
        releases = []
        original_release = service.pool.release

        def counting_release(window):
            releases.append(window)
            return original_release(window)

        service.pool.release = counting_release
        run_service_trace(config, service=service)
        assert service.stats.retired == service.stats.scheduled
        assert len(releases) == service.stats.retired
        assert service.active_count == 0

    def test_parallel_search_matches_sequential(self):
        sequential = self.run_trace(workers=1).service
        parallel = self.run_trace(workers=4).service
        assert sequential.stats.scheduled == parallel.stats.scheduled
        assert sequential.stats.rejected == parallel.stats.rejected
        assert sequential.stats.dropped == parallel.stats.dropped
        assert sequential.stats.cycles == parallel.stats.cycles
        assert set(sequential.assignments) == set(parallel.assignments)
        for job_id, window in sequential.assignments.items():
            assert repr(parallel.assignments[job_id]) == repr(window), job_id


class TestDeferralAccounting:
    """The queue-full deferral regression: no admitted job may vanish."""

    def test_queue_full_deferral_counts_as_dropped(self):
        # Shrink the live queue bound below the in-flight batch size:
        # the only way a deferral re-push can meet a full queue, since a
        # cycle never re-queues more jobs than it popped.  Pre-fix, the
        # ignored push() return made the overflow jobs vanish without
        # touching any counter; post-fix they are dropped{queue_full}.
        collector = CollectingSink()
        validator = TraceValidator()
        service = BrokerService(
            make_pool(),
            config=ServiceConfig(
                batch_size=4, queue_capacity=4, max_deferrals=10
            ),
            scheduler=NeverScheduler(),
            sinks=[collector, validator],
        )
        for index in range(4):
            assert service.submit(make_job(f"j{index}"))
        service._queue.capacity = 1  # operator shrinks the bound mid-flight
        assert service.pump() == 1
        stats = service.stats
        assert stats.deferred == 1
        assert stats.dropped == 3
        assert service.queue_depth == 1
        # the conservation law the bug used to break:
        assert stats.admitted == stats.scheduled + stats.dropped + service.queue_depth
        drops = [e for e in collector.events if e.type is EventType.DROPPED]
        assert [event.fields["cause"] for event in drops] == ["queue_full"] * 3
        validator.check(expect_drained=False)

    def test_max_deferrals_drop_is_traced(self):
        collector = CollectingSink()
        service = BrokerService(
            make_pool(),
            config=ServiceConfig(batch_size=2, max_deferrals=1, max_wait=5.0),
            scheduler=NeverScheduler(),
            sinks=[collector],
        )
        service.submit(make_job("a"))
        service.submit(make_job("b"))
        service.drain()
        assert service.stats.dropped == 2
        drops = [e for e in collector.events if e.type is EventType.DROPPED]
        assert {event.job_id for event in drops} == {"a", "b"}
        assert all(e.fields["cause"] == "max_deferrals" for e in drops)

    def test_deferral_repush_keeps_enqueue_times_nondecreasing(self):
        # the invariant behind the O(1) oldest-item peek, exercised
        # through real deferral re-pushes interleaved with arrivals
        service = BrokerService(
            make_pool(),
            config=ServiceConfig(batch_size=2, max_deferrals=8, max_wait=10.0),
            scheduler=NeverScheduler(),
        )
        for index, time in enumerate((0.0, 1.0, 3.0, 7.0, 12.0, 20.0)):
            service.advance_to(time)
            service.submit(make_job(f"j{index}"))
            service.pump()
            enqueue_times = [
                item.enqueued_at for item in service._queue._items
            ]
            assert enqueue_times == sorted(enqueue_times)
            if service._queue.depth:
                assert (
                    service._queue.oldest_enqueued_at() == enqueue_times[0]
                )


class TestEarlyCompletion:
    def test_completion_factor_frees_capacity_sooner(self):
        full = run_service_trace(
            TraceConfig(
                jobs=80,
                node_count=30,
                seed=5,
                service=ServiceConfig(completion_factor=1.0),
            )
        )
        early = run_service_trace(
            TraceConfig(
                jobs=80,
                node_count=30,
                seed=5,
                service=ServiceConfig(completion_factor=0.5),
            )
        )
        assert early.service.stats.retired == early.service.stats.scheduled
        # early finishes can only help (or match) the schedule rate
        assert early.service.stats.scheduled >= full.service.stats.scheduled
