"""The bounded FIFO queue and the size-or-deadline cycle trigger."""

from __future__ import annotations

import pytest

from repro.model import Job, ResourceRequest
from repro.model.errors import ConfigurationError, SchedulingError
from repro.service import (
    BoundedJobQueue,
    CollectingSink,
    CycleTrigger,
    EventEmitter,
    EventType,
)


def make_job(job_id: str) -> Job:
    return Job(job_id, ResourceRequest(node_count=1, reservation_time=10.0, budget=100.0))


class TestBoundedJobQueue:
    def test_fifo_order(self):
        queue = BoundedJobQueue(capacity=4)
        for index in range(3):
            assert queue.push(make_job(f"j{index}"), now=float(index))
        batch = queue.pop_batch(limit=10)
        assert [item.job.job_id for item in batch] == ["j0", "j1", "j2"]
        assert queue.depth == 0

    def test_capacity_bound(self):
        queue = BoundedJobQueue(capacity=2)
        assert queue.push(make_job("a"), 0.0)
        assert queue.push(make_job("b"), 0.0)
        assert queue.is_full
        assert not queue.push(make_job("c"), 0.0)
        assert queue.job_ids() == {"a", "b"}

    def test_pop_batch_respects_limit(self):
        queue = BoundedJobQueue(capacity=8)
        for index in range(5):
            queue.push(make_job(f"j{index}"), 0.0)
        assert len(queue.pop_batch(limit=3)) == 3
        assert queue.depth == 2

    def test_oldest_enqueued_at_is_the_head(self):
        queue = BoundedJobQueue(capacity=8)
        assert queue.oldest_enqueued_at() is None
        queue.push(make_job("early"), 3.0)
        queue.push(make_job("late"), 7.0)
        # O(1) peek: the FIFO head is the longest-waiting job
        assert queue.oldest_enqueued_at() == 3.0
        queue.pop_batch(limit=1)
        assert queue.oldest_enqueued_at() == 7.0

    def test_push_enforces_nondecreasing_enqueue_times(self):
        # the invariant that licenses the O(1) head peek: the broker's
        # clock is monotone and deferral re-pushes stamp the current
        # time, so a decreasing push can only be a caller bug
        queue = BoundedJobQueue(capacity=8)
        queue.push(make_job("a"), 7.0)
        queue.push(make_job("b"), 7.0)  # equal times are fine
        with pytest.raises(SchedulingError, match="nondecreasing"):
            queue.push(make_job("c"), 3.0)
        assert queue.depth == 2

    def test_push_emits_queued_events(self):
        sink = CollectingSink()
        queue = BoundedJobQueue(
            capacity=1, emitter=EventEmitter([sink], clock=lambda: 5.0)
        )
        assert queue.push(make_job("a"), 5.0, deferrals=2)
        assert not queue.push(make_job("b"), 5.0)  # full: no event
        (event,) = sink.events
        assert event.type is EventType.QUEUED
        assert event.job_id == "a"
        assert event.fields == {"deferrals": 2, "depth": 1}

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            BoundedJobQueue(capacity=0)
        with pytest.raises(ConfigurationError):
            BoundedJobQueue(capacity=1).pop_batch(limit=0)


class TestCycleTrigger:
    def make(self, batch_size=3, max_wait=10.0):
        return CycleTrigger(batch_size=batch_size, max_wait=max_wait)

    def test_idle_queue_never_fires(self):
        queue = BoundedJobQueue(capacity=4)
        trigger = self.make()
        assert trigger.next_fire_time(queue, now=5.0) is None
        assert not trigger.should_fire(queue, now=5.0)

    def test_full_batch_fires_immediately(self):
        queue = BoundedJobQueue(capacity=8)
        for index in range(3):
            queue.push(make_job(f"j{index}"), 1.0)
        trigger = self.make(batch_size=3)
        assert trigger.next_fire_time(queue, now=1.0) == 1.0
        assert trigger.should_fire(queue, now=1.0)

    def test_partial_batch_fires_at_deadline(self):
        queue = BoundedJobQueue(capacity=8)
        queue.push(make_job("j0"), 2.0)
        trigger = self.make(batch_size=3, max_wait=10.0)
        assert trigger.next_fire_time(queue, now=2.0) == 12.0
        assert not trigger.should_fire(queue, now=11.9)
        assert trigger.should_fire(queue, now=12.0)

    def test_deadline_follows_oldest_job(self):
        queue = BoundedJobQueue(capacity=8)
        queue.push(make_job("old"), 1.0)
        queue.push(make_job("new"), 9.0)
        trigger = self.make(batch_size=5, max_wait=10.0)
        assert trigger.next_fire_time(queue, now=9.0) == 11.0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            CycleTrigger(batch_size=0, max_wait=10.0)
        with pytest.raises(ConfigurationError):
            CycleTrigger(batch_size=1, max_wait=0.0)
