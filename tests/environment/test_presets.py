"""Unit tests for the environment presets."""

import pytest

from repro.environment import EnvironmentGenerator, PRESETS, preset
from repro.model import ConfigurationError


class TestPresetLookup:
    def test_every_preset_constructs(self):
        for name in PRESETS:
            config = preset(name, node_count=20, seed=1)
            assert config.node_count == 20

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown environment preset"):
            preset("bogus")

    def test_base_is_section31(self):
        config = preset("paper-base")
        assert config.node_count == 100
        assert config.performance_range == (2, 10)
        assert config.load.load_range == (0.10, 0.50)


class TestPresetSemantics:
    def test_load_presets_change_utilization(self):
        low = EnvironmentGenerator(preset("low-load", 50, seed=3)).generate()
        high = EnvironmentGenerator(preset("high-load", 50, seed=3)).generate()
        assert low.utilization() < 0.20
        assert high.utilization() > 0.45

    def test_homogeneous_fixes_performance(self):
        env = EnvironmentGenerator(preset("homogeneous", 30, seed=3)).generate()
        assert {node.performance for node in env.nodes} == {6.0}

    def test_extreme_heterogeneity_widens_spread(self):
        env = EnvironmentGenerator(
            preset("extreme-heterogeneity", 200, seed=3)
        ).generate()
        performances = [node.performance for node in env.nodes]
        assert min(performances) < 2.0
        assert max(performances) > 10.0

    def test_noisy_market_increases_price_spread(self):
        import numpy as np

        def price_spread(name):
            env = EnvironmentGenerator(preset(name, 300, seed=4)).generate()
            # Compare prices of same-performance nodes to isolate noise.
            by_perf = {}
            for node in env.nodes:
                by_perf.setdefault(node.performance, []).append(node.price_per_unit)
            spreads = [
                np.std(prices) / np.mean(prices)
                for prices in by_perf.values()
                if len(prices) > 5
            ]
            return float(np.mean(spreads))

        assert price_spread("noisy-market") > 2 * price_spread("paper-base")

    def test_literal_pricing_flattens_per_task_cost(self):
        env = EnvironmentGenerator(preset("literal-pricing", 300, seed=5)).generate()
        import numpy as np

        per_work = [node.price_per_unit / node.performance for node in env.nodes]
        # Under exponent 1.0 the per-work price no longer grows with
        # performance: correlation with performance is ~0.
        performances = [node.performance for node in env.nodes]
        correlation = float(np.corrcoef(performances, per_work)[0, 1])
        assert abs(correlation) < 0.2
