"""Unit tests for the market pricing model."""

import numpy as np
import pytest

from repro.environment import MarketPricing
from repro.model import ConfigurationError


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestValidation:
    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ConfigurationError):
            MarketPricing(factor=0.0)

    def test_rejects_nonpositive_exponent(self):
        with pytest.raises(ConfigurationError):
            MarketPricing(exponent=0.0)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            MarketPricing(sigma=-0.1)

    def test_rejects_nonpositive_floor(self):
        with pytest.raises(ConfigurationError):
            MarketPricing(floor=0.0)

    def test_rejects_nonpositive_performance(self, rng):
        with pytest.raises(ConfigurationError):
            MarketPricing().price_for(0.0, rng)


class TestPricing:
    def test_zero_sigma_is_deterministic(self, rng):
        pricing = MarketPricing(factor=2.0, exponent=1.0, sigma=0.0)
        assert pricing.price_for(5.0, rng) == pytest.approx(10.0)

    def test_expected_price_power_law(self):
        pricing = MarketPricing(factor=2.0, exponent=1.5, sigma=0.0)
        assert pricing.expected_price(4.0) == pytest.approx(16.0)

    def test_prices_never_below_floor(self, rng):
        pricing = MarketPricing(factor=0.1, exponent=1.0, sigma=5.0, floor=0.05)
        prices = [pricing.price_for(1.0, rng) for _ in range(500)]
        assert min(prices) >= 0.05

    def test_mean_tracks_expected_price(self, rng):
        pricing = MarketPricing(factor=1.0, exponent=1.5, sigma=0.1)
        prices = [pricing.price_for(4.0, rng) for _ in range(4000)]
        assert np.mean(prices) == pytest.approx(pricing.expected_price(4.0), rel=0.02)

    def test_faster_nodes_cost_more_on_average(self, rng):
        pricing = MarketPricing()
        slow = np.mean([pricing.price_for(2.0, rng) for _ in range(1000)])
        fast = np.mean([pricing.price_for(10.0, rng) for _ in range(1000)])
        assert fast > slow

    def test_superlinear_default_makes_fast_nodes_pricier_per_work_unit(self, rng):
        # Per unit of *work*: price / performance must grow with performance
        # under the calibrated default exponent > 1 (see pricing docstring).
        pricing = MarketPricing(sigma=0.0)
        slow_per_work = pricing.price_for(2.0, rng) / 2.0
        fast_per_work = pricing.price_for(10.0, rng) / 10.0
        assert fast_per_work > slow_per_work

    def test_linear_exponent_is_flat_per_work_unit(self, rng):
        pricing = MarketPricing(exponent=1.0, sigma=0.0)
        slow_per_work = pricing.price_for(2.0, rng) / 2.0
        fast_per_work = pricing.price_for(10.0, rng) / 10.0
        assert fast_per_work == pytest.approx(slow_per_work)
