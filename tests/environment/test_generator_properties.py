"""Hypothesis property tests for the environment generator.

Random configurations, checked against the generator's contract: node
attributes respect the configured ranges, timelines stay inside the
interval, published slots are exactly the timelines' gaps, and the whole
generation is a deterministic function of the seed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.environment import EnvironmentConfig, EnvironmentGenerator, LoadModel
from repro.environment.pricing import MarketPricing


@st.composite
def configs(draw):
    node_count = draw(st.integers(min_value=1, max_value=25))
    perf_low = draw(st.integers(min_value=1, max_value=8))
    perf_high = draw(st.integers(min_value=perf_low, max_value=12))
    start = draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    length = draw(st.floats(min_value=50.0, max_value=1200.0, allow_nan=False))
    load_low = draw(st.floats(min_value=0.0, max_value=0.4, allow_nan=False))
    load_high = draw(st.floats(min_value=load_low, max_value=0.8, allow_nan=False))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return EnvironmentConfig(
        node_count=node_count,
        interval_start=start,
        interval_end=start + length,
        performance_range=(perf_low, perf_high),
        pricing=MarketPricing(),
        load=LoadModel(load_range=(load_low, load_high)),
        seed=seed,
    )


@given(config=configs())
@settings(max_examples=60, deadline=None)
def test_nodes_respect_configuration(config):
    environment = EnvironmentGenerator(config).generate()
    assert len(environment.nodes) == config.node_count
    low, high = config.performance_range
    for node in environment.nodes:
        assert low <= node.performance <= high
        assert node.performance == int(node.performance)
        assert node.price_per_unit > 0


@given(config=configs())
@settings(max_examples=60, deadline=None)
def test_timelines_partition_the_interval(config):
    environment = EnvironmentGenerator(config).generate()
    for timeline in environment.timelines.values():
        busy = timeline.busy_time()
        free = sum(end - start for start, end in timeline.free_intervals(1e-9))
        interval = config.interval_end - config.interval_start
        assert busy + free == __import__("pytest").approx(interval, rel=1e-6)
        for start, end in timeline.busy_intervals:
            assert config.interval_start - 1e-9 <= start < end
            assert end <= config.interval_end + 1e-9


@given(config=configs())
@settings(max_examples=60, deadline=None)
def test_slots_match_timelines(config):
    environment = EnvironmentGenerator(config).generate()
    slots = environment.slots()
    starts = [slot.start for slot in slots]
    assert starts == sorted(starts)
    expected = sum(
        len(timeline.free_slots(1e-9)) for timeline in environment.timelines.values()
    )
    assert len(slots) == expected
    pool = environment.slot_pool()
    pool.assert_disjoint_per_node()


@given(config=configs())
@settings(max_examples=30, deadline=None)
def test_generation_is_a_function_of_the_seed(config):
    env_a = EnvironmentGenerator(config).generate()
    env_b = EnvironmentGenerator(config).generate()
    assert env_a.nodes == env_b.nodes
    assert [t.busy_intervals for t in env_a.timelines.values()] == [
        t.busy_intervals for t in env_b.timelines.values()
    ]


@given(config=configs())
@settings(max_examples=40, deadline=None)
def test_utilization_within_the_configured_band(config):
    environment = EnvironmentGenerator(config).generate()
    low, high = config.load.load_range
    # A node may fall below the band when the drawn busy time cannot fit
    # one minimal local job; it must never exceed the band.
    for timeline in environment.timelines.values():
        assert timeline.utilization() <= high + 1e-6
