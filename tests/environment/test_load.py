"""Unit tests for the non-dedicated initial-load generator."""

import numpy as np
import pytest

from repro.environment import LoadModel, build_timeline
from repro.model import ConfigurationError, Timeline
from tests.conftest import make_node


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestValidation:
    def test_rejects_bad_range(self):
        with pytest.raises(ConfigurationError):
            LoadModel(load_range=(0.5, 0.1))
        with pytest.raises(ConfigurationError):
            LoadModel(load_range=(-0.1, 0.5))
        with pytest.raises(ConfigurationError):
            LoadModel(load_range=(0.1, 1.0))

    def test_rejects_nonpositive_job_length(self):
        with pytest.raises(ConfigurationError):
            LoadModel(min_job_length=0.0)

    def test_rejects_mean_below_min_job_length(self):
        with pytest.raises(ConfigurationError):
            LoadModel(min_job_length=20.0, mean_job_length=10.0)


class TestDrawLoadLevel:
    def test_levels_within_paper_range(self, rng):
        model = LoadModel()
        for _ in range(300):
            assert 0.10 <= model.draw_load_level(rng) <= 0.50

    def test_mean_near_midpoint(self, rng):
        model = LoadModel()
        levels = [model.draw_load_level(rng) for _ in range(2000)]
        assert np.mean(levels) == pytest.approx(0.30, abs=0.01)


class TestPopulate:
    def test_utilization_matches_drawn_level(self, rng):
        model = LoadModel()
        for _ in range(50):
            timeline = Timeline(make_node(0), 0.0, 600.0)
            level = model.populate(timeline, rng)
            assert timeline.utilization() == pytest.approx(level, abs=1e-6)

    def test_local_jobs_respect_min_length(self, rng):
        model = LoadModel(min_job_length=10.0)
        for _ in range(50):
            timeline = Timeline(make_node(0), 0.0, 600.0)
            model.populate(timeline, rng)
            for start, end in timeline.busy_intervals:
                # Merged chunks can only be longer than the minimum.
                assert end - start >= 10.0 - 1e-9

    def test_busy_stays_inside_interval(self, rng):
        model = LoadModel()
        for _ in range(50):
            timeline = Timeline(make_node(0), 100.0, 700.0)
            model.populate(timeline, rng)
            for start, end in timeline.busy_intervals:
                assert start >= 100.0 - 1e-9
                assert end <= 700.0 + 1e-9

    def test_tiny_interval_can_stay_empty(self, rng):
        # Load level * interval below one minimal local job -> node unloaded.
        model = LoadModel(min_job_length=10.0)
        timeline = Timeline(make_node(0), 0.0, 15.0)
        level = model.populate(timeline, rng)
        assert level == 0.0 or timeline.busy_time() >= 10.0

    def test_job_count_scales_with_busy_time(self, rng):
        model = LoadModel(mean_job_length=40.0)
        assert model.draw_job_count(5.0, rng) == 0  # below one minimal job
        counts_small = [model.draw_job_count(80.0, rng) for _ in range(200)]
        counts_large = [model.draw_job_count(800.0, rng) for _ in range(200)]
        assert np.mean(counts_large) > 3 * np.mean(counts_small)
        assert min(counts_small) >= 1

    def test_job_count_capped_by_min_length(self, rng):
        model = LoadModel(min_job_length=10.0, mean_job_length=10.0)
        for _ in range(100):
            count = model.draw_job_count(35.0, rng)
            assert 1 <= count <= 3

    def test_longer_interval_publishes_more_slots(self, rng):
        model = LoadModel()

        def mean_slots(length):
            totals = []
            for _ in range(60):
                timeline = Timeline(make_node(0), 0.0, length)
                model.populate(timeline, rng)
                totals.append(len(timeline.free_slots(1e-9)))
            return np.mean(totals)

        assert mean_slots(2400.0) > 2.5 * mean_slots(600.0)

    def test_build_timeline_helper(self, rng):
        timeline = build_timeline(make_node(3), 0.0, 600.0, LoadModel(), rng)
        assert timeline.node.node_id == 3
        assert 0.05 <= timeline.utilization() <= 0.55

    def test_free_gaps_form_several_slots(self, rng):
        model = LoadModel()
        slot_counts = []
        for _ in range(100):
            timeline = Timeline(make_node(0), 0.0, 600.0)
            model.populate(timeline, rng)
            slot_counts.append(len(timeline.free_slots(1e-9)))
        # Calibration target: about 4-5 free slots per node on average,
        # so that a 100-node environment publishes ~470 slots (Table 2).
        assert 3.5 <= np.mean(slot_counts) <= 6.5
