"""Rolling-horizon slot supply: determinism, bounds, broker integration."""

from __future__ import annotations

import pytest

from repro.environment import EnvironmentConfig
from repro.environment.rolling import HorizonConfig, RollingHorizonSource
from repro.model import SlotPool
from repro.model.errors import ConfigurationError
from repro.service import BrokerService, ServiceConfig
from repro.simulation.jobgen import JobGenerator


def spans(pool: SlotPool):
    return [(s.node.node_id, s.start, s.end) for s in pool.ordered()]


class TestHorizonConfig:
    def test_rejects_nonpositive_lead_and_stride(self):
        with pytest.raises(ConfigurationError):
            HorizonConfig(lead=0.0)
        with pytest.raises(ConfigurationError):
            HorizonConfig(stride=-1.0)


class TestRollingHorizonSource:
    CONFIG = EnvironmentConfig(node_count=8, seed=42)

    def test_fleet_is_stable_and_seeded(self):
        first = RollingHorizonSource(self.CONFIG, HorizonConfig())
        second = RollingHorizonSource(self.CONFIG, HorizonConfig())
        assert [(n.node_id, n.performance, n.price_per_unit) for n in first.nodes] \
            == [(n.node_id, n.performance, n.price_per_unit) for n in second.nodes]

    def test_extension_is_call_pattern_independent(self):
        """Slots are a pure function of (config, seed, segment): stepping
        the horizon in many small increments or one leap yields
        byte-identical pools."""
        horizon = HorizonConfig(lead=100.0, stride=50.0)
        fine = RollingHorizonSource(self.CONFIG, horizon)
        coarse = RollingHorizonSource(self.CONFIG, horizon)
        fine_pool, coarse_pool = SlotPool(), SlotPool()
        for step in range(1, 41):
            fine.extend_to(fine_pool, step * 25.0)
        coarse.extend_to(coarse_pool, 1000.0)
        assert fine.segments_published == coarse.segments_published
        assert spans(fine_pool) == spans(coarse_pool)

    def test_published_slots_stay_inside_segments(self):
        horizon = HorizonConfig(lead=100.0, stride=60.0)
        source = RollingHorizonSource(self.CONFIG, horizon)
        pool = SlotPool()
        source.extend_to(pool, 300.0)
        assert source.published_until >= 300.0
        for slot in pool:
            assert slot.start >= self.CONFIG.interval_start
            assert slot.end <= source.published_until

    def test_ensure_is_idempotent(self):
        source = RollingHorizonSource(self.CONFIG, HorizonConfig())
        pool = SlotPool()
        added = source.ensure(pool, 0.0)
        assert added > 0
        assert source.ensure(pool, 0.0) == 0

    def test_unseeded_source_is_internally_consistent(self):
        config = EnvironmentConfig(node_count=4, seed=None)
        source = RollingHorizonSource(config, HorizonConfig())
        pool = SlotPool()
        source.extend_to(pool, 600.0)
        assert len(pool) > 0


class TestBrokerIntegration:
    def test_pool_stays_inside_bounded_window(self):
        """Trim + extend keeps the live pool inside [now, now+lead+stride)
        over many cycles — the flat-memory property of soak serving."""
        config = EnvironmentConfig(node_count=10, seed=7)
        horizon = HorizonConfig(lead=150.0, stride=75.0)
        source = RollingHorizonSource(config, horizon)
        pool = SlotPool()
        service = ServiceConfig(batch_size=4, check_invariants=False)
        sizes = []
        with BrokerService(
            pool, config=service, horizon_source=source
        ) as broker:
            assert broker.stats.slots_published > 0
            for t, job in JobGenerator(seed=11).iter_arrivals(120, rate=0.5):
                broker.advance_to(t)
                broker.submit(job)
                broker.pump()
                sizes.append(len(pool))
                for slot in pool:
                    assert slot.end > broker.now  # past is trimmed
                    assert slot.start < broker.now + horizon.lead + horizon.stride
            broker.drain()
        # Bounded: the pool never grows with virtual time.
        assert max(sizes) < 40 * config.node_count

    def test_without_horizon_source_behaviour_unchanged(self):
        """horizon_source=None keeps the fixed-interval code path: no
        slots are ever published."""
        from repro.environment import EnvironmentGenerator

        pool = EnvironmentGenerator(
            EnvironmentConfig(node_count=6, seed=3)
        ).generate().slot_pool()
        with BrokerService(pool, config=ServiceConfig(batch_size=4)) as broker:
            for t, job in JobGenerator(seed=5).iter_arrivals(20, rate=1.0):
                broker.advance_to(t)
                broker.submit(job)
                broker.pump()
            broker.drain()
            assert broker.stats.slots_published == 0
