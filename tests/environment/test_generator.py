"""Unit tests for the full environment generator."""

import numpy as np
import pytest

from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.model import ConfigurationError, ResourceRequest, Window, WindowSlot


class TestConfigValidation:
    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigurationError):
            EnvironmentConfig(node_count=0)

    def test_rejects_empty_interval(self):
        with pytest.raises(ConfigurationError):
            EnvironmentConfig(interval_start=10.0, interval_end=10.0)

    def test_rejects_bad_performance_range(self):
        with pytest.raises(ConfigurationError):
            EnvironmentConfig(performance_range=(5, 2))
        with pytest.raises(ConfigurationError):
            EnvironmentConfig(performance_range=(0, 5))

    def test_interval_length(self):
        config = EnvironmentConfig(interval_start=100.0, interval_end=700.0)
        assert config.interval_length == pytest.approx(600.0)

    def test_with_node_count(self):
        config = EnvironmentConfig(node_count=100).with_node_count(200)
        assert config.node_count == 200

    def test_with_interval_length(self):
        config = EnvironmentConfig(interval_start=50.0).with_interval_length(1200.0)
        assert config.interval_end == pytest.approx(1250.0)
        assert config.interval_start == pytest.approx(50.0)


class TestGeneration:
    @pytest.fixture
    def environment(self):
        return EnvironmentGenerator(EnvironmentConfig(node_count=30, seed=5)).generate()

    def test_node_count(self, environment):
        assert len(environment.nodes) == 30
        assert len(environment.timelines) == 30

    def test_performance_range_is_integer_uniform(self):
        config = EnvironmentConfig(node_count=400, seed=1)
        env = EnvironmentGenerator(config).generate()
        performances = {node.performance for node in env.nodes}
        assert performances <= {float(p) for p in range(2, 11)}
        assert len(performances) >= 8  # all levels show up across 400 nodes

    def test_prices_positive(self, environment):
        assert all(node.price_per_unit > 0 for node in environment.nodes)

    def test_utilization_in_load_range(self):
        config = EnvironmentConfig(node_count=200, seed=3)
        env = EnvironmentGenerator(config).generate()
        assert 0.2 <= env.utilization() <= 0.4  # mean of [0.1, 0.5] draws

    def test_slots_sorted_by_start(self, environment):
        slots = environment.slots()
        starts = [slot.start for slot in slots]
        assert starts == sorted(starts)

    def test_slot_pool_matches_slots(self, environment):
        pool = environment.slot_pool()
        assert len(pool) == len(environment.slots())

    def test_seed_reproducibility(self):
        config = EnvironmentConfig(node_count=20, seed=42)
        env_a = EnvironmentGenerator(config).generate()
        env_b = EnvironmentGenerator(config).generate()
        assert [n.price_per_unit for n in env_a.nodes] == [
            n.price_per_unit for n in env_b.nodes
        ]
        assert [
            t.busy_intervals for t in env_a.timelines.values()
        ] == [t.busy_intervals for t in env_b.timelines.values()]

    def test_different_seeds_differ(self):
        env_a = EnvironmentGenerator(EnvironmentConfig(node_count=20, seed=1)).generate()
        env_b = EnvironmentGenerator(EnvironmentConfig(node_count=20, seed=2)).generate()
        assert [n.price_per_unit for n in env_a.nodes] != [
            n.price_per_unit for n in env_b.nodes
        ]

    def test_successive_generations_are_fresh(self):
        generator = EnvironmentGenerator(EnvironmentConfig(node_count=20, seed=9))
        env_a = generator.generate()
        env_b = generator.generate()
        assert [n.price_per_unit for n in env_a.nodes] != [
            n.price_per_unit for n in env_b.nodes
        ]

    def test_commit_window_marks_timeline_busy(self, environment):
        pool = environment.slot_pool()
        slot = pool.ordered()[0]
        request = ResourceRequest(node_count=1, reservation_time=1.0)
        ws = WindowSlot.for_request(slot, request)
        window = Window(start=slot.start, slots=(ws,))
        environment.commit_window(window)
        timeline = environment.timelines[slot.node.node_id]
        assert not timeline.is_free(window.start, window.start + ws.required_time)

    def test_base_environment_publishes_paper_scale_slot_count(self):
        config = EnvironmentConfig(node_count=100, seed=11)
        counts = []
        generator = EnvironmentGenerator(config)
        for _ in range(10):
            counts.append(len(generator.generate().slots()))
        mean = float(np.mean(counts))
        # Paper's Table 2 reports 472.6 slots for the base environment.
        assert 380 <= mean <= 580


class TestSlotFiltering:
    def test_min_length_filters_short_gaps(self):
        config = EnvironmentConfig(node_count=60, seed=17)
        environment = EnvironmentGenerator(config).generate()
        all_slots = environment.slots()
        long_slots = environment.slots(min_length=30.0)
        assert len(long_slots) < len(all_slots)
        assert all(slot.length >= 30.0 for slot in long_slots)
        assert set(long_slots) <= set(all_slots)

    def test_pool_min_length(self):
        config = EnvironmentConfig(node_count=60, seed=17)
        environment = EnvironmentGenerator(config).generate()
        pool = environment.slot_pool(min_length=30.0)
        assert len(pool) == len(environment.slots(min_length=30.0))
