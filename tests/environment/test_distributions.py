"""Unit tests for the random-variate helpers."""

import numpy as np
import pytest

from repro.environment import (
    hypergeometric_fraction,
    partition_total,
    positive_normal,
    uniform_int,
)
from repro.model import ConfigurationError


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestUniformInt:
    def test_bounds_inclusive(self, rng):
        draws = {uniform_int(rng, 2, 4) for _ in range(500)}
        assert draws == {2, 3, 4}

    def test_degenerate_range(self, rng):
        assert uniform_int(rng, 7, 7) == 7

    def test_empty_range_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            uniform_int(rng, 5, 4)

    def test_roughly_uniform(self, rng):
        draws = [uniform_int(rng, 1, 10) for _ in range(5000)]
        counts = np.bincount(draws, minlength=11)[1:]
        assert counts.min() > 0.7 * counts.max()


class TestHypergeometricFraction:
    def test_within_range(self, rng):
        for _ in range(500):
            value = hypergeometric_fraction(rng, 0.1, 0.5)
            assert 0.1 <= value <= 0.5

    def test_mean_near_midpoint(self, rng):
        values = [hypergeometric_fraction(rng, 0.1, 0.5) for _ in range(3000)]
        assert np.mean(values) == pytest.approx(0.3, abs=0.01)

    def test_degenerate_range(self, rng):
        assert hypergeometric_fraction(rng, 0.25, 0.25) == pytest.approx(0.25)

    def test_invalid_range_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            hypergeometric_fraction(rng, 0.5, 0.1)

    def test_invalid_urn_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            hypergeometric_fraction(rng, 0.1, 0.5, ngood=1, nbad=1, nsample=40)

    def test_spread_is_not_degenerate(self, rng):
        values = [hypergeometric_fraction(rng, 0.1, 0.5) for _ in range(2000)]
        assert np.std(values) > 0.01


class TestPositiveNormal:
    def test_floor_applied(self, rng):
        values = [positive_normal(rng, 0.0, 5.0, floor=0.5) for _ in range(200)]
        assert min(values) >= 0.5

    def test_zero_sigma_returns_mean(self, rng):
        assert positive_normal(rng, 3.0, 0.0, floor=0.1) == pytest.approx(3.0)

    def test_negative_sigma_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            positive_normal(rng, 1.0, -1.0, floor=0.1)


class TestPartitionTotal:
    def test_sums_exactly(self, rng):
        chunks = partition_total(rng, 100.0, 7, 5.0)
        assert sum(chunks) == pytest.approx(100.0)

    def test_respects_minimum(self, rng):
        for _ in range(100):
            chunks = partition_total(rng, 60.0, 4, 10.0)
            assert all(chunk >= 10.0 - 1e-9 for chunk in chunks)

    def test_single_part(self, rng):
        assert partition_total(rng, 42.0, 1, 0.0) == [42.0]

    def test_tight_fit_returns_minimums(self, rng):
        chunks = partition_total(rng, 30.0, 3, 10.0)
        assert chunks == pytest.approx([10.0, 10.0, 10.0])

    def test_infeasible_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            partition_total(rng, 10.0, 3, 5.0)

    def test_zero_parts_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            partition_total(rng, 10.0, 0, 1.0)

    def test_zero_minimum_allows_any_split(self, rng):
        chunks = partition_total(rng, 50.0, 5, 0.0)
        assert sum(chunks) == pytest.approx(50.0)
        assert all(chunk >= 0.0 for chunk in chunks)
