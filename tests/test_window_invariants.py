"""Window invariants every selection algorithm must honour.

One parametrized suite over *all* algorithms in :mod:`repro.core.algorithms`:
whatever a ``select()`` returns must be a legal co-allocation — ``n``
distinct nodes, a synchronous start each leg's slot can host, and a total
cost within the budget.  The :func:`assert_window_invariants` helper is
shared with the service-layer tests, which apply it to every window a
broker cycle commits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import (
    AMP,
    CSA,
    Exhaustive,
    FirstFit,
    MinCost,
    MinEnergy,
    MinFinish,
    MinIdle,
    MinProcTime,
    MinRunTime,
    RigidBackfill,
)
from repro.model import COST_EPSILON, Job, ResourceRequest, Window

from tests.conftest import random_small_pool

ALGORITHMS = [
    AMP,
    CSA,
    Exhaustive,
    FirstFit,
    MinCost,
    MinEnergy,
    MinFinish,
    MinIdle,
    MinProcTime,
    MinRunTime,
    RigidBackfill,
]


def assert_window_invariants(
    window: Window, request: ResourceRequest, cost_aware: bool = True
) -> None:
    """Assert the co-allocation invariants of one selected window.

    * exactly ``request.node_count`` legs on pairwise distinct nodes;
    * every leg fits its slot from the common (synchronous) start;
    * with ``cost_aware`` (every AEP-family algorithm): the total cost
      respects the effective budget, the per-leg durations are the
      performance-scaled task runtimes, and the window passes its own
      :meth:`~repro.model.Window.validate` against the request.

    ``cost_aware=False`` is for :class:`RigidBackfill`, which by design
    ignores the budget and does not scale durations by node performance —
    only the structural co-allocation shape applies to it.
    """
    assert len(window.slots) == request.node_count
    node_ids = [ws.slot.node.node_id for ws in window.slots]
    assert len(set(node_ids)) == len(node_ids), f"repeated nodes: {node_ids}"
    for ws in window.slots:
        assert ws.fits_from(window.start), (
            f"leg on node {ws.slot.node.node_id} does not fit from {window.start}"
        )
    if not cost_aware:
        window.validate()  # structural invariants only
        return
    budget = request.effective_budget
    if budget is not None:
        assert window.total_cost <= budget * (1.0 + COST_EPSILON) + COST_EPSILON
    window.validate(request)


@pytest.fixture(params=ALGORITHMS, ids=lambda cls: cls.__name__)
def algorithm(request):
    return request.param()


@pytest.mark.parametrize(
    "pool_fixture", ["uniform_pool", "heterogeneous_pool"]
)
def test_invariants_on_fixture_pools(algorithm, pool_fixture, request):
    pool = request.getfixturevalue(pool_fixture)
    job = Job(
        "inv-job",
        ResourceRequest(node_count=2, reservation_time=20.0, budget=1000.0),
    )
    window = algorithm.select(job, pool)
    assert window is not None, f"{type(algorithm).__name__} found nothing"
    assert_window_invariants(
        window, job.request, cost_aware=not isinstance(algorithm, RigidBackfill)
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_invariants_on_random_pools(algorithm, seed):
    rng = np.random.default_rng(seed)
    pool = random_small_pool(rng, node_count=8, horizon=60.0)
    job = Job(
        f"inv-rand-{seed}",
        ResourceRequest(node_count=3, reservation_time=10.0, budget=400.0),
    )
    window = algorithm.select(job, pool)
    if window is not None:
        assert_window_invariants(
            window, job.request, cost_aware=not isinstance(algorithm, RigidBackfill)
        )


def test_invariants_with_tight_budget(algorithm, heterogeneous_pool):
    """A budget-capped request must never yield an over-budget window."""
    job = Job(
        "inv-tight",
        ResourceRequest(node_count=2, reservation_time=20.0, budget=21.0),
    )
    window = algorithm.select(job, heterogeneous_pool)
    if window is not None:
        assert_window_invariants(
            window, job.request, cost_aware=not isinstance(algorithm, RigidBackfill)
        )


def test_infeasible_request_returns_none(algorithm, uniform_pool):
    """More nodes than the pool has means no window at all."""
    job = Job(
        "inv-infeasible",
        ResourceRequest(node_count=9, reservation_time=20.0, budget=1e6),
    )
    assert algorithm.select(job, uniform_pool) is None
