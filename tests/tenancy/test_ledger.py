"""Unit tests of the escrow ledger's conservation accounting."""

from __future__ import annotations

import pytest

from repro.tenancy import (
    CREDIT_EPSILON,
    CreditLedger,
    LedgerError,
    TenancyConfig,
    TenantSpec,
)


def ledger(**kwargs) -> CreditLedger:
    defaults = dict(
        tenants=(TenantSpec("alice", credit=100.0),),
        default_credit=50.0,
        forfeit_refund=0.5,
    )
    defaults.update(kwargs)
    return CreditLedger(TenancyConfig(**defaults))


class TestRegistry:
    def test_configured_tenant_starts_with_spec_credit(self):
        led = ledger()
        assert led.balance("alice") == 100.0

    def test_unknown_tenant_auto_registers_with_defaults(self):
        led = ledger()
        assert led.balance("walk-in") == 50.0
        assert "walk-in" in led.tenants()

    def test_weight_comes_from_spec(self):
        led = ledger(tenants=(TenantSpec("vip", credit=10.0, weight=3.0),))
        assert led.account("vip").weight == 3.0
        assert led.account("other").weight == 1.0


class TestDebit:
    def test_debit_moves_balance_into_escrow(self):
        led = ledger()
        assert led.debit("alice", "j1", 40.0, node_seconds=8.0)
        assert led.balance("alice") == pytest.approx(60.0)
        assert led.open_escrow() == pytest.approx(40.0)
        acct = led.account("alice")
        assert acct.committed_node_seconds == pytest.approx(8.0)
        assert acct.held_node_seconds == pytest.approx(8.0)

    def test_unaffordable_debit_refused_without_side_effects(self):
        led = ledger()
        assert not led.debit("alice", "j1", 100.5)
        assert led.balance("alice") == 100.0
        assert led.open_escrow() == 0.0
        led.assert_conservation()

    def test_double_escrow_is_a_bug(self):
        led = ledger()
        led.debit("alice", "j1", 10.0)
        with pytest.raises(LedgerError):
            led.debit("alice", "j1", 5.0)

    def test_negative_debit_is_a_bug(self):
        with pytest.raises(LedgerError):
            ledger().debit("alice", "j1", -1.0)


class TestSettle:
    def test_settlement_turns_escrow_into_revenue(self):
        led = ledger()
        led.debit("alice", "j1", 40.0, node_seconds=8.0)
        tenant, amount = led.settle("j1")
        assert (tenant, amount) == ("alice", 40.0)
        acct = led.account("alice")
        assert acct.spent == pytest.approx(40.0)
        assert acct.held_node_seconds == 0.0
        # Committed node-seconds are the DRF basis: monotone, not undone.
        assert acct.committed_node_seconds == pytest.approx(8.0)
        assert led.open_escrow() == 0.0
        assert led.total_revenue() == pytest.approx(40.0)
        led.assert_conservation()

    def test_settle_without_escrow_is_a_noop(self):
        led = ledger()
        assert led.settle("ghost") == ("", 0.0)


class TestForfeit:
    def test_partial_forfeit_splits_refund_and_revenue(self):
        led = ledger()
        led.debit("alice", "j1", 40.0, multiplier=1.0, node_seconds=8.0)
        tenant, refund = led.refund_forfeit("j1", 10.0)  # one leg of cost 10
        assert tenant == "alice"
        assert refund == pytest.approx(5.0)  # 50% of the leg's escrow
        acct = led.account("alice")
        assert acct.refunded == pytest.approx(5.0)
        assert acct.spent == pytest.approx(5.0)
        assert led.open_escrow() == pytest.approx(30.0)
        led.assert_conservation()

    def test_forfeit_uses_the_commit_time_multiplier(self):
        led = ledger()
        led.debit("alice", "j1", 30.0, multiplier=1.5)
        _, refund = led.refund_forfeit("j1", 10.0)  # leg cost at static prices
        assert refund == pytest.approx(0.5 * 10.0 * 1.5)
        led.assert_conservation()

    def test_full_window_forfeit_closes_the_escrow_exactly(self):
        led = ledger()
        led.debit("alice", "j1", 40.0, node_seconds=8.0)
        led.refund_forfeit("j1", 40.0)
        assert not led.holds_escrow("j1")
        assert led.open_escrow() == 0.0
        assert led.account("alice").held_node_seconds == 0.0
        led.assert_conservation()

    def test_forfeit_without_escrow_is_a_noop(self):
        assert ledger().refund_forfeit("ghost", 10.0) == ("", 0.0)


class TestRelease:
    def test_release_refunds_the_whole_remaining_escrow(self):
        led = ledger()
        led.debit("alice", "j1", 40.0, node_seconds=8.0)
        led.refund_forfeit("j1", 10.0)
        tenant, refund = led.refund_release("j1")
        assert tenant == "alice"
        assert refund == pytest.approx(30.0)
        assert led.balance("alice") == pytest.approx(100.0 - 40.0 + 5.0 + 30.0)
        assert led.open_escrow() == 0.0
        led.assert_conservation()

    def test_release_without_escrow_is_a_noop(self):
        assert ledger().refund_release("ghost") == ("", 0.0)


class TestConservation:
    def test_mixed_lifecycle_balances_globally(self):
        led = ledger(default_credit=500.0)
        led.debit("a", "j1", 120.0, node_seconds=10.0)
        led.debit("b", "j2", 80.0, multiplier=2.0, node_seconds=5.0)
        led.debit("a", "j3", 60.0, node_seconds=4.0)
        led.settle("j1")
        led.refund_forfeit("j2", 15.0)
        led.refund_release("j2")
        led.assert_conservation()
        snap = led.snapshot()
        assert snap["total_debited"] == pytest.approx(260.0)
        assert snap["total_refunded"] + snap["total_spent"] + snap[
            "open_escrow"
        ] == pytest.approx(260.0)

    def test_conservation_check_catches_tampering(self):
        led = ledger()
        led.debit("alice", "j1", 10.0)
        led.account("alice").balance += 7.0  # corrupt
        with pytest.raises(LedgerError):
            led.assert_conservation()

    def test_epsilon_dust_is_absorbed(self):
        led = ledger()
        led.debit("alice", "j1", 30.0, multiplier=1.0)
        # Three forfeits of a third each leave float dust behind.
        for _ in range(3):
            led.refund_forfeit("j1", 10.0)
        assert led.open_escrow() <= CREDIT_EPSILON
        led.assert_conservation()
