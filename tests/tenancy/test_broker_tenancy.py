"""The tenancy layer threaded through a live broker.

The load-bearing guarantee comes first: with ``ServiceConfig.tenancy``
left at ``None`` the broker's deterministic trace is *byte-identical*
to the pre-tenancy build — asserted against a pinned fingerprint — so
the whole subsystem is provably inert until switched on.  The rest
exercises the enabled paths: DRF batch selection, admission and
commit-time credit gates, pricing in the cycle trace, forfeit and
evacuation refunds, and end-to-end conservation under a realistic run.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.model import Job, ResourceRequest, SlotPool
from repro.service import (
    BrokerService,
    CollectingSink,
    ResilienceConfig,
    ServiceConfig,
    TraceValidator,
    deterministic_trace,
)
from repro.service.admission import RejectionReason
from repro.service.events import EventType
from repro.simulation.jobgen import JobGenerator
from repro.tenancy import TenancyConfig, TenantSpec

from tests.conftest import make_slot

#: SHA-256 of the canonical 60-job seed-42 broker trace, captured on the
#: commit *before* the tenancy subsystem existed.  If a tenancy-disabled
#: broker ever emits a different trace, the opt-in promise is broken.
BROKER_FINGERPRINT = (
    "bb8534dfba982475942a7eee750413e492b7b2c30162dae060f37223a095538a"
)


def trace_fingerprint(events) -> str:
    canonical = json.dumps(deterministic_trace(events), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


def uniform_pool(nodes: int = 4) -> SlotPool:
    """Identical nodes (perf 4, price 2) free on [0, 100): a 2-node
    20-unit request costs exactly 20 on any pair."""
    return SlotPool.from_slots(
        [make_slot(i, 0.0, 100.0) for i in range(nodes)]
    )


def job(job_id: str, owner: str, budget: float = 1000.0) -> Job:
    return Job(
        job_id,
        ResourceRequest(node_count=2, reservation_time=20.0, budget=budget),
        owner=owner,
    )


class TestDisabledIsByteIdentical:
    def test_broker_trace_matches_the_pre_tenancy_fingerprint(self):
        env = EnvironmentGenerator(
            EnvironmentConfig(node_count=24, seed=42)
        ).generate()
        sink = CollectingSink()
        service = BrokerService(
            env.slot_pool(),
            config=ServiceConfig(batch_size=4, record_assignments=True),
            sinks=[sink],
        )
        with service:
            service.process(JobGenerator(seed=42).iter_arrivals(60, rate=1.5))
        assert service.tenancy is None
        assert trace_fingerprint(sink.events) == BROKER_FINGERPRINT


class TestDRFBatchSelection:
    def make_broker(self, ordering: str) -> BrokerService:
        return BrokerService(
            uniform_pool(),
            config=ServiceConfig(
                batch_size=2,
                tenancy=TenancyConfig(ordering=ordering),
            ),
        )

    def test_fifo_lets_the_queue_head_monopolise_the_batch(self):
        broker = self.make_broker("fifo")
        with broker:
            for j in (job("h1", "hog"), job("h2", "hog"), job("s1", "small")):
                broker.submit(j)
            broker.pump()
            shares = broker.tenancy.ledger.committed_shares()
        assert shares.get("hog", 0.0) > 0.0
        assert shares.get("small", 0.0) == 0.0

    def test_drf_serves_the_smallest_dominant_share_first(self):
        broker = self.make_broker("drf")
        with broker:
            for j in (job("h1", "hog"), job("h2", "hog"), job("s1", "small")):
                broker.submit(j)
            broker.pump()
            shares = broker.tenancy.ledger.committed_shares()
        # Serving the first hog job lifts the hog's share above zero, so
        # the second batch slot must go to the small tenant.
        assert shares.get("hog", 0.0) > 0.0
        assert shares.get("small", 0.0) > 0.0


class TestCreditGates:
    def test_admission_rejects_tenants_who_cannot_pay_the_lower_bound(self):
        broker = BrokerService(
            uniform_pool(),
            config=ServiceConfig(
                tenancy=TenancyConfig(
                    tenants=(TenantSpec("poor", credit=5.0),)
                )
            ),
        )
        sink = CollectingSink()
        broker.events.add_sink(sink)
        with broker:
            decision = broker.submit(job("j1", "poor"))
        assert not decision.admitted
        assert decision.reason is RejectionReason.INSUFFICIENT_CREDIT
        kinds = [e.type for e in sink.events]
        assert EventType.INSUFFICIENT_CREDIT in kinds
        assert EventType.REJECTED in kinds

    def test_enforcement_off_admits_but_still_defers_overdrafts(self):
        broker = BrokerService(
            uniform_pool(),
            config=ServiceConfig(
                batch_size=1,
                tenancy=TenancyConfig(
                    tenants=(TenantSpec("poor", credit=5.0),),
                    enforce_credits=False,
                ),
            ),
        )
        with broker:
            decision = broker.submit(job("j1", "poor"))
            assert decision.admitted  # ledger is observe-only at the door
            broker.pump()
            # ...but the commit still cannot overdraw the account.
            assert broker.tenancy.ledger.balance("poor") == 5.0
            assert broker.stats.scheduled == 0

    def test_commit_gate_blocks_the_second_window_of_a_thin_account(self):
        # Balance 30 passes the admission lower bound (20) for both
        # jobs, but escrowing the first window leaves only 10: the
        # second commit must be deferred, not executed.
        validator = TraceValidator()
        broker = BrokerService(
            uniform_pool(),
            config=ServiceConfig(
                batch_size=2,
                tenancy=TenancyConfig(
                    tenants=(TenantSpec("thin", credit=30.0),)
                ),
            ),
            sinks=[validator],
        )
        with broker:
            assert broker.submit(job("j1", "thin")).admitted
            assert broker.submit(job("j2", "thin")).admitted
            broker.pump()
            assert broker.stats.scheduled == 1
            assert validator.counts[EventType.INSUFFICIENT_CREDIT] == 1
            assert broker.tenancy.ledger.balance("thin") == pytest.approx(10.0)
            broker.drain()
            broker.tenancy.ledger.assert_conservation()
        # The drained trace still satisfies every law: the blocked job
        # reached a terminal state without ever touching the ledger.
        validator.check(expect_drained=True)

    def test_settlement_spends_the_escrow_on_retirement(self):
        broker = BrokerService(
            uniform_pool(),
            config=ServiceConfig(
                batch_size=1,
                tenancy=TenancyConfig(tenants=(TenantSpec("a", credit=100.0),)),
            ),
        )
        with broker:
            broker.submit(job("j1", "a"))
            broker.pump()
            assert broker.tenancy.ledger.balance("a") == pytest.approx(80.0)
            broker.drain()
            ledger = broker.tenancy.ledger
            assert ledger.balance("a") == pytest.approx(80.0)
            assert ledger.total_revenue() == pytest.approx(20.0)
            assert ledger.open_escrow() == 0.0
            ledger.assert_conservation()


class TestPricingInTheTrace:
    def test_cycle_end_carries_the_live_multiplier(self):
        sink = CollectingSink()
        broker = BrokerService(
            uniform_pool(),
            config=ServiceConfig(batch_size=1, tenancy=TenancyConfig()),
            sinks=[sink],
        )
        with broker:
            broker.submit(job("j1", "a"))
            broker.pump()
        cycle_ends = [e for e in sink.events if e.type is EventType.CYCLE_END]
        assert cycle_ends
        multiplier = cycle_ends[-1].fields["price_multiplier"]
        assert multiplier >= 1.0

    def test_disabled_pricing_never_moves_the_multiplier(self):
        broker = BrokerService(
            uniform_pool(),
            config=ServiceConfig(
                tenancy=TenancyConfig(pricing=False)
            ),
        )
        with broker:
            for index in range(4):
                broker.submit(job(f"j{index}", "a"))
            broker.pump()
            assert broker.tenancy.price_multiplier == 1.0


class TestForfeitAttribution:
    """Satellite regression: forfeits are billed to the window's owner."""

    def test_resilience_revocation_attributes_the_owner(self):
        pool = EnvironmentGenerator(
            EnvironmentConfig(node_count=40, seed=11)
        ).generate()
        sink = CollectingSink()
        service = BrokerService(
            pool.slot_pool(),
            config=ServiceConfig(
                batch_size=1,
                record_assignments=True,
                resilience=ResilienceConfig(rate=0.0, policy="abandon"),
            ),
            sinks=[sink],
        )
        service.submit(
            Job(
                "j0",
                ResourceRequest(
                    node_count=2, reservation_time=20.0, budget=2000.0
                ),
                owner="alice",
            )
        )
        assert service.pump() == 1
        window = service.assignments["j0"]
        from repro.service import NodePreemption

        leg = window.slots[0]
        service.resilience.apply(
            NodePreemption(
                node_id=leg.slot.node.node_id,
                arrival=window.start,
                length=5.0,
            ),
            service.now,
        )
        # The owner is billed for exactly the revoked node-seconds...
        assert service.stats.forfeited_by_owner == {
            "alice": pytest.approx(service.stats.forfeited_node_seconds)
        }
        assert service.stats.forfeited_node_seconds > 0.0
        # ...and the REVOKED event names the owner for the trace.
        revoked = [e for e in sink.events if e.type is EventType.REVOKED]
        assert revoked and revoked[0].fields["owner"] == "alice"

    def test_evacuation_refunds_every_live_escrow(self):
        config = TenancyConfig(tenants=(TenantSpec("a", credit=100.0),))
        broker = BrokerService(
            uniform_pool(), config=ServiceConfig(batch_size=1, tenancy=config)
        )
        broker.submit(job("j1", "a"))
        broker.pump()
        ledger = broker.tenancy.ledger
        assert ledger.open_escrow() == pytest.approx(20.0)
        broker.evacuate()
        # Forfeit (half back) then release of the remainder: the tenant
        # ends with the forfeit's spent part as its only loss.
        assert ledger.open_escrow() == 0.0
        assert ledger.balance("a") == pytest.approx(90.0)
        assert ledger.total_revenue() == pytest.approx(10.0)
        ledger.assert_conservation()


class TestEndToEndConservation:
    def test_wave_loaded_run_passes_every_law(self):
        owners = ("hog", "t1", "t2")
        arrivals = []
        for index, (when, item) in enumerate(
            JobGenerator(seed=7).iter_arrivals(40, rate=4.0)
        ):
            from dataclasses import replace

            arrivals.append(
                (when, replace(item, owner=owners[index % len(owners)]))
            )
        pool = (
            EnvironmentGenerator(EnvironmentConfig(node_count=12, seed=42))
            .generate()
            .slot_pool()
        )
        validator = TraceValidator()
        broker = BrokerService(
            pool,
            config=ServiceConfig(batch_size=4, tenancy=TenancyConfig()),
            sinks=[validator],
        )
        with broker:
            for start in range(0, len(arrivals), 8):
                wave = arrivals[start : start + 8]
                broker.advance_to(wave[0][0])
                for _, item in wave:
                    broker.submit(item)
                broker.pump()
            broker.drain()
            ledger = broker.tenancy.ledger
            ledger.assert_conservation()
            assert ledger.open_escrow() == 0.0
            assert validator.counts[EventType.CREDIT_DEBITED] > 0
        validator.check(expect_drained=True)
