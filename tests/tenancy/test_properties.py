"""Property suite: ledger conservation under interleaved op storms."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tenancy import CreditLedger, TenancyConfig

TENANTS = ("alice", "bob", "carol")

#: One storm step: (op, tenant_index, job_index, amount).  ``op`` picks
#: among commit-time debit, retirement settle, revocation forfeit, and
#: replan/abandon release; tenant/job indices alias a small pool so the
#: storm genuinely interleaves lifecycles across shared accounts.
steps = st.lists(
    st.tuples(
        st.sampled_from(["debit", "settle", "forfeit", "release"]),
        st.integers(min_value=0, max_value=len(TENANTS) - 1),
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=0.01, max_value=500.0, allow_nan=False),
    ),
    min_size=0,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(
    steps,
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=1.0, max_value=3.0),
)
def test_conservation_survives_interleaved_storms(storm, refund, multiplier):
    ledger = CreditLedger(
        TenancyConfig(default_credit=1_000.0, forfeit_refund=refund)
    )
    debited = refunded = spent = 0.0
    for op, tenant_index, job_index, amount in storm:
        tenant = TENANTS[tenant_index]
        job_id = f"job-{job_index}"
        if op == "debit":
            if ledger.holds_escrow(job_id):
                continue  # double escrow is a programming error by design
            if ledger.debit(
                tenant,
                job_id,
                amount,
                multiplier=multiplier,
                node_seconds=amount,
            ):
                debited += amount
        elif op == "settle":
            _, settled = ledger.settle(job_id)
            spent += settled
        elif op == "forfeit":
            before = ledger.snapshot()
            _, back = ledger.refund_forfeit(job_id, amount)
            refunded += back
            spent += (
                ledger.snapshot()["total_spent"] - before["total_spent"]
            )
        else:
            _, back = ledger.refund_release(job_id)
            refunded += back
        # The ledger's own law must hold after *every* step, not just
        # at the end of the storm.
        ledger.assert_conservation()

    snap = ledger.snapshot()
    # The test's independent tally agrees with the ledger's books.
    assert abs(snap["total_debited"] - debited) < 1e-6
    assert abs(snap["total_refunded"] - refunded) < 1e-6
    assert abs(snap["total_spent"] - spent) < 1e-6
    # Global conservation: everything debited is refunded, earned, or
    # still held in an open escrow.
    assert (
        abs(
            snap["total_debited"]
            - snap["total_refunded"]
            - snap["total_spent"]
            - snap["open_escrow"]
        )
        < 1e-6
    )
    # No account ever goes negative.
    for name in ledger.tenants():
        assert ledger.balance(name) >= -1e-9


@settings(max_examples=60, deadline=None)
@given(steps)
def test_committed_node_seconds_are_monotone(storm):
    """The DRF basis never decreases, whatever the lifecycle does."""
    ledger = CreditLedger(TenancyConfig(default_credit=10_000.0))
    committed = {name: 0.0 for name in TENANTS}
    for op, tenant_index, job_index, amount in storm:
        tenant = TENANTS[tenant_index]
        job_id = f"job-{job_index}"
        if op == "debit" and not ledger.holds_escrow(job_id):
            ledger.debit(tenant, job_id, amount, node_seconds=amount)
        elif op == "settle":
            ledger.settle(job_id)
        elif op == "forfeit":
            ledger.refund_forfeit(job_id, amount)
        else:
            ledger.refund_release(job_id)
        for name, seconds in ledger.committed_shares().items():
            assert seconds >= committed.get(name, 0.0) - 1e-9
            committed[name] = seconds
