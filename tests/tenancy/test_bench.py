"""The tenancy benchmark: gates, payload shape, CLI wiring."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.tenancy import TenancyGateError, bench_tenancy

#: Small but genuinely contended: 80 jobs in waves of 16 on 8 nodes
#: drop under both orderings and DRF beats FIFO on Jain's index.
SMALL = dict(jobs=80, node_count=8, small_tenants=3, wave=16, batch_size=4)


class TestGates:
    def test_contended_mix_passes_and_reports_both_orderings(self):
        payload = bench_tenancy(**SMALL)
        assert payload["benchmark"] == "tenancy"
        rows = {row["ordering"]: row for row in payload["results"]}
        assert set(rows) == {"fifo", "drf"}
        assert rows["drf"]["jain_index"] > rows["fifo"]["jain_index"]
        assert rows["fifo"]["dropped"] + rows["drf"]["dropped"] > 0
        for row in rows.values():
            assert 0.0 < row["jain_index"] <= 1.0
            assert row["revenue"] > 0.0
            assert row["price_multiplier"] >= 1.0
            assert row["credits_debited"] > 0
            # Every tenant in the mix appears in the share table.
            assert "hog" in row["committed_node_seconds"]
        assert payload["config"]["wave"] == SMALL["wave"]

    def test_uncontended_stream_refuses_to_record(self):
        with pytest.raises(TenancyGateError, match="not contended"):
            bench_tenancy(
                jobs=6,
                node_count=32,
                small_tenants=2,
                arrival_rate=0.2,
                wave=2,
                batch_size=2,
            )


class TestCli:
    def test_bench_tenancy_writes_the_payload(self, tmp_path, capsys):
        out = tmp_path / "tenancy.json"
        code = main(
            [
                "bench-tenancy",
                "--jobs",
                "80",
                "--nodes",
                "8",
                "--small-tenants",
                "3",
                "--wave",
                "16",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "fairness gate holds" in printed
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "tenancy"
        assert len(payload["results"]) == 2

    def test_gate_failure_exits_nonzero_and_writes_nothing(
        self, tmp_path, capsys
    ):
        out = tmp_path / "tenancy.json"
        code = main(
            [
                "bench-tenancy",
                "--jobs",
                "6",
                "--nodes",
                "32",
                "--rate",
                "0.2",
                "--wave",
                "2",
                "-o",
                str(out),
            ]
        )
        assert code == 1
        assert "TENANCY GATE FAILED" in capsys.readouterr().err
        assert not out.exists()
