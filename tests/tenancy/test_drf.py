"""The DRF sorter: ordering laws and equivalence to brute force."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tenancy import DRFSorter, dominant_share


class TestDominantShare:
    def test_share_is_allocation_over_weight(self):
        assert dominant_share(10.0, 2.0) == 5.0

    def test_zero_allocation_is_zero_share(self):
        assert dominant_share(0.0, 3.0) == 0.0

    @pytest.mark.parametrize("weight", [0.0, -1.0])
    def test_rejects_non_positive_weight(self, weight):
        with pytest.raises(ValueError):
            dominant_share(1.0, weight)


class TestSort:
    def test_ascending_share_then_name(self):
        sorter = DRFSorter(allocated={"a": 5.0, "b": 1.0, "c": 1.0})
        assert sorter.sort(["a", "b", "c"]) == ["b", "c", "a"]

    def test_weights_divide_shares(self):
        # a has 3x the allocation of b but 4x the weight: smaller share.
        sorter = DRFSorter(
            allocated={"a": 6.0, "b": 2.0}, weights={"a": 4.0, "b": 1.0}
        )
        assert sorter.sort(["a", "b"]) == ["a", "b"]

    def test_unknown_tenants_default_to_zero_share(self):
        sorter = DRFSorter(allocated={"hog": 100.0})
        assert sorter.sort(["hog", "new"]) == ["new", "hog"]

    def test_zero_shares_tie_break_alphabetically(self):
        sorter = DRFSorter()
        assert sorter.sort(["c", "a", "b"]) == ["a", "b", "c"]


class TestSelect:
    def test_serving_grows_the_share_and_rotates(self):
        pending = {"a": ["a1", "a2", "a3"], "b": ["b1", "b2", "b3"]}
        sorter = DRFSorter()
        # Equal unit demands: picks must alternate, alphabetical first.
        picks = sorter.select(pending, demand=lambda _: 1.0, limit=4)
        assert picks == ["a1", "b1", "a2", "b2"]

    def test_respects_the_limit(self):
        pending = {"a": list("xyz")}
        assert len(DRFSorter().select(pending, lambda _: 1.0, limit=2)) == 2
        assert pending["a"] == ["z"]

    def test_serves_fifo_within_a_tenant(self):
        pending = {"a": ["first", "second"]}
        assert DRFSorter().select(pending, lambda _: 1.0, limit=2) == [
            "first",
            "second",
        ]

    def test_prior_allocation_starves_the_hog_until_parity(self):
        pending = {"hog": ["h1", "h2"], "small": ["s1", "s2"]}
        sorter = DRFSorter(allocated={"hog": 10.0})
        picks = sorter.select(pending, demand=lambda _: 4.0, limit=3)
        # small must catch up (0 -> 4 -> 8) before the hog is served.
        assert picks == ["s1", "s2", "h1"]

    def test_exhausted_tenants_drop_out(self):
        pending = {"a": ["a1"], "b": ["b1", "b2", "b3"]}
        picks = DRFSorter().select(pending, lambda _: 1.0, limit=4)
        assert picks == ["a1", "b1", "b2", "b3"]


def brute_force_select(allocated, weights, pending, demands, limit):
    """Reference Mesos loop: literal argmin over (share, name) each pick."""
    allocated = dict(allocated)
    pending = {name: list(items) for name, items in pending.items()}
    served = []
    while len(served) < limit:
        candidates = sorted(
            (
                (
                    dominant_share(
                        allocated.get(name, 0.0), weights.get(name, 1.0)
                    ),
                    name,
                )
                for name, items in pending.items()
                if items
            ),
        )
        if not candidates:
            break
        _, best = candidates[0]
        item = pending[best].pop(0)
        served.append(item)
        allocated[best] = allocated.get(best, 0.0) + demands[item]
    return served


@st.composite
def drf_instances(draw):
    tenant_count = draw(st.integers(min_value=1, max_value=5))
    names = [f"t{i}" for i in range(tenant_count)]
    allocated = {
        name: draw(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
        )
        for name in names
    }
    weights = {
        name: draw(
            st.floats(min_value=0.25, max_value=4.0, allow_nan=False)
        )
        for name in names
    }
    pending = {}
    demands = {}
    for name in names:
        depth = draw(st.integers(min_value=0, max_value=4))
        items = [f"{name}-job{j}" for j in range(depth)]
        pending[name] = items
        for item in items:
            demands[item] = draw(
                st.floats(min_value=0.1, max_value=50.0, allow_nan=False)
            )
    limit = draw(st.integers(min_value=0, max_value=12))
    return allocated, weights, pending, demands, limit


class TestSelectMatchesBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(drf_instances())
    def test_select_is_the_dominant_share_argmin_loop(self, instance):
        allocated, weights, pending, demands, limit = instance
        expected = brute_force_select(
            allocated, weights, pending, demands, limit
        )
        sorter = DRFSorter(allocated=dict(allocated), weights=dict(weights))
        got = sorter.select(
            {name: list(items) for name, items in pending.items()},
            demand=lambda item: demands[item],
            limit=limit,
        )
        assert got == expected
