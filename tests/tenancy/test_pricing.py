"""The utilization-driven pricing loop."""

from __future__ import annotations

import pytest

from repro.tenancy import PricingEngine, TenancyConfig


def engine(**kwargs) -> PricingEngine:
    return PricingEngine(TenancyConfig(**kwargs))


class TestMultiplier:
    def test_idle_pool_stays_at_the_static_floor(self):
        eng = engine()
        assert eng.observe_cycle(0.0, 100.0) == 1.0
        assert eng.multiplier == 1.0

    def test_hot_pool_scales_with_gain(self):
        eng = engine(pricing_gain=0.5, max_multiplier=10.0)
        eng.observe_cycle(80.0, 20.0)  # utilization 0.8
        assert eng.multiplier == pytest.approx(1.0 + 0.5 * 0.8)

    def test_clamped_at_max_multiplier(self):
        eng = engine(pricing_gain=100.0, max_multiplier=3.0)
        eng.observe_cycle(99.0, 1.0)
        assert eng.multiplier == 3.0

    def test_pricing_off_pins_the_multiplier(self):
        eng = engine(pricing=False, pricing_gain=100.0)
        eng.observe_cycle(100.0, 0.0)
        assert eng.multiplier == 1.0
        # The utilization estimate still tracks, only pricing is inert.
        assert eng.utilization == 1.0


class TestEwma:
    def test_first_sample_seeds_the_estimate(self):
        eng = engine(pricing_decay=0.9)
        eng.observe_cycle(50.0, 50.0)
        assert eng.utilization == pytest.approx(0.5)

    def test_later_samples_decay_in(self):
        eng = engine(pricing_decay=0.7)
        eng.observe_cycle(50.0, 50.0)  # seed at 0.5
        eng.observe_cycle(100.0, 0.0)  # fold in 1.0
        assert eng.utilization == pytest.approx(0.7 * 0.5 + 0.3 * 1.0)

    def test_empty_pool_counts_as_idle(self):
        eng = engine()
        eng.observe_cycle(0.0, 0.0)
        assert eng.utilization == 0.0

    def test_sample_is_clamped_to_unit_interval(self):
        eng = engine()
        eng.observe_cycle(100.0, -1.0)  # degenerate free estimate
        assert eng.utilization <= 1.0

    def test_snapshot_counts_cycles(self):
        eng = engine()
        eng.observe_cycle(1.0, 1.0)
        eng.observe_cycle(1.0, 1.0)
        snap = eng.snapshot()
        assert snap["cycles_observed"] == 2
        assert snap["multiplier"] == eng.multiplier
