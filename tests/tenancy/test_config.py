"""Validation of the tenancy configuration surface."""

from __future__ import annotations

import pytest

from repro.model.errors import ConfigurationError
from repro.tenancy import ORDERING_NAMES, TenancyConfig, TenantSpec


class TestTenantSpec:
    def test_defaults(self):
        spec = TenantSpec("alice", credit=10.0)
        assert spec.weight == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="", credit=1.0),
            dict(name="a", credit=-1.0),
            dict(name="a", credit=1.0, weight=0.0),
            dict(name="a", credit=1.0, weight=-2.0),
        ],
    )
    def test_rejects_bad_specs(self, kwargs):
        with pytest.raises(ConfigurationError):
            TenantSpec(**kwargs)


class TestTenancyConfig:
    def test_defaults_are_valid(self):
        config = TenancyConfig()
        assert config.ordering in ORDERING_NAMES
        assert config.enforce_credits
        assert config.pricing

    def test_rejects_duplicate_tenant_names(self):
        with pytest.raises(ConfigurationError):
            TenancyConfig(
                tenants=(TenantSpec("a", credit=1.0), TenantSpec("a", credit=2.0))
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(default_credit=-1.0),
            dict(default_weight=0.0),
            dict(ordering="lottery"),
            dict(forfeit_refund=-0.1),
            dict(forfeit_refund=1.1),
            dict(pricing_decay=0.0),
            dict(pricing_decay=1.0),
            dict(pricing_gain=-0.5),
            dict(min_multiplier=0.0),
            dict(min_multiplier=2.0, max_multiplier=1.5),
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            TenancyConfig(**kwargs)
