"""Smoke tests: every example script runs to completion.

Examples are part of the public contract; this module executes each one
in a subprocess (with small workloads where the script accepts an
argument) and asserts a clean exit.  Keeps the examples from rotting as
the library evolves.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

#: script -> extra argv (small workloads keep the suite fast).
EXAMPLES = {
    "quickstart.py": [],
    "algorithm_comparison.py": ["15"],
    "batch_scheduling.py": [],
    "user_strategies.py": [],
    "custom_criterion.py": [],
    "pareto_tradeoffs.py": [],
    "robustness_gantt.py": [],
    "job_flow_policies.py": [],
    "reservations_lifecycle.py": [],
    "render_figures.py": ["5"],
    "distribution_analysis.py": ["15"],
}


def run_example(name: str, args):
    path = os.path.join(EXAMPLES_DIR, name)
    return subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.parametrize("name", sorted(EXAMPLES))
def test_example_runs_clean(name):
    result = run_example(name, EXAMPLES[name])
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{name} produced no output"


def test_every_example_is_covered():
    present = {
        entry
        for entry in os.listdir(EXAMPLES_DIR)
        if entry.endswith(".py")
    }
    assert present == set(EXAMPLES), (
        "examples/ and the smoke-test inventory diverged: "
        f"missing={present - set(EXAMPLES)}, stale={set(EXAMPLES) - present}"
    )
