"""End-to-end integration: multi-cycle batch scheduling on one environment.

Exercises the whole stack together — environment generation, CSA
alternative search, phase-two combination selection, allocation commit —
over several consecutive scheduling cycles, checking global consistency
invariants after every cycle.
"""

import pytest

from repro.core import CSA, Criterion
from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.model import Job, JobBatch, ResourceRequest
from repro.scheduling import BatchScheduler


def batch(cycle: int, jobs: int = 3) -> JobBatch:
    result = JobBatch()
    for index in range(jobs):
        result.add(
            Job(
                f"cycle{cycle}-job{index}",
                ResourceRequest(
                    node_count=2 + index % 2,
                    reservation_time=80.0,
                    budget=900.0,
                ),
                priority=jobs - index,
            )
        )
    return result


class TestMultiCycleScheduling:
    def test_three_cycles_remain_consistent(self):
        environment = EnvironmentGenerator(
            EnvironmentConfig(node_count=50, seed=77)
        ).generate()
        scheduler = BatchScheduler(
            search=CSA(max_alternatives=8), criterion=Criterion.FINISH_TIME
        )
        total_scheduled = 0
        previous_free = environment.slot_pool().total_free_time()
        for cycle in range(3):
            report = scheduler.run_cycle(batch(cycle), environment)
            total_scheduled += report.choice.scheduled_count

            # Windows are mutually conflict-free and validate individually.
            chosen = list(report.scheduled.values())
            for index, window in enumerate(chosen):
                for other in chosen[index + 1 :]:
                    assert not window.conflicts_with(other)

            # Free time decreases exactly by the committed processor time.
            free_now = environment.slot_pool().total_free_time()
            committed = sum(window.processor_time for window in chosen)
            assert free_now == pytest.approx(previous_free - committed, rel=1e-6)
            previous_free = free_now

            # Node timelines never double-book (add_busy would raise), and
            # stay within the scheduling interval.
            for timeline in environment.timelines.values():
                for start, end in timeline.busy_intervals:
                    assert 0.0 - 1e-9 <= start < end <= 600.0 + 1e-9
        assert total_scheduled >= 6  # most jobs find room in 50 nodes

    def test_capacity_exhaustion_is_graceful(self):
        environment = EnvironmentGenerator(
            EnvironmentConfig(node_count=4, seed=5)
        ).generate()
        scheduler = BatchScheduler(search=CSA(max_alternatives=4))
        heavy = JobBatch()
        for index in range(8):
            heavy.add(
                Job(
                    f"heavy-{index}",
                    ResourceRequest(
                        node_count=3, reservation_time=300.0, budget=5000.0
                    ),
                    priority=8 - index,
                )
            )
        scheduled, unscheduled = 0, 0
        for cycle in range(4):
            report = scheduler.run_cycle(heavy if cycle == 0 else batch(cycle, 4), environment)
            scheduled += report.choice.scheduled_count
            unscheduled += len(report.unscheduled)
        # A 4-node environment cannot absorb this demand; the scheduler
        # must keep returning consistent reports instead of failing.
        assert unscheduled > 0
        assert scheduled > 0

    def test_phase_one_algorithm_swap(self):
        from repro.core import MinCost

        environment = EnvironmentGenerator(
            EnvironmentConfig(node_count=50, seed=9)
        ).generate()
        scheduler = BatchScheduler(search=MinCost(), criterion=Criterion.COST)
        report = scheduler.run_cycle(batch(0), environment)
        assert report.choice.scheduled_count >= 1
        for job_id, count in report.alternatives_found.items():
            assert count <= 1  # single-window search yields one alternative
