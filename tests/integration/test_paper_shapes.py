"""Integration test: the paper's qualitative results on the base experiment.

One moderately sized seeded run of the Section 3.1 experiment, asserting
the orderings and ratios of Figs. 2-4 (not the absolute values — those are
checked loosely in EXPERIMENTS.md / the benchmark harness).
"""

import pytest

from repro.core import Criterion
from repro.environment import EnvironmentConfig
from repro.simulation import ExperimentConfig, run_comparison

CYCLES = 30


@pytest.fixture(scope="module")
def result():
    config = ExperimentConfig(
        environment=EnvironmentConfig(node_count=100),
        cycles=CYCLES,
        seed=424242,
    )
    return run_comparison(config, validate=True)


class TestFindRates:
    def test_base_job_always_schedulable(self, result):
        for name, stats in result.algorithms.items():
            assert stats.find_rate == 1.0, name


class TestFig2aStartTime:
    def test_amp_minfinish_csa_start_at_zero(self, result):
        assert result.mean_of("AMP", Criterion.START_TIME) < 2.0
        assert result.mean_of("MinFinish", Criterion.START_TIME) < 2.0
        assert result.csa_mean_of(Criterion.START_TIME) < 2.0

    def test_start_time_ordering(self, result):
        # Paper: AMP/MinFinish/CSA ~ 0 < MinRunTime (53) < MinCost (193)
        # < MinProcTime (514.9).
        run = result.mean_of("MinRunTime", Criterion.START_TIME)
        cost = result.mean_of("MinCost", Criterion.START_TIME)
        proc = result.mean_of("MinProcTime", Criterion.START_TIME)
        assert 2.0 < run < cost < proc


class TestFig2bRuntime:
    def test_minruntime_wins(self, result):
        ranking = result.ranking(Criterion.RUNTIME)
        assert ranking[0] == "MinRunTime"

    def test_minfinish_close_behind(self, result):
        # Paper: MinFinish only 4.2% longer than MinRunTime.
        best = result.mean_of("MinRunTime", Criterion.RUNTIME)
        finish = result.mean_of("MinFinish", Criterion.RUNTIME)
        assert finish <= 1.15 * best

    def test_amp_and_mincost_relatively_long(self, result):
        best = result.mean_of("MinRunTime", Criterion.RUNTIME)
        assert result.mean_of("AMP", Criterion.RUNTIME) > 1.3 * best
        assert result.mean_of("MinCost", Criterion.RUNTIME) > 1.5 * best

    def test_runtime_scale_matches_paper_band(self, result):
        # Paper: 33 time units; our calibrated environment lands in
        # the same band (25-45) rather than at the 15 a budget-free
        # search would reach.
        assert 25.0 <= result.mean_of("MinRunTime", Criterion.RUNTIME) <= 45.0


class TestFig3aFinishTime:
    def test_minfinish_wins(self, result):
        assert result.ranking(Criterion.FINISH_TIME)[0] == "MinFinish"

    def test_csa_second(self, result):
        # Paper: CSA's finish is the closest to MinFinish (52.9% later).
        ranking = result.ranking(Criterion.FINISH_TIME)
        assert ranking[1] == "CSA"
        best = result.mean_of("MinFinish", Criterion.FINISH_TIME)
        csa = result.csa_mean_of(Criterion.FINISH_TIME)
        assert best < csa < 2.5 * best

    def test_mincost_finishes_late(self, result):
        best = result.mean_of("MinFinish", Criterion.FINISH_TIME)
        assert result.mean_of("MinCost", Criterion.FINISH_TIME) > 4.0 * best


class TestFig3bProcessorTime:
    def test_minruntime_best(self, result):
        assert result.ranking(Criterion.PROCESSOR_TIME)[0] == "MinRunTime"

    def test_comparable_group(self, result):
        # Paper: MinFinish, CSA, MinProcTime within ~9% of MinRunTime.
        best = result.mean_of("MinRunTime", Criterion.PROCESSOR_TIME)
        assert result.mean_of("MinFinish", Criterion.PROCESSOR_TIME) <= 1.15 * best
        assert result.csa_mean_of(Criterion.PROCESSOR_TIME) <= 1.15 * best
        assert result.mean_of("MinProcTime", Criterion.PROCESSOR_TIME) <= 1.2 * best

    def test_amp_and_mincost_most_consuming(self, result):
        group_max = max(
            result.mean_of(name, Criterion.PROCESSOR_TIME)
            for name in ("MinRunTime", "MinFinish", "MinProcTime")
        )
        assert result.mean_of("AMP", Criterion.PROCESSOR_TIME) > group_max
        assert result.mean_of("MinCost", Criterion.PROCESSOR_TIME) > group_max


class TestFig4Cost:
    def test_mincost_big_advantage(self, result):
        # Paper: MinCost 1027 vs CSA-cheapest 1352 (31.6% more) and
        # MinRunTime 1464 (42.5% more).
        min_cost = result.mean_of("MinCost", Criterion.COST)
        csa = result.csa_mean_of(Criterion.COST)
        run = result.mean_of("MinRunTime", Criterion.COST)
        assert csa > 1.2 * min_cost
        assert run > 1.3 * min_cost

    def test_everything_within_budget(self, result):
        for name in result.algorithms:
            assert result.mean_of(name, Criterion.COST) <= 1500.0
        assert result.csa_mean_of(Criterion.COST) <= 1500.0

    def test_non_cost_algorithms_cluster_near_budget(self, result):
        # Paper: "alternatives found with other considered algorithms have
        # approximately the same execution cost" (1352-1464 of 1500).
        for name in ("AMP", "MinFinish", "MinRunTime", "MinProcTime"):
            assert result.mean_of(name, Criterion.COST) > 0.9 * 1500.0


class TestCsaScale:
    def test_alternatives_count_band(self, result):
        # Paper reports 57 on the base environment; our calibrated
        # environment yields the same order of magnitude.
        assert 15.0 <= result.csa.alternatives.mean <= 90.0

    def test_slot_count_band(self, result):
        # Paper's Table 2: 472.6 slots on the base environment.
        assert 400.0 <= result.slot_count.mean <= 550.0
