"""Scale sanity: the algorithms behave at the paper's largest sweep point.

One 400-node environment (the top of Table 1's sweep): every algorithm
completes in bounded time, returns a valid window, and the structural
complexity counters stay within their proven bounds.
"""

import time

import numpy as np
import pytest

from repro.core import (
    AMP,
    CSA,
    MinCost,
    MinFinish,
    MinProcTime,
    MinRunTime,
    aep_scan,
)
from repro.core.extractors import MinTotalCostExtractor
from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.model import Job, ResourceRequest

#: Generous per-selection wall-time ceiling — catches quadratic blow-ups
#: without being flaky on slow hosts (measured ~0.1-0.6 s here).
TIME_CEILING_SECONDS = 20.0


@pytest.fixture(scope="module")
def big_environment():
    return EnvironmentGenerator(EnvironmentConfig(node_count=400, seed=13)).generate()


@pytest.fixture(scope="module")
def big_pool(big_environment):
    return big_environment.slot_pool()


@pytest.fixture(scope="module")
def job():
    return Job(
        "scale", ResourceRequest(node_count=5, reservation_time=150.0, budget=1500.0)
    )


class TestAt400Nodes:
    def test_every_algorithm_completes_and_validates(self, big_pool, job):
        algorithms = [
            AMP(),
            MinCost(),
            MinRunTime(),
            MinFinish(),
            MinProcTime(rng=np.random.default_rng(0)),
        ]
        for algorithm in algorithms:
            begin = time.perf_counter()
            window = algorithm.select(job, big_pool)
            elapsed = time.perf_counter() - begin
            assert window is not None, algorithm.name
            window.validate(job.request)
            assert elapsed < TIME_CEILING_SECONDS, (algorithm.name, elapsed)

    def test_csa_completes_with_many_alternatives(self, big_pool, job):
        begin = time.perf_counter()
        alternatives = CSA().find_alternatives(job, big_pool)
        elapsed = time.perf_counter() - begin
        # Table 1 reports ~140-250 alternatives at 400 nodes.
        assert len(alternatives) > 60
        assert elapsed < 3 * TIME_CEILING_SECONDS

    def test_scan_counters_at_scale(self, big_pool, job):
        result = aep_scan(job, big_pool, MinTotalCostExtractor())
        assert result.slots_scanned == len(big_pool)
        assert result.candidate_peak <= 400
        # The alive set is a meaningful fraction of the nodes: the
        # quadratic-in-nodes term is real, not an artifact.
        assert result.candidate_peak > 50
