"""Cross-subsystem integration: the whole library in one narrative.

Generate an environment, archive and reload it (JSON), search alternatives
with CSA, choose by a composite criterion, book the window as an advance
reservation, replay the execution under disturbances, and account for
everything — asserting consistency at every subsystem boundary.
"""

import numpy as np
import pytest

from repro.analysis import fairness_of_assignments, render_gantt
from repro.core import CSA, Criterion, constrained_best, pareto_front
from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.execution import PoissonDisturbances, replay_execution
from repro.io import environment_from_dict, environment_to_dict
from repro.model import Job, ResourceRequest
from repro.scheduling import ReservationLedger


@pytest.fixture(scope="module")
def pipeline_state():
    # 1. Generate and archive the environment.
    original = EnvironmentGenerator(
        EnvironmentConfig(node_count=35, seed=2026)
    ).generate()
    environment = environment_from_dict(environment_to_dict(original))
    assert environment.slots() == original.slots()
    return environment


def test_full_pipeline(pipeline_state):
    environment = pipeline_state
    job = Job(
        "pipeline-job",
        ResourceRequest(node_count=4, reservation_time=120.0, budget=1400.0),
        owner="alice",
    )

    # 2. Alternatives via CSA on the published pool.
    pool = environment.slot_pool()
    alternatives = CSA().find_alternatives(job, pool)
    assert alternatives, "the base job must be schedulable on 35 nodes"
    for window in alternatives:
        window.validate(job.request)

    # 3. Composite choice: earliest finish among alternatives within a
    #    cost cap, and the pick must lie on the (finish, cost) front.
    cap = np.median([w.total_cost for w in alternatives])
    chosen = constrained_best(
        alternatives, Criterion.FINISH_TIME, {Criterion.COST: float(cap)}
    )
    assert chosen is not None
    front = pareto_front(alternatives, [Criterion.FINISH_TIME, Criterion.COST])
    assert any(chosen is member for member in front)

    # 4. Book it; the published free time shrinks by the processor time.
    ledger = ReservationLedger(environment)
    free_before = environment.slot_pool().total_free_time()
    reservation = ledger.book(job.job_id, chosen)
    free_after = environment.slot_pool().total_free_time()
    assert free_after == pytest.approx(free_before - chosen.processor_time)

    # 5. The Gantt view shows the reservation.
    chart = render_gantt(environment, [chosen], legend=False)
    assert "=" in chart

    # 6. Replay the booked schedule under disturbances.
    report = replay_execution(
        {job.job_id: chosen},
        PoissonDisturbances(rate=0.002),
        np.random.default_rng(9),
    )
    outcome = report.jobs[job.job_id]
    assert outcome.planned_finish == pytest.approx(chosen.finish)
    assert outcome.actual_finish >= outcome.planned_finish - 1e-9

    # 7. Fairness accounting sees the assignment.
    fairness = fairness_of_assignments([job], {job.job_id: chosen})
    assert fairness.owners["alice"].scheduled == 1
    assert fairness.service_fairness == 1.0

    # 8. Cancel: the environment returns to its pre-booking state.
    ledger.cancel(reservation.reservation_id)
    assert environment.slot_pool().total_free_time() == pytest.approx(free_before)


def test_pipeline_survives_reload_mid_flight(pipeline_state):
    # Booking on a reloaded clone must behave identically to the source.
    environment = pipeline_state
    clone = environment_from_dict(environment_to_dict(environment))
    job = Job(
        "clone-job", ResourceRequest(node_count=3, reservation_time=90.0, budget=900.0)
    )
    original_window = CSA().select(job, environment.slot_pool())
    clone_window = CSA().select(job, clone.slot_pool())
    assert original_window.start == pytest.approx(clone_window.start)
    assert original_window.total_cost == pytest.approx(clone_window.total_cost)
    assert original_window.nodes() == clone_window.nodes()
