"""Unit tests for the qualitative shape checks (Section 3.2-3.3 claims)."""

import pytest

from repro.analysis import (
    CRITERION_OWNERS,
    advantage_over_amp,
    check_best_on_own_criterion,
    check_budget_usage,
    check_early_starters,
    check_late_algorithms,
)
from repro.analysis.paper_reference import (
    CSA_BASE_ALTERNATIVES,
    FIG2A_START_TIME,
    FIG4_COST,
    TABLE1_MS,
    TABLE2_MS,
)
from repro.core import Criterion
from repro.environment import EnvironmentConfig
from repro.simulation import ExperimentConfig, run_comparison


@pytest.fixture(scope="module")
def result():
    """A modest but statistically meaningful base-experiment run."""
    config = ExperimentConfig(
        environment=EnvironmentConfig(node_count=100),
        cycles=25,
        seed=2013,
    )
    return run_comparison(config)


class TestCriterionOwners:
    def test_every_reported_criterion_has_an_owner(self):
        assert set(CRITERION_OWNERS) == {
            Criterion.START_TIME,
            Criterion.FINISH_TIME,
            Criterion.RUNTIME,
            Criterion.PROCESSOR_TIME,
            Criterion.COST,
        }


class TestShapeChecksOnRealRun:
    def test_each_algorithm_best_on_own_criterion(self, result):
        verdicts = check_best_on_own_criterion(result)
        failing = [str(v) for v in verdicts if not v.holds]
        assert not failing, failing

    def test_budget_usage(self, result):
        verdicts = check_budget_usage(result, budget=1500.0)
        failing = [str(v) for v in verdicts if not v.holds]
        assert not failing, failing

    def test_early_starters(self, result):
        verdict = check_early_starters(result)
        assert verdict.holds, str(verdict)

    def test_late_algorithms_ordering(self, result):
        verdict = check_late_algorithms(result)
        assert verdict.holds, str(verdict)

    def test_advantage_over_amp_positive_where_paper_reports_it(self, result):
        improvements = advantage_over_amp(result)
        # The paper reports a 10-50% advantage of each AEP scheme over AMP
        # on its own criterion; at minimum the advantage must be positive
        # for runtime, finish time, processor time and cost.
        for criterion in (
            Criterion.FINISH_TIME,
            Criterion.RUNTIME,
            Criterion.PROCESSOR_TIME,
            Criterion.COST,
        ):
            assert improvements[criterion] > 0.0, criterion


class TestPaperReferenceIntegrity:
    def test_reference_tables_have_consistent_lengths(self):
        for name, series in TABLE1_MS.items():
            assert len(series) == 5, name
        for name, series in TABLE2_MS.items():
            assert len(series) == 6, name

    def test_fig2a_has_all_six_schemes(self):
        assert set(FIG2A_START_TIME) == {
            "AMP",
            "MinFinish",
            "CSA",
            "MinRunTime",
            "MinCost",
            "MinProcTime",
        }

    def test_fig4_budget_consistency(self):
        # Every reported cost respects the user budget of 1500.
        assert all(value <= 1500.0 for value in FIG4_COST.values())

    def test_csa_alternatives_positive(self):
        assert CSA_BASE_ALTERNATIVES == 57.0
