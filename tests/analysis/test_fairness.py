"""Unit tests for the fairness metrics."""

import pytest

from repro.analysis import (
    FairnessReport,
    fairness_of_assignments,
    jain_index,
)
from repro.model import Job, ResourceRequest, Window, WindowSlot
from tests.conftest import make_slot


def window(node_id=0, price=2.0):
    request = ResourceRequest(node_count=1, reservation_time=20.0)
    slot = make_slot(node_id, 0.0, 100.0, 4.0, price)
    return Window(start=0.0, slots=(WindowSlot.for_request(slot, request),))


def job(job_id, owner):
    return Job(job_id, ResourceRequest(node_count=1, reservation_time=20.0), owner=owner)


class TestJainIndex:
    def test_equal_shares_are_perfectly_fair(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_taker_is_one_over_k(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero_are_fair(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_scale_invariant(self):
        assert jain_index([1.0, 2.0, 3.0]) == pytest.approx(
            jain_index([10.0, 20.0, 30.0])
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([-1.0, 2.0])

    def test_bounds(self):
        values = [1.0, 4.0, 9.0, 16.0]
        index = jain_index(values)
        assert 1.0 / len(values) <= index <= 1.0


class TestFairnessReport:
    def test_record_and_rates(self):
        report = FairnessReport()
        report.record(job("a1", "alice"), window(0))
        report.record(job("a2", "alice"), None)
        report.record(job("b1", "bob"), window(1))
        alice = report.owners["alice"]
        assert alice.submitted == 2
        assert alice.scheduled == 1
        assert alice.service_rate == pytest.approx(0.5)
        assert report.owners["bob"].service_rate == 1.0

    def test_even_service_is_fair(self):
        report = FairnessReport()
        for owner in ("alice", "bob", "carol"):
            report.record(job(f"{owner}-1", owner), window())
        assert report.service_fairness == pytest.approx(1.0)
        assert report.resource_fairness == pytest.approx(1.0)

    def test_starving_one_owner_reduces_fairness(self):
        report = FairnessReport()
        report.record(job("a1", "alice"), window())
        report.record(job("b1", "bob"), None)
        assert report.service_fairness < 1.0
        assert report.resource_fairness < 1.0

    def test_as_rows_sorted_by_owner(self):
        report = FairnessReport()
        report.record(job("z1", "zoe"), window())
        report.record(job("a1", "amy"), window())
        rows = report.as_rows()
        assert [row[0] for row in rows] == ["amy", "zoe"]

    def test_fairness_of_assignments_helper(self):
        jobs = [job("a1", "alice"), job("b1", "bob")]
        assignments = {"a1": window(0)}
        report = fairness_of_assignments(jobs, assignments)
        assert report.owners["alice"].scheduled == 1
        assert report.owners["bob"].scheduled == 0
