"""Unit tests for the SVG chart renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svgplot import bar_chart, line_chart, save_svg, _ticks

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestTicks:
    def test_covers_range(self):
        ticks = _ticks(0.0, 97.0)
        assert ticks[0] <= 0.0
        assert ticks[-1] >= 97.0

    def test_reasonable_count(self):
        assert 3 <= len(_ticks(0.0, 1234.0)) <= 10

    def test_degenerate_range(self):
        ticks = _ticks(5.0, 5.0)
        assert len(ticks) >= 2


class TestBarChart:
    @pytest.fixture
    def svg(self):
        return bar_chart(
            "demo",
            {"AMP": 10.0, "MinCost": 25.0},
            y_label="units",
            reference={"AMP": 12.0},
        )

    def test_valid_xml(self, svg):
        root = parse(svg)
        assert root.tag == f"{SVG_NS}svg"

    def test_one_bar_per_category(self, svg):
        root = parse(svg)
        bars = [
            rect
            for rect in root.iter(f"{SVG_NS}rect")
            if rect.get("fill") not in ("white", "none")
        ]
        assert len(bars) == 2

    def test_bar_heights_proportional(self, svg):
        root = parse(svg)
        bars = [
            rect
            for rect in root.iter(f"{SVG_NS}rect")
            if rect.get("fill") not in ("white", "none")
        ]
        heights = sorted(float(bar.get("height")) for bar in bars)
        assert heights[1] == pytest.approx(heights[0] * 2.5, rel=0.01)

    def test_reference_marker_drawn(self, svg):
        root = parse(svg)
        dashed = [
            line
            for line in root.iter(f"{SVG_NS}line")
            if line.get("stroke-dasharray")
        ]
        assert len(dashed) == 1
        assert "paper" in svg

    def test_labels_present(self, svg):
        assert "AMP" in svg
        assert "MinCost" in svg
        assert "demo" in svg

    def test_no_reference_no_dashes(self):
        svg = bar_chart("x", {"A": 1.0})
        root = parse(svg)
        dashed = [
            line
            for line in root.iter(f"{SVG_NS}line")
            if line.get("stroke-dasharray")
        ]
        assert dashed == []


class TestLineChart:
    @pytest.fixture
    def svg(self):
        return line_chart(
            "scaling",
            {
                "AMP": [(50.0, 1.0), (100.0, 2.0), (200.0, 4.0)],
                "CSA": [(50.0, 10.0), (100.0, 50.0), (200.0, 400.0)],
            },
            x_label="nodes",
            y_label="ms",
        )

    def test_valid_xml(self, svg):
        parse(svg)

    def test_one_polyline_per_series(self, svg):
        root = parse(svg)
        polylines = list(root.iter(f"{SVG_NS}polyline"))
        assert len(polylines) == 2

    def test_markers_per_point(self, svg):
        root = parse(svg)
        circles = list(root.iter(f"{SVG_NS}circle"))
        assert len(circles) == 6

    def test_series_legend(self, svg):
        assert "AMP" in svg
        assert "CSA" in svg

    def test_monotone_series_renders_monotone_pixels(self, svg):
        root = parse(svg)
        polyline = next(iter(root.iter(f"{SVG_NS}polyline")))
        points = [
            tuple(float(value) for value in pair.split(","))
            for pair in polyline.get("points").split()
        ]
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys, reverse=True)  # growing values go up (smaller y)

    def test_log_scale(self):
        svg = line_chart(
            "log", {"s": [(1.0, 1.0), (2.0, 1000.0)]}, log_y=True
        )
        parse(svg)

    def test_empty_series(self):
        parse(line_chart("empty", {}))


class TestSaveSvg:
    def test_writes_file(self, tmp_path):
        path = str(tmp_path / "chart.svg")
        save_svg(bar_chart("x", {"A": 1.0}), path)
        with open(path, encoding="utf-8") as handle:
            parse(handle.read())
