"""Unit tests for the markdown report generator."""

import pytest

from repro.analysis.report import build_report
from repro.environment import EnvironmentConfig
from repro.simulation import (
    ExperimentConfig,
    run_comparison,
    sweep_node_counts,
)


@pytest.fixture(scope="module")
def result():
    config = ExperimentConfig(
        environment=EnvironmentConfig(node_count=40),
        node_count_requested=3,
        reservation_time=100.0,
        budget=1000.0,
        cycles=6,
        seed=17,
    )
    return run_comparison(config)


class TestBuildReport:
    def test_contains_every_figure_section(self, result):
        text = build_report(result)
        for fragment in (
            "Fig. 2 (a)",
            "Fig. 2 (b)",
            "Fig. 3 (a)",
            "Fig. 3 (b)",
            "Fig. 4",
        ):
            assert fragment in text

    def test_mentions_every_algorithm(self, result):
        text = build_report(result)
        for name in ("AMP", "MinFinish", "MinCost", "MinRunTime", "MinProcTime", "CSA"):
            assert name in text

    def test_shape_checks_rendered_as_checklist(self, result):
        text = build_report(result)
        assert "## Shape checks" in text
        assert "- [" in text

    def test_amp_advantage_section(self, result):
        text = build_report(result)
        assert "Advantage of single AEP runs over AMP" in text
        assert "%" in text

    def test_header_records_setup(self, result):
        text = build_report(result, title="My run")
        assert text.startswith("# My run")
        assert "6 scheduling cycles" in text
        assert "seed 17" in text

    def test_timing_sections_optional(self, result):
        assert "Table 1" not in build_report(result)
        config = result.config
        study = sweep_node_counts(config, (20, 30), 1)
        text = build_report(result, node_study=study)
        assert "Table 1" in text
        assert "Table 2" not in text

    def test_markdown_tables_well_formed(self, result):
        text = build_report(result)
        for line in text.splitlines():
            if line.startswith("|") and not line.startswith("|---"):
                # Every table row has the same shape: leading and trailing
                # pipes.
                assert line.endswith("|")


class TestCliReport:
    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "report.md")
        code = main(
            [
                "report",
                "--cycles",
                "3",
                "--nodes",
                "30",
                "--seed",
                "2",
                "-o",
                path,
            ]
        )
        assert code == 0
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        assert "Fig. 4" in text


class TestTimingSectionsBoth:
    def test_interval_only(self, result):
        from repro.simulation import sweep_interval_lengths

        study = sweep_interval_lengths(result.config, (600.0, 1200.0), 1)
        text = build_report(result, interval_study=study)
        assert "Table 2" in text
        assert "Table 1" not in text

    def test_both_sections(self, result):
        from repro.simulation import sweep_interval_lengths, sweep_node_counts

        nodes = sweep_node_counts(result.config, (20, 30), 1)
        intervals = sweep_interval_lengths(result.config, (600.0, 1200.0), 1)
        text = build_report(result, node_study=nodes, interval_study=intervals)
        assert "Table 1" in text
        assert "Table 2" in text
