"""Unit tests for text histograms and summaries."""

import numpy as np
import pytest

from repro.analysis.histogram import histogram, quantile, summarize


class TestQuantile:
    def test_median_odd(self):
        assert quantile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_median_even_interpolates(self):
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        values = [3.0, 1.0, 2.0]
        ordered = sorted(values)
        assert quantile(ordered, 0.0) == 1.0
        assert quantile(ordered, 1.0) == 3.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = sorted(rng.normal(size=101))
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert quantile(values, q) == pytest.approx(
                float(np.quantile(values, q))
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestSummarize:
    def test_basic(self):
        summary = summarize([4.0, 1.0, 3.0, 2.0])
        assert summary.count == 4
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)
        assert summary.mean == pytest.approx(2.5)
        assert summary.iqr == pytest.approx(summary.q3 - summary.q1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestHistogram:
    def test_counts_sum_to_sample_size(self):
        rng = np.random.default_rng(1)
        values = list(rng.normal(50, 10, size=200))
        text = histogram(values, bins=8)
        counts = [
            int(line.split("|")[0].split()[-1])
            for line in text.splitlines()
            if line.strip().startswith("[")
        ]
        assert sum(counts) == 200

    def test_title_and_summary_line(self):
        text = histogram([1.0, 2.0, 3.0], bins=3, title="demo")
        assert text.splitlines()[0] == "demo"
        assert "median=" in text.splitlines()[-1]

    def test_constant_sample(self):
        text = histogram([5.0] * 10, bins=4)
        assert "n=10" in text

    def test_peak_bin_fills_width(self):
        values = [1.0] * 9 + [10.0]
        text = histogram(values, bins=2, width=20)
        bars = [line.split("|")[1] for line in text.splitlines() if "|" in line]
        assert max(len(bar) for bar in bars) == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram([], bins=3)
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)
