"""Unit tests for the text table renderer."""

import pytest

from repro.analysis import comparison_table, format_cell, render_table


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"

    def test_int(self):
        assert format_cell(42) == "42"

    def test_float_trims_zeros(self):
        assert format_cell(1.50) == "1.5"
        assert format_cell(2.00) == "2"

    def test_precision(self):
        assert format_cell(3.14159, precision=3) == "3.142"

    def test_zero(self):
        assert format_cell(0.0) == "0"


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(
            ["name", "value"],
            [["AMP", 1.0], ["MinCost", 20.5]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert set(lines[2]) == {"-"}
        assert lines[3].startswith("AMP")

    def test_columns_aligned(self):
        text = render_table(["a", "bbbb"], [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded to the same width

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = render_table(["a", "b"], [])
        assert "a" in text

    def test_numbers_right_aligned(self):
        text = render_table(["name", "v"], [["x", 5], ["y", 12345]])
        lines = text.splitlines()
        assert lines[-1].endswith("12345")
        assert lines[-2].endswith("    5")


class TestComparisonTable:
    def test_rows_sorted_by_measured(self):
        text = comparison_table(
            {"B": 2.0, "A": 1.0}, {"A": 1.1, "B": 2.2}, title="t"
        )
        lines = text.splitlines()
        assert lines[3].startswith("A")
        assert lines[4].startswith("B")

    def test_ratio_computed(self):
        text = comparison_table({"A": 2.0}, {"A": 1.0})
        assert "2" in text.splitlines()[-1]

    def test_missing_reference_shows_dash(self):
        text = comparison_table({"A": 2.0}, {})
        assert "-" in text.splitlines()[-1]

    def test_zero_reference_gives_no_ratio(self):
        text = comparison_table({"A": 2.0}, {"A": 0.0})
        assert text.splitlines()[-1].rstrip().endswith("-")
