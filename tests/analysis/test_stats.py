"""Unit tests for the statistical comparison utilities."""

import math

import numpy as np
import pytest

from repro.analysis import relative_difference_ci, welch_t_test
from repro.analysis.stats import _student_t_sf
from repro.simulation import RunningStat


def stat_of(values):
    stat = RunningStat()
    for value in values:
        stat.add(float(value))
    return stat


class TestStudentTSurvival:
    def test_zero_statistic_is_half(self):
        assert _student_t_sf(0.0, 10.0) == pytest.approx(0.5)

    def test_symmetric(self):
        assert _student_t_sf(-1.5, 8.0) == pytest.approx(
            1.0 - _student_t_sf(1.5, 8.0)
        )

    def test_known_value(self):
        # t = 2.228, df = 10 is the classical 97.5% quantile.
        assert _student_t_sf(2.228, 10.0) == pytest.approx(0.025, abs=1e-3)

    def test_large_df_approaches_normal(self):
        assert _student_t_sf(1.96, 100000.0) == pytest.approx(0.025, abs=1e-3)

    def test_rejects_bad_df(self):
        with pytest.raises(ValueError):
            _student_t_sf(1.0, 0.0)


class TestWelch:
    def test_identical_samples_not_significant(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10, 2, size=200)
        result = welch_t_test(stat_of(values), stat_of(values))
        assert result.p_value == pytest.approx(1.0, abs=1e-9)
        assert not result.significant()

    def test_clearly_different_means_significant(self):
        rng = np.random.default_rng(1)
        a = stat_of(rng.normal(10, 1, size=100))
        b = stat_of(rng.normal(15, 1, size=100))
        result = welch_t_test(a, b)
        assert result.significant(0.001)
        assert result.mean_difference < 0

    def test_overlapping_noisy_means_not_significant(self):
        rng = np.random.default_rng(2)
        a = stat_of(rng.normal(10, 5, size=10))
        b = stat_of(rng.normal(10.5, 5, size=10))
        result = welch_t_test(a, b)
        assert result.p_value > 0.05

    def test_matches_scipy_when_available(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(3)
        a = rng.normal(5, 2, size=40)
        b = rng.normal(6, 3, size=60)
        ours = welch_t_test(stat_of(a), stat_of(b))
        reference = scipy_stats.ttest_ind(a, b, equal_var=False)
        assert ours.statistic == pytest.approx(reference.statistic, rel=1e-6)
        assert ours.p_value == pytest.approx(reference.pvalue, rel=1e-4)

    def test_constant_identical_distributions(self):
        a = stat_of([3.0, 3.0, 3.0])
        b = stat_of([3.0, 3.0])
        result = welch_t_test(a, b)
        assert result.p_value == 1.0

    def test_constant_different_distributions(self):
        a = stat_of([3.0, 3.0, 3.0])
        b = stat_of([4.0, 4.0])
        result = welch_t_test(a, b)
        assert result.p_value == 0.0
        assert result.significant()

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            welch_t_test(stat_of([1.0]), stat_of([1.0, 2.0]))


class TestRelativeDifference:
    def test_point_estimate(self):
        a = stat_of([12.0] * 50)
        b = stat_of([10.0] * 50)
        estimate, low, high = relative_difference_ci(a, b)
        assert estimate == pytest.approx(0.2)
        assert low == pytest.approx(0.2)  # zero variance
        assert high == pytest.approx(0.2)

    def test_interval_contains_truth_usually(self):
        rng = np.random.default_rng(4)
        hits = 0
        for _ in range(50):
            a = stat_of(rng.normal(12, 2, size=80))
            b = stat_of(rng.normal(10, 2, size=80))
            _, low, high = relative_difference_ci(a, b)
            if low <= 0.2 <= high:
                hits += 1
        assert hits >= 40  # ~95% coverage, generous slack

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            relative_difference_ci(stat_of([1.0, 2.0]), stat_of([0.0, 0.0]))
