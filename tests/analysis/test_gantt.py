"""Unit tests for the ASCII Gantt renderers."""

import pytest

from repro.analysis import render_gantt, render_window
from repro.core import AMP
from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.model import Job, ResourceRequest


@pytest.fixture(scope="module")
def environment():
    return EnvironmentGenerator(EnvironmentConfig(node_count=15, seed=3)).generate()


@pytest.fixture(scope="module")
def window(environment):
    job = Job("j", ResourceRequest(node_count=3, reservation_time=100.0, budget=2000.0))
    selected = AMP().select(job, environment.slot_pool())
    assert selected is not None
    return selected


class TestRenderGantt:
    def test_renders_all_busy_nodes_by_default(self, environment):
        text = render_gantt(environment)
        busy_nodes = [
            node_id
            for node_id, timeline in environment.timelines.items()
            if timeline.busy_intervals
        ]
        lines = text.splitlines()
        # header + rows + legend
        assert len(lines) == len(busy_nodes) + 2

    def test_busy_glyphs_present(self, environment):
        assert "#" in render_gantt(environment)

    def test_window_overlay_marks_reservations(self, environment, window):
        with_window = render_gantt(environment, [window], legend=False)
        assert "=" in with_window
        assert "=" not in render_gantt(environment, legend=False)

    def test_node_filter(self, environment):
        text = render_gantt(environment, node_ids=[0, 1], legend=False)
        lines = text.splitlines()
        assert len(lines) == 3  # header + two rows

    def test_width_respected(self, environment):
        text = render_gantt(environment, width=40, node_ids=[0], legend=False)
        row = text.splitlines()[1]
        left, _, rest = row.partition("|")
        body = rest.rstrip("|")
        assert len(body) == 40

    def test_legend_toggle(self, environment):
        assert "legend" in render_gantt(environment)
        assert "legend" not in render_gantt(environment, legend=False)

    def test_reservation_proportions(self, environment, window):
        # The reserved glyph count is roughly proportional to the
        # reservation's share of the interval.
        text = render_gantt(environment, [window], width=100, legend=False)
        total_reserved_glyphs = text.count("=")
        expected = sum(
            100 * ws.required_time / environment.config.interval_length
            for ws in window.slots
        )
        assert total_reserved_glyphs == pytest.approx(expected, abs=window.size * 2)


class TestRenderWindow:
    def test_rows_per_leg(self, window):
        text = render_window(window)
        assert len(text.splitlines()) == window.size + 1

    def test_rough_right_edge_visible(self, window):
        # Legs are sorted longest first; the first leg's bar is the longest.
        lines = render_window(window, width=50).splitlines()[1:]
        bars = [line.count("=") for line in lines]
        assert bars == sorted(bars, reverse=True)
        assert bars[0] == 50  # the longest leg spans the full width

    def test_header_mentions_aggregates(self, window):
        header = render_window(window).splitlines()[0]
        assert "runtime" in header
        assert "cost" in header
