"""Unit tests for LaTeX table export."""

import pytest

from repro.analysis.latex import escape, latex_comparison, latex_table


class TestEscape:
    def test_specials_escaped(self):
        assert escape("a&b") == r"a\&b"
        assert escape("50%") == r"50\%"
        assert escape("x_y") == r"x\_y"
        assert escape("{z}") == r"\{z\}"

    def test_backslash(self):
        assert escape("a\\b") == r"a\textbackslash{}b"

    def test_plain_text_unchanged(self):
        assert escape("MinRunTime 33.0") == "MinRunTime 33.0"


class TestLatexTable:
    @pytest.fixture
    def table(self):
        return latex_table(
            ["algorithm", "runtime"],
            [["AMP", 55.9], ["Min_Cost", 75.0]],
            caption="Fig. 2(b) 50% load",
            label="tab:runtime",
        )

    def test_environments_present(self, table):
        assert table.startswith(r"\begin{table}")
        assert table.endswith(r"\end{table}")
        assert r"\begin{tabular}{lr}" in table
        assert r"\toprule" in table and r"\bottomrule" in table

    def test_rows_rendered_and_escaped(self, table):
        assert r"AMP & 55.9 \\" in table
        assert r"Min\_Cost & 75 \\" in table

    def test_caption_and_label(self, table):
        assert r"\caption{Fig. 2(b) 50\% load}" in table
        assert r"\label{tab:runtime}" in table

    def test_no_caption_or_label_by_default(self):
        table = latex_table(["a"], [["x"]])
        assert r"\caption" not in table
        assert r"\label" not in table

    def test_column_spec_matches_header_count(self):
        table = latex_table(["a", "b", "c"], [["x", 1, 2]])
        assert r"\begin{tabular}{lrr}" in table

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            latex_table(["a", "b"], [["only"]])


class TestLatexComparison:
    def test_sorted_by_measured_with_ratio(self):
        table = latex_comparison(
            {"B": 2.0, "A": 1.0}, {"A": 2.0, "B": 2.0}, label="tab:x"
        )
        lines = table.splitlines()
        a_index = next(i for i, line in enumerate(lines) if line.strip().startswith("A"))
        b_index = next(i for i, line in enumerate(lines) if line.strip().startswith("B"))
        assert a_index < b_index
        assert "0.5" in lines[a_index]  # ratio 1/2

    def test_missing_reference_dash(self):
        table = latex_comparison({"A": 2.0}, {})
        assert "A & 2 & - & -" in table
