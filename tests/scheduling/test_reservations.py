"""Unit tests for the advance-reservation ledger and timeline release."""

import pytest

from repro.core import AMP, MinCost
from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.model import Job, ModelError, ResourceRequest, SchedulingError, Timeline
from repro.scheduling import ReservationLedger
from tests.conftest import make_node


@pytest.fixture
def environment():
    return EnvironmentGenerator(EnvironmentConfig(node_count=25, seed=41)).generate()


@pytest.fixture
def job():
    return Job("res-job", ResourceRequest(node_count=3, reservation_time=80.0, budget=900.0))


class TestTimelineRemoveBusy:
    def test_release_middle_of_busy_interval(self):
        timeline = Timeline(make_node(0), 0.0, 100.0)
        timeline.add_busy(10.0, 60.0)
        timeline.remove_busy(20.0, 40.0)
        assert timeline.busy_intervals == [(10.0, 20.0), (40.0, 60.0)]

    def test_release_whole_interval(self):
        timeline = Timeline(make_node(0), 0.0, 100.0)
        timeline.add_busy(10.0, 60.0)
        timeline.remove_busy(10.0, 60.0)
        assert timeline.busy_intervals == []

    def test_release_edges(self):
        timeline = Timeline(make_node(0), 0.0, 100.0)
        timeline.add_busy(10.0, 60.0)
        timeline.remove_busy(10.0, 30.0)
        assert timeline.busy_intervals == [(30.0, 60.0)]
        timeline.remove_busy(50.0, 60.0)
        assert timeline.busy_intervals == [(30.0, 50.0)]

    def test_release_free_span_rejected(self):
        timeline = Timeline(make_node(0), 0.0, 100.0)
        timeline.add_busy(10.0, 20.0)
        with pytest.raises(ModelError):
            timeline.remove_busy(30.0, 40.0)

    def test_release_partially_busy_rejected(self):
        timeline = Timeline(make_node(0), 0.0, 100.0)
        timeline.add_busy(10.0, 20.0)
        with pytest.raises(ModelError):
            timeline.remove_busy(15.0, 30.0)

    def test_round_trip_restores_free_time(self):
        timeline = Timeline(make_node(0), 0.0, 100.0)
        timeline.add_busy(10.0, 60.0)
        before = timeline.busy_time()
        timeline.remove_busy(20.0, 30.0)
        timeline.add_busy(20.0, 30.0)
        assert timeline.busy_time() == pytest.approx(before)


class TestLedger:
    def test_book_commits_and_records(self, environment, job):
        window = AMP().select(job, environment.slot_pool())
        ledger = ReservationLedger(environment)
        reservation = ledger.book(job.job_id, window)
        assert ledger.get(reservation.reservation_id) is reservation
        assert ledger.for_job(job.job_id) == [reservation]
        for node_id, start, end in reservation.spans:
            assert not environment.timelines[node_id].is_free(start, end)

    def test_cancel_releases_spans(self, environment, job):
        window = AMP().select(job, environment.slot_pool())
        ledger = ReservationLedger(environment)
        free_before = environment.slot_pool().total_free_time()
        reservation = ledger.book(job.job_id, window)
        ledger.cancel(reservation.reservation_id)
        assert environment.slot_pool().total_free_time() == pytest.approx(free_before)
        assert ledger.active() == []

    def test_double_book_same_window_fails_atomically(self, environment, job):
        window = AMP().select(job, environment.slot_pool())
        ledger = ReservationLedger(environment)
        ledger.book(job.job_id, window)
        with pytest.raises(SchedulingError):
            ledger.book("other", window)
        assert len(ledger.active()) == 1

    def test_cancel_unknown_rejected(self, environment):
        with pytest.raises(SchedulingError):
            ReservationLedger(environment).cancel("rsv-404")

    def test_rebook_swaps_windows(self, environment, job):
        pool = environment.slot_pool()
        first = AMP().select(job, pool)
        ledger = ReservationLedger(environment)
        reservation = ledger.book(job.job_id, first)
        # Find a cheaper window on the remaining capacity...
        better = MinCost().select(job, environment.slot_pool())
        new_reservation = ledger.rebook(reservation.reservation_id, better)
        assert len(ledger.active()) == 1
        assert new_reservation.window is better

    def test_rebook_can_reuse_released_spans(self, environment, job):
        window = AMP().select(job, environment.slot_pool())
        ledger = ReservationLedger(environment)
        reservation = ledger.book(job.job_id, window)
        # Rebooking the *same* window must succeed: its spans are released
        # before the new booking is attempted.
        new_reservation = ledger.rebook(reservation.reservation_id, window)
        assert new_reservation.window is window

    def test_failed_rebook_restores_old_booking(self, environment, job):
        pool = environment.slot_pool()
        window = AMP().select(job, pool)
        ledger = ReservationLedger(environment)
        reservation = ledger.book(job.job_id, window)
        # Conflicting booking occupying some other span.
        other_job = Job(
            "other", ResourceRequest(node_count=2, reservation_time=60.0, budget=800.0)
        )
        other_window = AMP().select(other_job, environment.slot_pool())
        ledger.book(other_job.job_id, other_window)
        with pytest.raises(SchedulingError):
            ledger.rebook(reservation.reservation_id, other_window)
        # The original spans are booked again.
        restored = ledger.for_job(job.job_id)
        assert len(restored) == 1
        assert restored[0].window is window

    def test_booked_time(self, environment, job):
        window = AMP().select(job, environment.slot_pool())
        ledger = ReservationLedger(environment)
        ledger.book(job.job_id, window)
        assert ledger.booked_time() == pytest.approx(window.processor_time)
