"""Hypothesis property tests for the phase-two combination selectors."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Criterion
from repro.model import Job, ResourceRequest, Window, WindowSlot
from repro.scheduling import greedy_combination, optimal_combination
from tests.conftest import make_slot


def _window(node_ids, start, price):
    request = ResourceRequest(node_count=len(node_ids), reservation_time=10.0)
    legs = tuple(
        WindowSlot.for_request(
            make_slot(node_id, start, start + 50.0, 4.0, price), request
        )
        for node_id in node_ids
    )
    return Window(start=start, slots=legs)


@st.composite
def instances(draw):
    """Random small phase-two instances with genuine conflicts."""
    job_count = draw(st.integers(min_value=1, max_value=4))
    jobs = [
        Job(
            f"job{i}",
            ResourceRequest(node_count=1, reservation_time=10.0),
            priority=draw(st.integers(min_value=0, max_value=5)),
        )
        for i in range(job_count)
    ]
    alternatives = {}
    for i in range(job_count):
        count = draw(st.integers(min_value=0, max_value=3))
        windows = []
        for _ in range(count):
            node = draw(st.integers(min_value=0, max_value=3))  # few nodes -> conflicts
            start = float(draw(st.sampled_from([0.0, 1.0, 10.0, 30.0])))
            price = float(draw(st.sampled_from([1.0, 2.0, 5.0])))
            windows.append(_window((node,), start, price))
        alternatives[f"job{i}"] = windows
    budget = draw(st.one_of(st.none(), st.floats(min_value=5.0, max_value=60.0)))
    return jobs, alternatives, budget


@given(instance=instances())
@settings(max_examples=120, deadline=None)
def test_greedy_output_is_consistent(instance):
    jobs, alternatives, budget = instance
    choice = greedy_combination(jobs, alternatives, Criterion.COST, budget)
    _check_choice(choice, jobs, alternatives, budget)


@given(instance=instances())
@settings(max_examples=80, deadline=None)
def test_optimal_output_is_consistent(instance):
    jobs, alternatives, budget = instance
    choice = optimal_combination(jobs, alternatives, Criterion.COST, budget)
    _check_choice(choice, jobs, alternatives, budget)


@given(instance=instances())
@settings(max_examples=80, deadline=None)
def test_optimal_schedules_at_least_as_many_as_greedy(instance):
    jobs, alternatives, budget = instance
    greedy = greedy_combination(jobs, alternatives, Criterion.COST, budget)
    optimal = optimal_combination(jobs, alternatives, Criterion.COST, budget)
    assert optimal.scheduled_count >= greedy.scheduled_count
    if optimal.scheduled_count == greedy.scheduled_count:
        assert optimal.total_value <= greedy.total_value + 1e-9


def _check_choice(choice, jobs, alternatives, budget):
    # Every assignment is one of the job's own alternatives.
    for job_id, window in choice.assignments.items():
        assert any(window is option for option in alternatives[job_id])
    # Assignments plus unscheduled partition the batch.
    ids = {job.job_id for job in jobs}
    assert set(choice.assignments) | set(choice.unscheduled) == ids
    assert not (set(choice.assignments) & set(choice.unscheduled))
    # Chosen windows are mutually conflict-free.
    chosen = list(choice.assignments.values())
    for i, a in enumerate(chosen):
        for b in chosen[i + 1 :]:
            assert not a.conflicts_with(b)
    # The VO budget holds.
    if budget is not None:
        assert choice.total_cost() <= budget + 1e-6
    # The reported value matches the assignments.
    assert choice.total_value == sum(
        Criterion.COST.evaluate(window) for window in chosen
    )
