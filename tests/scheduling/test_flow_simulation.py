"""Unit tests for the multi-cycle job-flow simulation."""

import pytest

from repro.core import CSA, Criterion
from repro.environment import EnvironmentConfig
from repro.model import ConfigurationError
from repro.scheduling import (
    BatchScheduler,
    FlowConfig,
    JobFlowSimulation,
    UpdateModel,
)
from repro.simulation import JobGenerator, JobGeneratorConfig


def small_flow(cycles=4, arrivals=3, nodes=50, seed=5, **kwargs) -> FlowConfig:
    return FlowConfig(
        cycles=cycles,
        arrivals_per_cycle=arrivals,
        environment=EnvironmentConfig(node_count=nodes),
        seed=seed,
        **kwargs,
    )


class TestConfigValidation:
    def test_rejects_bad_cycles(self):
        with pytest.raises(ConfigurationError):
            FlowConfig(cycles=0)

    def test_rejects_negative_arrivals(self):
        with pytest.raises(ConfigurationError):
            FlowConfig(arrivals_per_cycle=-1)

    def test_rejects_negative_deferrals(self):
        with pytest.raises(ConfigurationError):
            FlowConfig(max_deferrals=-1)


class TestFlowRun:
    def test_runs_configured_cycles(self):
        result = JobFlowSimulation(small_flow()).run()
        assert len(result.cycles) == 4
        assert all(stats.cycle == index for index, stats in enumerate(result.cycles))

    def test_accounting_balances(self):
        result = JobFlowSimulation(small_flow(cycles=6)).run()
        submitted_new = 6 * 3
        backlog = result.cycles[-1].deferred
        assert result.scheduled_total + result.dropped_total + backlog == submitted_new

    def test_throughput_and_drop_rate(self):
        result = JobFlowSimulation(small_flow()).run()
        assert result.throughput == pytest.approx(result.scheduled_total / 4)
        assert 0.0 <= result.drop_rate <= 1.0

    def test_free_time_monotonically_decreases_without_updates(self):
        result = JobFlowSimulation(small_flow(cycles=5)).run()
        free = [stats.free_time_after for stats in result.cycles]
        assert all(a >= b - 1e-6 for a, b in zip(free, free[1:]))

    def test_reproducible_with_seed(self):
        a = JobFlowSimulation(small_flow(seed=11)).run()
        b = JobFlowSimulation(small_flow(seed=11)).run()
        assert a.scheduled_total == b.scheduled_total
        assert a.cost.mean == pytest.approx(b.cost.mean)

    def test_tiny_environment_defers_and_drops(self):
        config = small_flow(cycles=6, arrivals=5, nodes=4, max_deferrals=1)
        generator = JobGenerator(
            JobGeneratorConfig(
                node_count_range=(3, 4),
                reservation_time_choices=(200.0,),
                budget_slack_range=(2.0, 2.5),
            ),
            seed=3,
        )
        simulation = JobFlowSimulation(config, job_generator=generator)
        result = simulation.run()
        assert result.dropped_total > 0

    def test_waiting_cycles_recorded(self):
        result = JobFlowSimulation(small_flow(cycles=5)).run()
        assert result.waiting_cycles.count == result.scheduled_total
        assert result.waiting_cycles.mean >= 0.0

    def test_updates_model_releases_and_consumes(self):
        config = small_flow(updates=UpdateModel(local_job_rate=1.0))
        result = JobFlowSimulation(config).run()
        assert len(result.cycles) == 4

    def test_custom_scheduler_policy(self):
        scheduler = BatchScheduler(
            search=CSA(max_alternatives=5), criterion=Criterion.COST
        )
        result = JobFlowSimulation(small_flow(), scheduler=scheduler).run()
        assert result.scheduled_total > 0


class TestAgeing:
    def test_deferred_jobs_gain_priority(self):
        config = small_flow(cycles=2, arrivals=2, nodes=6, max_deferrals=5)
        generator = JobGenerator(
            JobGeneratorConfig(
                node_count_range=(4, 5),
                reservation_time_choices=(250.0,),
                budget_slack_range=(2.0, 2.2),
                priority_range=(0, 0),
            ),
            seed=8,
        )
        simulation = JobFlowSimulation(config, job_generator=generator)
        result = simulation.run()
        if simulation._backlog:
            # Jobs still waiting have accumulated at least one deferral.
            assert all(count >= 1 for _, count in simulation._backlog)
        assert len(result.cycles) == 2


class TestFlowFairness:
    def test_fairness_tracked_per_owner(self):
        result = JobFlowSimulation(small_flow(cycles=4)).run()
        assert result.fairness.owners  # at least one owner served
        total_submitted = sum(r.submitted for r in result.fairness.owners.values())
        total_scheduled = sum(r.scheduled for r in result.fairness.owners.values())
        assert total_scheduled == result.scheduled_total
        # Attempt-weighted: deferred jobs re-count each cycle they wait.
        assert total_submitted >= 4 * 3
        assert 0.0 < result.fairness.service_fairness <= 1.0
