"""Unit tests for between-cycle environment updates."""

import numpy as np
import pytest

from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.model import ConfigurationError
from repro.scheduling import UpdateModel, apply_updates


@pytest.fixture
def environment():
    return EnvironmentGenerator(EnvironmentConfig(node_count=20, seed=31)).generate()


class TestModelValidation:
    def test_rejects_negative_rates(self):
        with pytest.raises(ConfigurationError):
            UpdateModel(local_job_rate=-1.0)
        with pytest.raises(ConfigurationError):
            UpdateModel(node_join_rate=-1.0)
        with pytest.raises(ConfigurationError):
            UpdateModel(node_leave_rate=-0.5)

    def test_rejects_bad_lengths(self):
        with pytest.raises(ConfigurationError):
            UpdateModel(local_job_length_range=(0.0, 10.0))
        with pytest.raises(ConfigurationError):
            UpdateModel(local_job_length_range=(20.0, 10.0))

    def test_rejects_bad_attempts(self):
        with pytest.raises(ConfigurationError):
            UpdateModel(placement_attempts=0)


class TestLocalJobArrivals:
    def test_consumes_free_time(self, environment):
        before = environment.slot_pool().total_free_time()
        stats = apply_updates(
            environment,
            UpdateModel(local_job_rate=2.0),
            np.random.default_rng(1),
        )
        after = environment.slot_pool().total_free_time()
        assert stats.local_jobs_added > 0
        assert after == pytest.approx(before - stats.time_consumed, rel=1e-6)

    def test_zero_rate_changes_nothing(self, environment):
        before = environment.slot_pool().total_free_time()
        stats = apply_updates(
            environment, UpdateModel(local_job_rate=0.0), np.random.default_rng(1)
        )
        assert stats.local_jobs_added == 0
        assert environment.slot_pool().total_free_time() == pytest.approx(before)

    def test_timelines_stay_consistent(self, environment):
        apply_updates(
            environment, UpdateModel(local_job_rate=3.0), np.random.default_rng(2)
        )
        environment.slot_pool().assert_disjoint_per_node()
        for timeline in environment.timelines.values():
            for start, end in timeline.busy_intervals:
                assert timeline.interval_start - 1e-9 <= start < end
                assert end <= timeline.interval_end + 1e-9

    def test_saturated_node_survives(self):
        environment = EnvironmentGenerator(
            EnvironmentConfig(node_count=3, seed=5)
        ).generate()
        # Fill every node completely, then ask for more local jobs.
        for timeline in environment.timelines.values():
            for start, end in timeline.free_intervals(1e-9):
                timeline.add_busy(start, end)
        stats = apply_updates(
            environment, UpdateModel(local_job_rate=5.0), np.random.default_rng(3)
        )
        assert stats.local_jobs_added == 0


class TestNodeChurn:
    def test_leaving_node_loses_free_time(self, environment):
        stats = apply_updates(
            environment,
            UpdateModel(local_job_rate=0.0, node_leave_rate=3.0),
            np.random.default_rng(4),
        )
        for node_id in stats.nodes_left:
            assert environment.timelines[node_id].free_intervals(1e-9) == []

    def test_joining_nodes_arrive_empty(self, environment):
        count_before = len(environment.nodes)
        stats = apply_updates(
            environment,
            UpdateModel(local_job_rate=0.0, node_join_rate=3.0),
            np.random.default_rng(5),
        )
        assert len(environment.nodes) == count_before + len(stats.nodes_joined)
        for node_id in stats.nodes_joined:
            timeline = environment.timelines[node_id]
            assert timeline.busy_intervals == []

    def test_never_removes_every_node(self):
        environment = EnvironmentGenerator(
            EnvironmentConfig(node_count=2, seed=6)
        ).generate()
        apply_updates(
            environment,
            UpdateModel(local_job_rate=0.0, node_leave_rate=50.0),
            np.random.default_rng(6),
        )
        live = [
            node
            for node in environment.nodes
            if environment.timelines[node.node_id].free_intervals(1e-9)
        ]
        assert len(live) >= 1

    def test_joined_node_ids_are_fresh(self, environment):
        existing = {node.node_id for node in environment.nodes}
        stats = apply_updates(
            environment,
            UpdateModel(local_job_rate=0.0, node_join_rate=2.0),
            np.random.default_rng(7),
        )
        assert not (set(stats.nodes_joined) & existing)
