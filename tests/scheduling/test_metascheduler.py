"""Unit tests for the two-phase batch scheduler."""

import pytest

from repro.core import CSA, Criterion, MinCost
from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.model import Job, JobBatch, ResourceRequest
from repro.scheduling import BatchScheduler


@pytest.fixture
def environment():
    return EnvironmentGenerator(EnvironmentConfig(node_count=40, seed=21)).generate()


def batch_of(*specs):
    batch = JobBatch()
    for job_id, n, priority in specs:
        batch.add(
            Job(
                job_id,
                ResourceRequest(node_count=n, reservation_time=60.0, budget=600.0),
                priority,
            )
        )
    return batch


class TestPhaseOne:
    def test_alternatives_found_per_job(self, environment):
        scheduler = BatchScheduler(search=CSA(max_alternatives=5))
        batch = batch_of(("a", 2, 5), ("b", 3, 1))
        alternatives = scheduler.find_alternatives(batch, environment.slot_pool())
        assert set(alternatives) == {"a", "b"}
        assert 1 <= len(alternatives["a"]) <= 5

    def test_single_window_search_yields_one_alternative(self, environment):
        scheduler = BatchScheduler(search=MinCost())
        batch = batch_of(("a", 2, 5))
        alternatives = scheduler.find_alternatives(batch, environment.slot_pool())
        assert len(alternatives["a"]) == 1

    def test_consume_slots_mode_produces_disjoint_alternatives(self, environment):
        scheduler = BatchScheduler(
            search=CSA(max_alternatives=3), consume_slots=True
        )
        batch = batch_of(("a", 2, 5), ("b", 2, 1))
        alternatives = scheduler.find_alternatives(batch, environment.slot_pool())
        for wa in alternatives["a"]:
            for wb in alternatives["b"]:
                assert not wa.conflicts_with(wb)


class TestRunCycle:
    def test_cycle_schedules_jobs_and_commits(self, environment):
        scheduler = BatchScheduler(search=CSA(max_alternatives=10))
        batch = batch_of(("a", 2, 5), ("b", 2, 1))
        report = scheduler.run_cycle(batch, environment)
        assert report.choice.scheduled_count == 2
        for job_id, window in report.scheduled.items():
            timeline = environment.timelines[window.slots[0].slot.node.node_id]
            assert not timeline.is_free(
                window.start, window.start + window.slots[0].required_time
            )

    def test_chosen_windows_conflict_free(self, environment):
        scheduler = BatchScheduler(search=CSA(max_alternatives=10))
        batch = batch_of(("a", 3, 5), ("b", 3, 3), ("c", 3, 1))
        report = scheduler.run_cycle(batch, environment)
        chosen = list(report.scheduled.values())
        for i, a in enumerate(chosen):
            for b in chosen[i + 1 :]:
                assert not a.conflicts_with(b)

    def test_cycle_report_summary_keys(self, environment):
        scheduler = BatchScheduler(search=CSA(max_alternatives=5))
        report = scheduler.run_cycle(batch_of(("a", 2, 1)), environment)
        summary = report.summary()
        assert set(summary) == {
            "scheduled_jobs",
            "unscheduled_jobs",
            "total_cost",
            "makespan",
            "alternatives_total",
        }
        assert summary["scheduled_jobs"] == 1.0

    def test_vo_budget_limits_spending(self, environment):
        scheduler = BatchScheduler(search=CSA(max_alternatives=10), vo_budget=600.0)
        batch = batch_of(("a", 2, 5), ("b", 2, 4), ("c", 2, 3))
        report = scheduler.run_cycle(batch, environment)
        assert report.choice.total_cost() <= 600.0 + 1e-6

    def test_exact_phase2_schedules_at_least_as_many(self, environment):
        batch = batch_of(("a", 2, 5), ("b", 2, 4), ("c", 2, 3))
        pool = environment.slot_pool()
        greedy = BatchScheduler(search=CSA(max_alternatives=4))
        exact = BatchScheduler(search=CSA(max_alternatives=4), exact_phase2=True)
        alternatives = greedy.find_alternatives(batch, pool)
        greedy_choice = greedy.choose_combination(batch, alternatives)
        exact_choice = exact.choose_combination(batch, alternatives)
        assert exact_choice.scheduled_count >= greedy_choice.scheduled_count

    def test_successive_cycles_use_residual_capacity(self, environment):
        scheduler = BatchScheduler(search=CSA(max_alternatives=10))
        free_before = environment.slot_pool().total_free_time()
        scheduler.run_cycle(batch_of(("a", 2, 1)), environment)
        free_between = environment.slot_pool().total_free_time()
        scheduler.run_cycle(batch_of(("b", 2, 1)), environment)
        free_after = environment.slot_pool().total_free_time()
        assert free_between < free_before
        assert free_after < free_between

    def test_infeasible_job_left_unscheduled(self, environment):
        scheduler = BatchScheduler(search=CSA())
        batch = JobBatch()
        batch.add(
            Job(
                "impossible",
                ResourceRequest(node_count=200, reservation_time=60.0, budget=600.0),
            )
        )
        report = scheduler.run_cycle(batch, environment)
        assert report.unscheduled == ("impossible",)

    def test_phase2_criterion_drives_choice(self, environment):
        batch = batch_of(("a", 2, 1))
        pool = environment.slot_pool()
        by_cost = BatchScheduler(search=CSA(max_alternatives=20), criterion=Criterion.COST)
        by_finish = BatchScheduler(
            search=CSA(max_alternatives=20), criterion=Criterion.FINISH_TIME
        )
        alternatives = by_cost.find_alternatives(batch, pool)
        cost_choice = by_cost.choose_combination(batch, alternatives)
        finish_choice = by_finish.choose_combination(batch, alternatives)
        assert (
            cost_choice.assignments["a"].total_cost
            <= finish_choice.assignments["a"].total_cost + 1e-9
        )
        assert (
            finish_choice.assignments["a"].finish
            <= cost_choice.assignments["a"].finish + 1e-9
        )


class TestCycleFairness:
    def test_fairness_report_from_cycle(self, environment):
        from repro.core import CSA

        scheduler = BatchScheduler(search=CSA(max_alternatives=8))
        batch = JobBatch()
        for index in range(4):
            batch.add(
                Job(
                    f"fair-{index}",
                    ResourceRequest(node_count=2, reservation_time=60.0, budget=600.0),
                    priority=index,
                    owner="alice" if index % 2 == 0 else "bob",
                )
            )
        report = scheduler.run_cycle(batch, environment)
        fairness = report.fairness()
        assert set(fairness.owners) == {"alice", "bob"}
        assert fairness.owners["alice"].submitted == 2
        assert 0.0 < fairness.service_fairness <= 1.0
