"""Unit tests for the phase-two combination selectors."""

import pytest

from repro.core import Criterion
from repro.model import Job, ResourceRequest, SchedulingError, Window, WindowSlot
from repro.scheduling import greedy_combination, optimal_combination
from tests.conftest import make_slot


def window(node_ids, start=0.0, price=2.0, performance=4.0):
    request = ResourceRequest(node_count=len(node_ids), reservation_time=20.0)
    legs = tuple(
        WindowSlot.for_request(
            make_slot(node_id, start, start + 100.0, performance, price), request
        )
        for node_id in node_ids
    )
    return Window(start=start, slots=legs)


def job(job_id, priority=0, n=1):
    return Job(job_id, ResourceRequest(node_count=n, reservation_time=20.0), priority)


class TestGreedy:
    def test_assigns_best_alternative_per_job(self):
        jobs = [job("a"), job("b")]
        alternatives = {
            "a": [window([0], price=5.0), window([1], price=1.0)],
            "b": [window([2], price=3.0)],
        }
        choice = greedy_combination(jobs, alternatives, Criterion.COST)
        assert choice.assignments["a"].nodes() == [1]
        assert choice.assignments["b"].nodes() == [2]
        assert choice.unscheduled == ()

    def test_avoids_conflicts_in_priority_order(self):
        # Both jobs prefer node 0 at t=0; the high-priority job gets it.
        jobs = [job("low", priority=1), job("high", priority=9)]
        shared = window([0], price=1.0)
        alternatives = {
            "high": [shared],
            "low": [window([0], price=1.0), window([1], price=4.0)],
        }
        choice = greedy_combination(jobs, alternatives, Criterion.COST)
        assert choice.assignments["high"].nodes() == [0]
        assert choice.assignments["low"].nodes() == [1]

    def test_unschedulable_job_reported(self):
        jobs = [job("high", priority=9), job("low", priority=1)]
        only = window([0])
        alternatives = {"high": [only], "low": [window([0])]}
        choice = greedy_combination(jobs, alternatives, Criterion.COST)
        assert choice.unscheduled == ("low",)
        assert choice.scheduled_count == 1

    def test_job_without_alternatives_unscheduled(self):
        jobs = [job("a")]
        choice = greedy_combination(jobs, {"a": []}, Criterion.COST)
        assert choice.unscheduled == ("a",)

    def test_vo_budget_enforced(self):
        jobs = [job("a", priority=2), job("b", priority=1)]
        alternatives = {
            "a": [window([0], price=5.0)],   # cost 25
            "b": [window([1], price=5.0)],   # cost 25
        }
        choice = greedy_combination(jobs, alternatives, Criterion.COST, vo_budget=30.0)
        assert choice.scheduled_count == 1
        assert choice.assignments["a"].total_cost == pytest.approx(25.0)

    def test_total_value_accumulates_criterion(self):
        jobs = [job("a"), job("b")]
        alternatives = {"a": [window([0], price=1.0)], "b": [window([1], price=2.0)]}
        choice = greedy_combination(jobs, alternatives, Criterion.COST)
        assert choice.total_value == pytest.approx(5.0 + 10.0)

    def test_makespan_and_total_cost(self):
        jobs = [job("a"), job("b")]
        alternatives = {
            "a": [window([0], start=0.0)],
            "b": [window([1], start=50.0)],
        }
        choice = greedy_combination(jobs, alternatives, Criterion.COST)
        assert choice.makespan() == pytest.approx(55.0)
        assert choice.total_cost() == pytest.approx(20.0)

    def test_empty_batch(self):
        choice = greedy_combination([], {}, Criterion.COST)
        assert choice.scheduled_count == 0
        assert choice.makespan() == 0.0


class TestOptimal:
    def test_matches_greedy_on_conflict_free_input(self):
        jobs = [job("a"), job("b")]
        alternatives = {
            "a": [window([0], price=5.0), window([1], price=1.0)],
            "b": [window([2], price=3.0)],
        }
        greedy = greedy_combination(jobs, alternatives, Criterion.COST)
        optimal = optimal_combination(jobs, alternatives, Criterion.COST)
        assert optimal.total_value == pytest.approx(greedy.total_value)

    def test_beats_greedy_when_priority_order_hurts(self):
        # High-priority job can use node 0 or node 1; low-priority job can
        # only use node 0.  Greedy gives node 0 (cheaper for "high") to the
        # high-priority job, starving "low"; optimal schedules both.
        jobs = [job("high", priority=9), job("low", priority=1)]
        alternatives = {
            "high": [window([0], price=1.0), window([1], price=4.0)],
            "low": [window([0], price=1.0)],
        }
        greedy = greedy_combination(jobs, alternatives, Criterion.COST)
        optimal = optimal_combination(jobs, alternatives, Criterion.COST)
        assert greedy.scheduled_count == 1
        assert optimal.scheduled_count == 2

    def test_prefers_more_scheduled_jobs_over_cheaper_value(self):
        jobs = [job("a"), job("b")]
        alternatives = {
            "a": [window([0], price=1.0), window([1], price=50.0)],
            "b": [window([0], price=1.0)],
        }
        optimal = optimal_combination(jobs, alternatives, Criterion.COST)
        assert optimal.scheduled_count == 2

    def test_vo_budget_enforced(self):
        jobs = [job("a"), job("b")]
        alternatives = {
            "a": [window([0], price=5.0)],
            "b": [window([1], price=5.0)],
        }
        optimal = optimal_combination(
            jobs, alternatives, Criterion.COST, vo_budget=30.0
        )
        assert optimal.scheduled_count == 1

    def test_node_budget_guard(self):
        jobs = [job(f"j{i}") for i in range(8)]
        alternatives = {
            f"j{i}": [window([i], price=1.0), window([i + 20], price=2.0)]
            for i in range(8)
        }
        with pytest.raises(SchedulingError):
            optimal_combination(
                jobs, alternatives, Criterion.COST, max_nodes_expanded=10
            )

    def test_empty_batch(self):
        optimal = optimal_combination([], {}, Criterion.COST)
        assert optimal.scheduled_count == 0


class TestConflictIndexEquivalence:
    """The interval index must accept/reject exactly like the pairwise
    ``Window.conflicts_with`` loop it replaced — including at
    TIME_EPSILON boundaries and for windows reusing a node."""

    def test_randomized_push_pop_equivalence(self):
        import random

        from repro.scheduling.combination import (
            ConflictIndex,
            _conflicts_with_any,
        )

        rng = random.Random(2013)
        for _trial in range(20):
            index = ConflictIndex()
            chosen: list[Window] = []
            for _step in range(60):
                node_ids = rng.sample(range(6), k=rng.randint(1, 3))
                candidate = window(
                    node_ids,
                    start=rng.uniform(0.0, 40.0),
                    performance=rng.choice([2.0, 4.0, 8.0]),
                )
                assert index.conflicts(candidate) == _conflicts_with_any(
                    candidate, chosen
                ), (len(chosen), candidate.start)
                if rng.random() < 0.6:
                    index.push(candidate)
                    chosen.append(candidate)
                elif chosen:
                    index.pop()
                    chosen.pop()
            assert len(index) == len(chosen)

    def test_epsilon_boundary_cases(self):
        from repro.model.slot import TIME_EPSILON
        from repro.scheduling.combination import (
            ConflictIndex,
            _conflicts_with_any,
        )

        # performance=4.0, reservation 20.0 -> required_time 5.0, so the
        # chosen window occupies node 0 over [10, 15).
        base = window([0], start=10.0, performance=4.0)
        deltas = (
            -2.0 * TIME_EPSILON,
            -TIME_EPSILON,
            -TIME_EPSILON / 2.0,
            0.0,
            TIME_EPSILON / 2.0,
            TIME_EPSILON,
        )
        for boundary in (15.0, 5.0):  # trailing and leading edges
            for delta in deltas:
                candidate = window([0], start=boundary + delta, performance=4.0)
                index = ConflictIndex()
                index.push(base)
                assert index.conflicts(candidate) == _conflicts_with_any(
                    candidate, [base]
                ), (boundary, delta)

    def test_node_reused_within_window_matches_reference(self):
        from repro.scheduling.combination import (
            ConflictIndex,
            _conflicts_with_any,
        )

        request = ResourceRequest(node_count=2, reservation_time=20.0)
        # Candidate side: conflicts_with keeps the *last* leg per node
        # (dict comprehension), so a candidate whose legs on node 0 have
        # required_time 5.0 then 1.0 effectively spans [8, 9) — clear of
        # a chosen [10, 15) even though its first leg would reach 13.
        chosen = window([0], start=10.0, performance=4.0)  # [10, 15)
        candidate_legs = tuple(
            WindowSlot.for_request(make_slot(0, 8.0, 108.0, performance), request)
            for performance in (4.0, 20.0)
        )
        candidate = Window(start=8.0, slots=candidate_legs)
        index = ConflictIndex()
        index.push(chosen)
        verdict = index.conflicts(candidate)
        assert verdict == _conflicts_with_any(candidate, [chosen])
        assert verdict is False
        # Chosen side: conflicts_with iterates *every* leg of the other
        # window, so a chosen window whose first leg covers [10, 15)
        # still blocks a candidate at 13 even though its last leg ends
        # at 12.5 — and the index, which stores all pushed legs, agrees.
        multi_chosen = Window(
            start=10.0,
            slots=tuple(
                WindowSlot.for_request(
                    make_slot(0, 10.0, 110.0, performance), request
                )
                for performance in (4.0, 8.0)
            ),
        )
        late = window([0], start=13.0, performance=4.0)
        blocked = ConflictIndex()
        blocked.push(multi_chosen)
        verdict = blocked.conflicts(late)
        assert verdict == _conflicts_with_any(late, [multi_chosen])
        assert verdict is True

    def test_pop_restores_prior_state(self):
        from repro.scheduling.combination import ConflictIndex

        first = window([0], start=0.0)
        second = window([0], start=1.0)
        index = ConflictIndex()
        index.push(first)
        assert index.conflicts(second)
        index.push(second)
        index.pop()
        assert index.conflicts(second)  # still conflicts with `first`
        index.pop()
        assert not index.conflicts(second)
        assert len(index) == 0
