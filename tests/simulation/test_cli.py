"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.cycles == 200
        assert args.nodes == 100

    def test_schedule_criterion_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "--criterion", "bogus"])


class TestCommands:
    def test_compare_runs(self, capsys):
        code = main(["compare", "--cycles", "3", "--nodes", "30", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 2(a)" in out
        assert "Fig. 4" in out
        assert "MinCost" in out

    def test_sweep_nodes_runs(self, capsys):
        code = main(
            ["sweep-nodes", "--counts", "20,30", "--reps", "2", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CSA (ms)" in out
        assert "20" in out and "30" in out

    def test_sweep_interval_runs(self, capsys):
        code = main(
            [
                "sweep-interval",
                "--lengths",
                "600,1200",
                "--reps",
                "2",
                "--nodes",
                "25",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        assert "slots" in capsys.readouterr().out

    def test_generate_writes_environment(self, tmp_path, capsys):
        path = str(tmp_path / "env.json")
        code = main(["generate", "--nodes", "10", "--seed", "4", "-o", path])
        assert code == 0
        from repro.io import load_environment

        environment = load_environment(path)
        assert len(environment.nodes) == 10

    def test_schedule_fresh_environment(self, capsys):
        code = main(
            ["schedule", "--nodes", "30", "--seed", "5", "--jobs", "3", "--gantt"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scheduled" in out
        assert "legend" in out  # the Gantt chart

    def test_schedule_from_file(self, tmp_path, capsys):
        path = str(tmp_path / "env.json")
        main(["generate", "--nodes", "30", "--seed", "6", "-o", path])
        capsys.readouterr()
        code = main(["schedule", "--env", path, "--jobs", "2", "--seed", "6"])
        assert code == 0
        assert "scheduled" in capsys.readouterr().out

    def test_schedule_criterion_option(self, capsys):
        code = main(
            [
                "schedule",
                "--nodes",
                "30",
                "--seed",
                "7",
                "--jobs",
                "2",
                "--criterion",
                "cost",
            ]
        )
        assert code == 0

    def test_presets_command(self, capsys):
        code = main(["presets", "--nodes", "20", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper-base" in out
        assert "high-load" in out

    def test_flow_command(self, capsys):
        code = main(
            [
                "flow",
                "--cycles",
                "2",
                "--arrivals",
                "2",
                "--nodes",
                "30",
                "--seed",
                "4",
                "--criterion",
                "cost",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "job flow" in out

    def test_flow_trace_option(self, tmp_path, capsys):
        path = str(tmp_path / "trace.json")
        code = main(
            [
                "flow",
                "--cycles",
                "2",
                "--arrivals",
                "2",
                "--nodes",
                "30",
                "--seed",
                "4",
                "--trace",
                path,
            ]
        )
        assert code == 0
        from repro.simulation import FlowTrace

        trace = FlowTrace.load(path)
        assert trace.events

    def test_report_with_sweeps(self, tmp_path, capsys):
        path = str(tmp_path / "full_report.md")
        code = main(
            [
                "report",
                "--cycles",
                "2",
                "--nodes",
                "25",
                "--seed",
                "2",
                "--reps",
                "1",
                "-o",
                path,
            ]
        )
        assert code == 0
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        assert "Table 1" in text
        assert "Table 2" in text

    def test_compare_latex_export(self, tmp_path, capsys):
        path = str(tmp_path / "tables.tex")
        code = main(
            [
                "compare",
                "--cycles",
                "2",
                "--nodes",
                "25",
                "--seed",
                "1",
                "--latex",
                path,
            ]
        )
        assert code == 0
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        assert text.count("\\begin{table}") == 5
        assert "MinCost" in text

    def test_bench_experiments_writes_payload(self, tmp_path, capsys):
        path = str(tmp_path / "bench.json")
        code = main(
            [
                "bench-experiments",
                "--cycles",
                "6",
                "--nodes",
                "25",
                "--seed",
                "9",
                "--workers",
                "1,2",
                "-o",
                path,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "invariant" in out.lower() or "bit-identical" in out.lower()
        import json

        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["invariant"] is True
        assert {row["workers"] for row in payload["results"]} == {0, 1, 2}
        fingerprints = {row["fingerprint"] for row in payload["results"]}
        assert len(fingerprints) == 1

    def test_compare_stream_mode_and_workers(self, capsys):
        code = main(
            [
                "compare",
                "--cycles",
                "3",
                "--nodes",
                "25",
                "--seed",
                "1",
                "--stream-mode",
                "sequential",
            ]
        )
        assert code == 0
        assert "MinCost" in capsys.readouterr().out
