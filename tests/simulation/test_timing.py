"""Unit tests for the working-time measurement harness."""

import pytest

from repro.environment import EnvironmentConfig
from repro.simulation import (
    ExperimentConfig,
    growth_exponent,
    measure_point,
    sweep_interval_lengths,
    sweep_node_counts,
)


def tiny_config():
    return ExperimentConfig(
        environment=EnvironmentConfig(node_count=20),
        node_count_requested=3,
        reservation_time=100.0,
        budget=900.0,
        cycles=1,
        seed=5,
    )


class TestMeasurePoint:
    def test_collects_all_algorithms(self):
        row = measure_point(tiny_config(), parameter=20.0, repetitions=2)
        assert set(row.algorithm_seconds) == {
            "AMP",
            "MinFinish",
            "MinCost",
            "MinRunTime",
            "MinProcTime",
        }
        for stat in row.algorithm_seconds.values():
            assert stat.count == 2
            assert stat.mean >= 0.0

    def test_csa_statistics(self):
        row = measure_point(tiny_config(), parameter=20.0, repetitions=2)
        assert row.csa_seconds.count == 2
        assert row.csa_alternatives.mean >= 0.0
        assert row.csa_seconds_per_alternative >= 0.0

    def test_without_csa(self):
        row = measure_point(
            tiny_config(), parameter=20.0, repetitions=1, include_csa=False
        )
        assert row.csa_seconds.count == 0
        assert row.csa_seconds_per_alternative == 0.0

    def test_mean_ms_conversion(self):
        row = measure_point(tiny_config(), parameter=20.0, repetitions=1)
        assert row.mean_ms("AMP") == pytest.approx(
            row.algorithm_seconds["AMP"].mean * 1e3
        )


class TestSweeps:
    def test_node_sweep_rows(self):
        study = sweep_node_counts(tiny_config(), [10, 20], repetitions=1)
        assert study.parameter_name == "node_count"
        assert [row.parameter for row in study.rows] == [10.0, 20.0]

    def test_interval_sweep_rows(self):
        study = sweep_interval_lengths(tiny_config(), [600.0, 1200.0], repetitions=1)
        assert [row.parameter for row in study.rows] == [600.0, 1200.0]
        assert study.row_for(600.0).slot_count.mean > 0

    def test_row_for_missing_raises(self):
        study = sweep_node_counts(tiny_config(), [10], repetitions=1)
        with pytest.raises(KeyError):
            study.row_for(999.0)

    def test_series_ms(self):
        study = sweep_node_counts(tiny_config(), [10, 20], repetitions=1)
        series = study.series_ms("AMP")
        assert len(series) == 2
        assert series[0][0] == 10.0

    def test_interval_sweep_increases_slot_count(self):
        study = sweep_interval_lengths(
            tiny_config(), [600.0, 2400.0], repetitions=3
        )
        short = study.row_for(600.0).slot_count.mean
        long = study.row_for(2400.0).slot_count.mean
        assert long > short


class TestGrowthExponent:
    def test_linear_series(self):
        series = [(1.0, 2.0), (2.0, 4.0), (4.0, 8.0)]
        assert growth_exponent(series) == pytest.approx(1.0)

    def test_quadratic_series(self):
        series = [(1.0, 3.0), (2.0, 12.0), (4.0, 48.0)]
        assert growth_exponent(series) == pytest.approx(2.0)

    def test_drops_nonpositive_points(self):
        series = [(0.0, 1.0), (1.0, 2.0), (2.0, 4.0)]
        assert growth_exponent(series) == pytest.approx(1.0)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            growth_exponent([(1.0, 1.0)])
