"""Unit tests for JSON serialization round trips."""

import pytest

from repro.core import AMP, MinCost
from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.io import (
    comparison_to_dict,
    environment_from_dict,
    environment_to_dict,
    load_environment,
    node_from_dict,
    node_to_dict,
    save_environment,
    window_from_dict,
    window_to_dict,
)
from repro.model import Job, ModelError, ResourceRequest
from tests.conftest import make_node


@pytest.fixture(scope="module")
def environment():
    return EnvironmentGenerator(EnvironmentConfig(node_count=12, seed=8)).generate()


class TestNodeRoundTrip:
    def test_round_trip(self):
        node = make_node(3, performance=7.0, price=4.5, ram=8192, os="bsd")
        assert node_from_dict(node_to_dict(node)) == node


class TestEnvironmentRoundTrip:
    def test_nodes_preserved(self, environment):
        clone = environment_from_dict(environment_to_dict(environment))
        assert clone.nodes == environment.nodes

    def test_busy_intervals_preserved(self, environment):
        clone = environment_from_dict(environment_to_dict(environment))
        for node_id, timeline in environment.timelines.items():
            assert clone.timelines[node_id].busy_intervals == timeline.busy_intervals

    def test_slots_identical(self, environment):
        clone = environment_from_dict(environment_to_dict(environment))
        assert clone.slots() == environment.slots()

    def test_algorithms_agree_on_clone(self, environment):
        clone = environment_from_dict(environment_to_dict(environment))
        job = Job("j", ResourceRequest(node_count=2, reservation_time=80.0, budget=800.0))
        original = MinCost().select(job, environment.slot_pool())
        cloned = MinCost().select(job, clone.slot_pool())
        assert original.total_cost == pytest.approx(cloned.total_cost)
        assert original.nodes() == cloned.nodes()

    def test_config_preserved(self, environment):
        clone = environment_from_dict(environment_to_dict(environment))
        assert clone.config.pricing == environment.config.pricing
        assert clone.config.load == environment.config.load

    def test_bad_version_rejected(self, environment):
        payload = environment_to_dict(environment)
        payload["format_version"] = 999
        with pytest.raises(ModelError):
            environment_from_dict(payload)

    def test_file_round_trip(self, environment, tmp_path):
        path = str(tmp_path / "env.json")
        save_environment(environment, path)
        clone = load_environment(path)
        assert clone.slots() == environment.slots()


class TestWindowRoundTrip:
    def test_round_trip(self, environment):
        job = Job("j", ResourceRequest(node_count=3, reservation_time=60.0, budget=900.0))
        window = AMP().select(job, environment.slot_pool())
        clone = window_from_dict(window_to_dict(window))
        assert clone.start == window.start
        assert clone.total_cost == pytest.approx(window.total_cost)
        assert clone.nodes() == window.nodes()
        assert clone.runtime == pytest.approx(window.runtime)

    def test_clone_still_validates(self, environment):
        request = ResourceRequest(node_count=3, reservation_time=60.0, budget=900.0)
        window = AMP().select(Job("j", request), environment.slot_pool())
        window_from_dict(window_to_dict(window)).validate(request)


class TestComparisonExport:
    def test_contains_every_algorithm_and_criterion(self):
        from repro.core import Criterion
        from repro.environment import EnvironmentConfig
        from repro.simulation import ExperimentConfig, run_comparison

        config = ExperimentConfig(
            environment=EnvironmentConfig(node_count=25),
            node_count_requested=2,
            reservation_time=80.0,
            budget=700.0,
            cycles=2,
            seed=4,
        )
        result = run_comparison(config)
        payload = comparison_to_dict(result)
        assert payload["cycles"] == 2
        for name in result.algorithms:
            for criterion in Criterion:
                assert criterion.value in payload["algorithms"][name]
        assert set(payload["csa_diagonal"]) == {c.value for c in Criterion}
