"""Unit tests for flow traces."""

import pytest

from repro.environment import EnvironmentConfig
from repro.model import Job, ResourceRequest, Window, WindowSlot
from repro.scheduling import FlowConfig, JobFlowSimulation
from repro.simulation import FlowTrace, JobGenerator, JobGeneratorConfig
from repro.simulation.trace import DEFERRED, DROPPED, SCHEDULED
from tests.conftest import make_slot


def sample_window():
    request = ResourceRequest(node_count=1, reservation_time=20.0)
    slot = make_slot(3, 0.0, 100.0)
    return Window(start=0.0, slots=(WindowSlot.for_request(slot, request),))


def sample_job(job_id="j1", owner="alice", priority=2):
    return Job(job_id, ResourceRequest(node_count=1, reservation_time=20.0),
               priority=priority, owner=owner)


class TestRecord:
    def test_scheduled_event_captures_window(self):
        trace = FlowTrace()
        trace.record(0, sample_job(), SCHEDULED, sample_window())
        event = trace.events[0]
        assert event.event == SCHEDULED
        assert event.window_start == 0.0
        assert event.window_cost == pytest.approx(10.0)
        assert event.window_nodes == (3,)

    def test_deferred_event_has_no_window(self):
        trace = FlowTrace()
        trace.record(1, sample_job(), DEFERRED)
        assert trace.events[0].window_start is None

    def test_scheduled_requires_window(self):
        with pytest.raises(ValueError):
            FlowTrace().record(0, sample_job(), SCHEDULED)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FlowTrace().record(0, sample_job(), "exploded")


class TestQueries:
    @pytest.fixture
    def trace(self):
        trace = FlowTrace()
        job = sample_job("j1", owner="alice")
        trace.record(0, job, DEFERRED)
        trace.record(1, job, SCHEDULED, sample_window())
        trace.record(0, sample_job("j2", owner="bob"), SCHEDULED, sample_window())
        trace.record(2, sample_job("j3", owner="bob"), DROPPED)
        return trace

    def test_for_job(self, trace):
        lifecycle = trace.for_job("j1")
        assert [event.event for event in lifecycle] == [DEFERRED, SCHEDULED]

    def test_by_kind(self, trace):
        assert len(trace.by_kind(SCHEDULED)) == 2
        assert len(trace.by_kind(DROPPED)) == 1

    def test_cycles(self, trace):
        assert trace.cycles() == [0, 1, 2]

    def test_owner_spend(self, trace):
        spend = trace.owner_spend()
        assert spend["alice"] == pytest.approx(10.0)
        assert spend["bob"] == pytest.approx(10.0)

    def test_waiting_profile_counts_only_eventually_scheduled(self, trace):
        assert trace.waiting_profile() == {"j1": 1}


class TestSerialization:
    def test_round_trip(self, tmp_path):
        trace = FlowTrace()
        trace.record(0, sample_job(), SCHEDULED, sample_window())
        trace.record(1, sample_job("j2"), DEFERRED)
        path = str(tmp_path / "trace.json")
        trace.save(path)
        clone = FlowTrace.load(path)
        assert clone.events == trace.events


class TestIntegrationWithFlow:
    def test_trace_is_complete(self):
        trace = FlowTrace()
        config = FlowConfig(
            cycles=4,
            arrivals_per_cycle=3,
            environment=EnvironmentConfig(node_count=30),
            seed=5,
        )
        result = JobFlowSimulation(config, trace=trace).run()
        assert len(trace.by_kind(SCHEDULED)) == result.scheduled_total
        assert len(trace.by_kind(DROPPED)) == result.dropped_total
        # Every event belongs to a known cycle.
        assert set(trace.cycles()) <= set(range(4))

    def test_trace_under_scarcity_records_deferrals(self):
        trace = FlowTrace()
        config = FlowConfig(
            cycles=4,
            arrivals_per_cycle=4,
            max_deferrals=1,
            environment=EnvironmentConfig(node_count=4),
            seed=3,
        )
        generator = JobGenerator(
            JobGeneratorConfig(
                node_count_range=(3, 4),
                reservation_time_choices=(250.0,),
                budget_slack_range=(2.0, 2.4),
            ),
            seed=3,
        )
        JobFlowSimulation(config, job_generator=generator, trace=trace).run()
        assert trace.by_kind(DEFERRED) or trace.by_kind(DROPPED)
