"""Unit tests for the comparison runner and the single-cycle driver."""

import pytest

from repro.core import AMP, Criterion, MinCost
from repro.simulation import (
    ExperimentConfig,
    make_generator,
    paper_algorithm_suite,
    paper_base_config,
    run_comparison,
    run_cycle,
)
from repro.environment import EnvironmentConfig


def small_config(cycles=5, seed=3):
    return ExperimentConfig(
        environment=EnvironmentConfig(node_count=30),
        node_count_requested=3,
        reservation_time=100.0,
        budget=900.0,
        cycles=cycles,
        seed=seed,
    )


class TestRunCycle:
    def test_runs_all_algorithms_on_same_pool(self):
        config = small_config()
        generator = make_generator(config)
        outcome = run_cycle(
            generator, config.base_job(), [AMP(), MinCost()], include_csa=False
        )
        assert set(outcome.windows) == {"AMP", "MinCost"}
        assert outcome.slot_count > 0

    def test_csa_alternatives_collected(self):
        config = small_config()
        generator = make_generator(config)
        outcome = run_cycle(generator, config.base_job(), [AMP()])
        assert isinstance(outcome.csa_alternatives, list)

    def test_validate_flag(self):
        config = small_config()
        generator = make_generator(config)
        run_cycle(generator, config.base_job(), [AMP(), MinCost()], validate=True)

    def test_window_of(self):
        config = small_config()
        generator = make_generator(config)
        outcome = run_cycle(generator, config.base_job(), [AMP()], include_csa=False)
        assert outcome.window_of("AMP") is outcome.windows["AMP"]
        assert outcome.window_of("nope") is None


class TestPaperSuite:
    def test_contains_the_five_algorithms(self):
        names = {algorithm.name for algorithm in paper_algorithm_suite()}
        assert names == {"AMP", "MinFinish", "MinCost", "MinRunTime", "MinProcTime"}


class TestRunComparison:
    def test_aggregates_every_algorithm(self):
        result = run_comparison(small_config(), include_csa=False)
        assert result.cycles_run == 5
        for name in ("AMP", "MinFinish", "MinCost", "MinRunTime", "MinProcTime"):
            assert result.algorithms[name].attempts == 5

    def test_reproducible_with_seed(self):
        a = run_comparison(small_config(seed=11), include_csa=False)
        b = run_comparison(small_config(seed=11), include_csa=False)
        for name in a.algorithms:
            assert a.algorithms[name].mean(Criterion.COST) == pytest.approx(
                b.algorithms[name].mean(Criterion.COST)
            )

    def test_different_seeds_differ(self):
        a = run_comparison(small_config(seed=11), include_csa=False)
        b = run_comparison(small_config(seed=12), include_csa=False)
        assert a.algorithms["AMP"].mean(Criterion.COST) != pytest.approx(
            b.algorithms["AMP"].mean(Criterion.COST)
        )

    def test_csa_stats_populated(self):
        result = run_comparison(small_config())
        assert result.csa.alternatives.count == 5
        assert result.csa.alternatives.mean > 0

    def test_all_means_includes_csa(self):
        result = run_comparison(small_config())
        means = result.all_means(Criterion.COST)
        assert "CSA" in means
        assert set(means) >= {"AMP", "MinCost", "CSA"}

    def test_ranking_sorted_by_mean(self):
        result = run_comparison(small_config())
        ranking = result.ranking(Criterion.COST)
        means = result.all_means(Criterion.COST)
        assert ranking == sorted(means, key=means.__getitem__)

    def test_mincost_wins_cost_ranking(self):
        result = run_comparison(small_config(cycles=10))
        assert result.ranking(Criterion.COST)[0] == "MinCost"

    def test_custom_algorithm_list(self):
        result = run_comparison(
            small_config(), algorithms=[MinCost()], include_csa=False
        )
        assert list(result.algorithms) == ["MinCost"]

    def test_custom_job_override(self):
        config = small_config()
        from repro.model import Job, ResourceRequest

        tiny = Job("tiny", ResourceRequest(node_count=1, reservation_time=10.0))
        result = run_comparison(
            config, algorithms=[AMP()], include_csa=False, job=tiny
        )
        assert result.algorithms["AMP"].find_rate == 1.0
