"""Unit tests for the comparison runner and the single-cycle driver."""

import pytest

from repro.core import AMP, Criterion, MinCost
from repro.simulation import (
    ExperimentConfig,
    make_generator,
    paper_algorithm_suite,
    paper_base_config,
    run_comparison,
    run_cycle,
)
from repro.environment import EnvironmentConfig


def small_config(cycles=5, seed=3):
    return ExperimentConfig(
        environment=EnvironmentConfig(node_count=30),
        node_count_requested=3,
        reservation_time=100.0,
        budget=900.0,
        cycles=cycles,
        seed=seed,
    )


class TestRunCycle:
    def test_runs_all_algorithms_on_same_pool(self):
        config = small_config()
        generator = make_generator(config)
        outcome = run_cycle(
            generator, config.base_job(), [AMP(), MinCost()], include_csa=False
        )
        assert set(outcome.windows) == {"AMP", "MinCost"}
        assert outcome.slot_count > 0

    def test_csa_alternatives_collected(self):
        config = small_config()
        generator = make_generator(config)
        outcome = run_cycle(generator, config.base_job(), [AMP()])
        assert isinstance(outcome.csa_alternatives, list)

    def test_validate_flag(self):
        config = small_config()
        generator = make_generator(config)
        run_cycle(generator, config.base_job(), [AMP(), MinCost()], validate=True)

    def test_window_of(self):
        config = small_config()
        generator = make_generator(config)
        outcome = run_cycle(generator, config.base_job(), [AMP()], include_csa=False)
        assert outcome.window_of("AMP") is outcome.windows["AMP"]
        assert outcome.window_of("nope") is None


class TestPaperSuite:
    def test_contains_the_five_algorithms(self):
        names = {algorithm.name for algorithm in paper_algorithm_suite()}
        assert names == {"AMP", "MinFinish", "MinCost", "MinRunTime", "MinProcTime"}


class TestRunComparison:
    def test_aggregates_every_algorithm(self):
        result = run_comparison(small_config(), include_csa=False)
        assert result.cycles_run == 5
        for name in ("AMP", "MinFinish", "MinCost", "MinRunTime", "MinProcTime"):
            assert result.algorithms[name].attempts == 5

    def test_reproducible_with_seed(self):
        a = run_comparison(small_config(seed=11), include_csa=False)
        b = run_comparison(small_config(seed=11), include_csa=False)
        for name in a.algorithms:
            assert a.algorithms[name].mean(Criterion.COST) == pytest.approx(
                b.algorithms[name].mean(Criterion.COST)
            )

    def test_different_seeds_differ(self):
        a = run_comparison(small_config(seed=11), include_csa=False)
        b = run_comparison(small_config(seed=12), include_csa=False)
        assert a.algorithms["AMP"].mean(Criterion.COST) != pytest.approx(
            b.algorithms["AMP"].mean(Criterion.COST)
        )

    def test_csa_stats_populated(self):
        result = run_comparison(small_config())
        assert result.csa.alternatives.count == 5
        assert result.csa.alternatives.mean > 0

    def test_all_means_includes_csa(self):
        result = run_comparison(small_config())
        means = result.all_means(Criterion.COST)
        assert "CSA" in means
        assert set(means) >= {"AMP", "MinCost", "CSA"}

    def test_ranking_sorted_by_mean(self):
        result = run_comparison(small_config())
        ranking = result.ranking(Criterion.COST)
        means = result.all_means(Criterion.COST)
        assert ranking == sorted(means, key=means.__getitem__)

    def test_mincost_wins_cost_ranking(self):
        result = run_comparison(small_config(cycles=10))
        assert result.ranking(Criterion.COST)[0] == "MinCost"

    def test_custom_algorithm_list(self):
        result = run_comparison(
            small_config(), algorithms=[MinCost()], include_csa=False
        )
        assert list(result.algorithms) == ["MinCost"]

    def test_custom_job_override(self):
        config = small_config()
        from repro.model import Job, ResourceRequest

        tiny = Job("tiny", ResourceRequest(node_count=1, reservation_time=10.0))
        result = run_comparison(
            config, algorithms=[AMP()], include_csa=False, job=tiny
        )
        assert result.algorithms["AMP"].find_rate == 1.0


class TestStreamDiscipline:
    """RNG stream guarantees of the process-parallel engine."""

    def test_spawned_cycles_are_order_independent(self):
        config = small_config(cycles=6, seed=19)
        seeds = config.spawn_cycle_seeds()
        from repro.simulation import run_spawned_cycle

        forward = [run_spawned_cycle(config, seed) for seed in seeds]
        backward = [run_spawned_cycle(config, seed) for seed in reversed(seeds)]
        assert forward == list(reversed(backward))

    def test_aggregates_bit_identical_across_worker_counts(self):
        from repro.simulation.bench import result_fingerprint

        config = small_config(cycles=8, seed=23)
        fingerprints = {
            workers: result_fingerprint(run_comparison(config, workers=workers))
            for workers in (None, 1, 2)
        }
        assert len(set(fingerprints.values())) == 1

    def test_sequential_reproduces_single_stream_loop(self):
        from repro.simulation import (
            ComparisonResult,
            CsaStats,
            RunningStat,
            WindowStats,
        )
        from repro.simulation.bench import result_fingerprint
        from repro.simulation.experiment import run_cycle

        config = small_config(cycles=6, seed=29).with_stream_mode("sequential")
        engine = run_comparison(config)

        # The pre-engine semantics: one generator, one stream, cycles in order.
        generator = make_generator(config)
        job = config.base_job()
        algorithms = paper_algorithm_suite(rng=generator.rng)
        stats = {algorithm.name: WindowStats() for algorithm in algorithms}
        csa = CsaStats()
        slot_count = RunningStat()
        for _ in range(config.cycles):
            outcome = run_cycle(generator, job, algorithms)
            for name, window in outcome.windows.items():
                stats[name].observe(window)
            csa.observe(outcome.csa_alternatives)
            slot_count.add(float(outcome.slot_count))
        legacy = ComparisonResult(
            config=config,
            algorithms=stats,
            csa=csa,
            slot_count=slot_count,
            cycles_run=config.cycles,
        )
        assert result_fingerprint(engine) == result_fingerprint(legacy)

    def test_spawned_differs_from_sequential_but_agrees_statistically(self):
        config = small_config(cycles=10, seed=31)
        spawned = run_comparison(config)
        sequential = run_comparison(config.with_stream_mode("sequential"))
        assert spawned.cycles_run == sequential.cycles_run == 10
        # Different draw histories...
        assert spawned.algorithms["MinCost"].mean(
            Criterion.COST
        ) != sequential.algorithms["MinCost"].mean(Criterion.COST)
        # ...but the same experiment: every algorithm attempted every cycle.
        for name in spawned.algorithms:
            assert spawned.algorithms[name].attempts == 10
            assert sequential.algorithms[name].attempts == 10

    def test_invalid_stream_mode_rejected(self):
        from repro.model.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="stream_mode"):
            ExperimentConfig(
                environment=EnvironmentConfig(node_count=10),
                node_count_requested=2,
                reservation_time=50.0,
                cycles=2,
                stream_mode="threads",
            )

    def test_sequential_cannot_fan_out(self):
        from repro.model.errors import ConfigurationError

        config = small_config().with_stream_mode("sequential")
        with pytest.raises(ConfigurationError, match="sequential"):
            run_comparison(config, workers=2)

    def test_chunk_size_changes_merge_tree_not_statistics(self):
        config = small_config(cycles=9, seed=37)
        # The chunk decomposition is the merge tree: worker counts share
        # it (hence bit-identical aggregates), but a different chunk size
        # is a different summation order — statistically identical, equal
        # only to float tolerance.
        a = run_comparison(config, chunk_size=2)
        b = run_comparison(config, chunk_size=16)
        for name in a.algorithms:
            assert a.algorithms[name].attempts == b.algorithms[name].attempts
            for criterion in Criterion:
                assert a.algorithms[name].mean(criterion) == pytest.approx(
                    b.algorithms[name].mean(criterion), rel=1e-12
                )
