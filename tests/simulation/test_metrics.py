"""Unit tests for the metric accumulators."""

import math

import numpy as np
import pytest

from repro.core import Criterion
from repro.model import ResourceRequest, Window, WindowSlot
from repro.simulation import CsaStats, RunningStat, WindowStats
from tests.conftest import make_slot


def window(start=0.0, performance=4.0, price=2.0, node_id=0):
    request = ResourceRequest(node_count=1, reservation_time=20.0)
    slot = make_slot(node_id, start, start + 100.0, performance, price)
    return Window(start=start, slots=(WindowSlot.for_request(slot, request),))


class TestRunningStat:
    def test_empty(self):
        stat = RunningStat()
        assert stat.count == 0
        assert stat.mean == 0.0
        assert stat.variance == 0.0
        assert math.isinf(stat.sem)

    def test_single_value(self):
        stat = RunningStat()
        stat.add(5.0)
        assert stat.mean == 5.0
        assert stat.variance == 0.0
        assert stat.minimum == 5.0
        assert stat.maximum == 5.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10.0, 3.0, size=500)
        stat = RunningStat()
        for value in values:
            stat.add(float(value))
        assert stat.mean == pytest.approx(float(np.mean(values)))
        assert stat.variance == pytest.approx(float(np.var(values, ddof=1)))
        assert stat.std == pytest.approx(float(np.std(values, ddof=1)))
        assert stat.minimum == pytest.approx(float(values.min()))
        assert stat.maximum == pytest.approx(float(values.max()))

    def test_sem_and_confidence_interval(self):
        stat = RunningStat()
        for value in (1.0, 2.0, 3.0, 4.0):
            stat.add(value)
        expected_sem = stat.std / 2.0
        assert stat.sem == pytest.approx(expected_sem)
        low, high = stat.confidence_interval()
        assert low == pytest.approx(stat.mean - 1.96 * expected_sem)
        assert high == pytest.approx(stat.mean + 1.96 * expected_sem)


class TestWindowStats:
    def test_observe_none_counts_attempt_only(self):
        stats = WindowStats()
        stats.observe(None)
        assert stats.attempts == 1
        assert stats.found == 0
        assert stats.find_rate == 0.0

    def test_observe_window_records_all_criteria(self):
        stats = WindowStats()
        w = window(start=10.0)
        stats.observe(w)
        assert stats.find_rate == 1.0
        assert stats.mean(Criterion.START_TIME) == pytest.approx(10.0)
        assert stats.mean(Criterion.RUNTIME) == pytest.approx(5.0)
        assert stats.mean(Criterion.COST) == pytest.approx(10.0)

    def test_mixed_observations(self):
        stats = WindowStats()
        stats.observe(window(start=0.0))
        stats.observe(None)
        stats.observe(window(start=20.0))
        assert stats.attempts == 3
        assert stats.found == 2
        assert stats.find_rate == pytest.approx(2 / 3)
        assert stats.mean(Criterion.START_TIME) == pytest.approx(10.0)

    def test_as_row_contains_every_criterion(self):
        stats = WindowStats()
        stats.observe(window())
        row = stats.as_row()
        for criterion in Criterion:
            assert criterion.value in row
        assert row["find_rate"] == 1.0

    def test_empty_find_rate(self):
        assert WindowStats().find_rate == 0.0


class TestCsaStats:
    def test_observes_alternative_count(self):
        stats = CsaStats()
        stats.observe([window(node_id=0), window(start=50.0, node_id=1)])
        stats.observe([window(node_id=0)])
        assert stats.alternatives.mean == pytest.approx(1.5)

    def test_diagonal_selects_extreme_per_criterion(self):
        stats = CsaStats()
        early_slow = window(start=0.0, performance=1.0, price=0.5, node_id=0)
        late_fast = window(start=50.0, performance=10.0, price=9.0, node_id=1)
        stats.observe([early_slow, late_fast])
        assert stats.diagonal(Criterion.START_TIME) == pytest.approx(0.0)
        assert stats.diagonal(Criterion.RUNTIME) == pytest.approx(2.0)
        assert stats.diagonal(Criterion.COST) == pytest.approx(10.0)

    def test_empty_cycle_counts_as_missing(self):
        stats = CsaStats()
        stats.observe([])
        assert stats.alternatives.mean == 0.0
        assert stats.selections[Criterion.COST].found == 0

    def test_selection_stats_track_full_window(self):
        stats = CsaStats()
        early_slow = window(start=0.0, performance=1.0, price=0.5, node_id=0)
        late_fast = window(start=50.0, performance=10.0, price=9.0, node_id=1)
        stats.observe([early_slow, late_fast])
        # The runtime-selected window is the fast one; its start is 50.
        runtime_selection = stats.selections[Criterion.RUNTIME]
        assert runtime_selection.mean(Criterion.START_TIME) == pytest.approx(50.0)

def accumulate(values):
    stat = RunningStat()
    for value in values:
        stat.add(float(value))
    return stat


def stat_fields(stat):
    return (
        stat.count,
        stat.mean.hex(),
        stat.variance.hex(),
        stat.minimum.hex(),
        stat.maximum.hex(),
    )


class TestRunningStatMerge:
    """The parallel (Chan et al.) merge behind chunked aggregation."""

    def test_merge_matches_single_stream(self):
        rng = np.random.default_rng(7)
        values = rng.normal(50.0, 12.0, size=400)
        for split in (1, 13, 200, 399):
            left = accumulate(values[:split])
            right = accumulate(values[split:])
            left.merge(right)
            whole = accumulate(values)
            assert left.count == whole.count
            assert left.mean == pytest.approx(whole.mean, rel=1e-12)
            assert left.variance == pytest.approx(whole.variance, rel=1e-9)
            assert left.minimum == whole.minimum
            assert left.maximum == whole.maximum

    def test_merge_associative_on_random_splits(self):
        rng = np.random.default_rng(11)
        values = rng.uniform(-5.0, 5.0, size=300)
        cuts = sorted(rng.integers(1, 299, size=2))
        b = accumulate(values[cuts[0] : cuts[1]])
        c = accumulate(values[cuts[1] :])
        # (a + b) + c
        left = accumulate(values[: cuts[0]])
        left.merge(b)
        left.merge(c)
        # a + (b + c)
        bc = accumulate(values[cuts[0] : cuts[1]])
        bc.merge(c)
        right = accumulate(values[: cuts[0]])
        right.merge(bc)
        assert left.count == right.count == len(values)
        assert left.mean == pytest.approx(right.mean, rel=1e-12)
        assert left.variance == pytest.approx(right.variance, rel=1e-9)

    def test_merge_commutative_in_value(self):
        x = accumulate([1.0, 2.0, 9.0])
        y = accumulate([4.0, 4.5])
        xy = accumulate([1.0, 2.0, 9.0])
        xy.merge(y)
        yx = accumulate([4.0, 4.5])
        yx.merge(x)
        assert xy.count == yx.count
        assert xy.mean == pytest.approx(yx.mean, rel=1e-12)
        assert xy.variance == pytest.approx(yx.variance, rel=1e-12)
        assert (xy.minimum, xy.maximum) == (yx.minimum, yx.maximum)

    def test_merge_empty_is_bitwise_noop(self):
        stat = accumulate([3.0, 7.0, 11.0])
        before = stat_fields(stat)
        stat.merge(RunningStat())
        assert stat_fields(stat) == before

    def test_merge_into_empty_is_bitwise_copy(self):
        source = accumulate([3.0, 7.0, 11.0])
        target = RunningStat()
        target.merge(source)
        assert stat_fields(target) == stat_fields(source)

    def test_merge_single_samples(self):
        stat = RunningStat()
        for value in (2.0, 8.0):
            single = RunningStat()
            single.add(value)
            stat.merge(single)
        direct = accumulate([2.0, 8.0])
        assert stat_fields(stat) == stat_fields(direct)


class TestAggregateMerge:
    """WindowStats / CsaStats merging equals interleaved observation."""

    def test_window_stats_merge(self):
        windows = [window(start=float(s)) for s in (0, 10, 20, 30)]
        observations = [windows[0], None, windows[1], windows[2], None, windows[3]]
        whole = WindowStats()
        left, right = WindowStats(), WindowStats()
        for index, item in enumerate(observations):
            whole.observe(item)
            (left if index < 3 else right).observe(item)
        left.merge(right)
        assert left.attempts == whole.attempts
        assert left.found == whole.found
        for criterion in Criterion:
            assert left.mean(criterion) == pytest.approx(whole.mean(criterion))

    def test_csa_stats_merge(self):
        cycles = [
            [window(start=0.0, node_id=0), window(start=50.0, node_id=1)],
            [],
            [window(start=25.0, node_id=0)],
        ]
        whole = CsaStats()
        left, right = CsaStats(), CsaStats()
        for index, alternatives in enumerate(cycles):
            whole.observe(alternatives)
            (left if index < 2 else right).observe(alternatives)
        left.merge(right)
        assert left.alternatives.count == whole.alternatives.count
        assert left.alternatives.mean == pytest.approx(whole.alternatives.mean)
        for criterion in Criterion:
            assert left.diagonal(criterion) == pytest.approx(whole.diagonal(criterion))
