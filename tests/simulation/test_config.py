"""Unit tests for the experiment configuration."""

import pytest

from repro.model import ConfigurationError
from repro.simulation import (
    PAPER_BUDGET,
    PAPER_NODE_COUNT,
    PAPER_RESERVATION_TIME,
    PAPER_TASK_COUNT,
    ExperimentConfig,
    paper_base_config,
)


class TestValidation:
    def test_rejects_zero_cycles(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(cycles=0)

    def test_rejects_zero_requested_nodes(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(node_count_requested=0)

    def test_rejects_nonpositive_reservation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(reservation_time=0.0)


class TestPaperBaseConfig:
    def test_section31_values(self):
        config = paper_base_config()
        assert config.environment.node_count == PAPER_NODE_COUNT == 100
        assert config.environment.interval_length == pytest.approx(600.0)
        assert config.node_count_requested == PAPER_TASK_COUNT == 5
        assert config.reservation_time == PAPER_RESERVATION_TIME == 150.0
        assert config.budget == PAPER_BUDGET == 1500.0

    def test_base_request_and_job(self):
        config = paper_base_config()
        request = config.base_request()
        assert request.node_count == 5
        assert request.effective_budget == pytest.approx(1500.0)
        job = config.base_job()
        assert job.request == request

    def test_with_cycles(self):
        assert paper_base_config().with_cycles(17).cycles == 17

    def test_with_node_count_sweeps_environment(self):
        config = paper_base_config().with_node_count(400)
        assert config.environment.node_count == 400
        assert config.node_count_requested == 5  # job unchanged

    def test_with_interval_length_sweeps_environment(self):
        config = paper_base_config().with_interval_length(3600.0)
        assert config.environment.interval_length == pytest.approx(3600.0)
        assert config.environment.node_count == 100  # nodes unchanged
