"""Unit tests for the random job-batch generator."""

import numpy as np
import pytest

from repro.model import ConfigurationError
from repro.simulation import JobGenerator, JobGeneratorConfig


class TestConfigValidation:
    def test_rejects_bad_node_count_range(self):
        with pytest.raises(ConfigurationError):
            JobGeneratorConfig(node_count_range=(0, 3))
        with pytest.raises(ConfigurationError):
            JobGeneratorConfig(node_count_range=(4, 2))

    def test_rejects_bad_reservation_choices(self):
        with pytest.raises(ConfigurationError):
            JobGeneratorConfig(reservation_time_choices=())
        with pytest.raises(ConfigurationError):
            JobGeneratorConfig(reservation_time_choices=(0.0,))

    def test_rejects_bad_slack(self):
        with pytest.raises(ConfigurationError):
            JobGeneratorConfig(budget_slack_range=(0.0, 2.0))
        with pytest.raises(ConfigurationError):
            JobGeneratorConfig(budget_slack_range=(2.0, 1.0))

    def test_rejects_bad_deadline_probability(self):
        with pytest.raises(ConfigurationError):
            JobGeneratorConfig(deadline_probability=1.5)

    def test_rejects_bad_priorities_and_owners(self):
        with pytest.raises(ConfigurationError):
            JobGeneratorConfig(priority_range=(5, 2))
        with pytest.raises(ConfigurationError):
            JobGeneratorConfig(owners=())


class TestGeneration:
    def test_jobs_respect_distributions(self):
        config = JobGeneratorConfig(
            node_count_range=(2, 4),
            reservation_time_choices=(50.0, 100.0),
            budget_slack_range=(1.5, 2.0),
            priority_range=(1, 3),
        )
        generator = JobGenerator(config, seed=1)
        for _ in range(100):
            job = generator.generate_job()
            assert 2 <= job.request.node_count <= 4
            assert job.request.reservation_time in (50.0, 100.0)
            nominal = job.request.node_count * job.request.reservation_time
            assert 1.5 * nominal <= job.request.budget <= 2.0 * nominal
            assert 1 <= job.priority <= 3
            assert job.owner in JobGeneratorConfig().owners

    def test_unique_ids(self):
        generator = JobGenerator(seed=2)
        batch = generator.generate_batch(20)
        assert len({job.job_id for job in batch.jobs}) == 20

    def test_prefix(self):
        generator = JobGenerator(seed=3)
        batch = generator.generate_batch(3, prefix="cycle1-")
        assert all(job.job_id.startswith("cycle1-") for job in batch.jobs)

    def test_deadlines_generated_when_enabled(self):
        config = JobGeneratorConfig(deadline_probability=1.0)
        generator = JobGenerator(config, seed=4)
        job = generator.generate_job()
        assert job.request.deadline is not None
        assert job.request.deadline >= job.request.reservation_time

    def test_no_deadlines_by_default(self):
        generator = JobGenerator(seed=5)
        assert all(
            generator.generate_job().request.deadline is None for _ in range(20)
        )

    def test_seed_reproducibility(self):
        a = JobGenerator(seed=9).generate_batch(5)
        b = JobGenerator(seed=9).generate_batch(5)
        for job_a, job_b in zip(a.jobs, b.jobs):
            assert job_a.request == job_b.request
            assert job_a.priority == job_b.priority

    def test_external_rng(self):
        rng = np.random.default_rng(11)
        generator = JobGenerator(rng=rng)
        assert generator.generate_job().request.node_count >= 2

    def test_negative_batch_size_rejected(self):
        with pytest.raises(ConfigurationError):
            JobGenerator(seed=1).generate_batch(-1)

    def test_generated_batch_schedules_on_real_environment(self):
        from repro.core import CSA
        from repro.environment import EnvironmentConfig, EnvironmentGenerator
        from repro.scheduling import BatchScheduler

        environment = EnvironmentGenerator(
            EnvironmentConfig(node_count=50, seed=13)
        ).generate()
        batch = JobGenerator(seed=13).generate_batch(4)
        report = BatchScheduler(search=CSA(max_alternatives=6)).run_cycle(
            batch, environment
        )
        assert report.choice.scheduled_count >= 3
