"""Unit tests for :class:`repro.model.Slot`."""

import pytest

from repro.model import InvalidIntervalError, ModelError, Slot
from tests.conftest import make_node, make_slot


class TestConstruction:
    def test_length(self):
        assert make_slot(0, 10.0, 35.0).length == pytest.approx(25.0)

    def test_rejects_empty_interval(self):
        with pytest.raises(InvalidIntervalError):
            make_slot(0, 10.0, 10.0)

    def test_rejects_inverted_interval(self):
        with pytest.raises(InvalidIntervalError):
            make_slot(0, 10.0, 5.0)

    def test_error_carries_bounds(self):
        with pytest.raises(InvalidIntervalError) as excinfo:
            make_slot(0, 7.0, 3.0)
        assert excinfo.value.start == 7.0
        assert excinfo.value.end == 3.0


class TestContainment:
    def test_contains_inner_interval(self):
        slot = make_slot(0, 0.0, 50.0)
        assert slot.contains(10.0, 20.0)

    def test_contains_exact_bounds(self):
        slot = make_slot(0, 0.0, 50.0)
        assert slot.contains(0.0, 50.0)

    def test_does_not_contain_overhang(self):
        slot = make_slot(0, 0.0, 50.0)
        assert not slot.contains(40.0, 51.0)
        assert not slot.contains(-1.0, 10.0)

    def test_can_host_at_start(self):
        slot = make_slot(0, 5.0, 30.0)
        assert slot.can_host(5.0, 25.0)
        assert not slot.can_host(5.0, 25.1)

    def test_can_host_mid_slot(self):
        slot = make_slot(0, 5.0, 30.0)
        assert slot.can_host(10.0, 20.0)
        assert not slot.can_host(10.0, 20.5)

    def test_can_host_rejects_negative_duration(self):
        with pytest.raises(ModelError):
            make_slot(0, 0.0, 10.0).can_host(0.0, -1.0)

    def test_remaining_from(self):
        slot = make_slot(0, 10.0, 40.0)
        assert slot.remaining_from(0.0) == pytest.approx(30.0)
        assert slot.remaining_from(10.0) == pytest.approx(30.0)
        assert slot.remaining_from(25.0) == pytest.approx(15.0)
        assert slot.remaining_from(40.0) == pytest.approx(0.0)
        assert slot.remaining_from(45.0) == pytest.approx(-5.0)


class TestOverlap:
    def test_overlapping(self):
        assert make_slot(0, 0.0, 10.0).overlaps(make_slot(1, 5.0, 15.0))

    def test_touching_do_not_overlap(self):
        assert not make_slot(0, 0.0, 10.0).overlaps(make_slot(1, 10.0, 20.0))

    def test_disjoint(self):
        assert not make_slot(0, 0.0, 10.0).overlaps(make_slot(1, 20.0, 30.0))

    def test_nested(self):
        assert make_slot(0, 0.0, 30.0).overlaps(make_slot(1, 10.0, 20.0))


class TestSplit:
    def test_split_middle_returns_both_remainders(self):
        slot = make_slot(0, 0.0, 100.0)
        left, right = slot.split(30.0, 60.0)
        assert (left.start, left.end) == (0.0, 30.0)
        assert (right.start, right.end) == (60.0, 100.0)
        assert left.node == slot.node
        assert right.node == slot.node

    def test_split_at_start_returns_right_only(self):
        (right,) = make_slot(0, 0.0, 100.0).split(0.0, 40.0)
        assert (right.start, right.end) == (40.0, 100.0)

    def test_split_at_end_returns_left_only(self):
        (left,) = make_slot(0, 0.0, 100.0).split(60.0, 100.0)
        assert (left.start, left.end) == (0.0, 60.0)

    def test_split_whole_slot_returns_nothing(self):
        assert make_slot(0, 0.0, 100.0).split(0.0, 100.0) == []

    def test_split_respects_min_length(self):
        remainders = make_slot(0, 0.0, 100.0).split(3.0, 95.0, min_length=10.0)
        assert remainders == []

    def test_split_keeps_remainder_at_exact_min_length(self):
        remainders = make_slot(0, 0.0, 100.0).split(10.0, 100.0, min_length=10.0)
        assert len(remainders) == 1
        assert remainders[0].length == pytest.approx(10.0)

    def test_split_outside_slot_raises(self):
        with pytest.raises(ModelError):
            make_slot(0, 10.0, 20.0).split(5.0, 15.0)

    def test_split_conserves_time(self):
        slot = make_slot(0, 0.0, 100.0)
        remainders = slot.split(20.0, 45.0)
        assert sum(r.length for r in remainders) + 25.0 == pytest.approx(slot.length)


class TestOrdering:
    def test_sort_key_orders_by_start_first(self):
        early = make_slot(5, 0.0, 10.0)
        late = make_slot(1, 1.0, 2.0)
        assert early.sort_key() < late.sort_key()

    def test_sort_key_breaks_ties_by_end_then_node(self):
        a = make_slot(2, 0.0, 10.0)
        b = make_slot(1, 0.0, 20.0)
        assert a.sort_key() < b.sort_key()
        c = make_slot(1, 0.0, 10.0)
        assert c.sort_key() < a.sort_key()

    def test_slots_are_value_objects(self):
        node = make_node(3)
        assert Slot(node, 0.0, 5.0) == Slot(node, 0.0, 5.0)
