"""The slot lifecycle: coalescing add, span commits, release, trimming.

These are the pool operations the broker service leans on to run
indefinitely: ``add`` merges touching same-node spans so repeated
cut/release cycles do not fragment the pool, ``commit_window`` cuts by
span containment, ``release`` is the exact inverse of a cut, and
``trim_before`` advances the virtual clock.
"""

from __future__ import annotations

import pytest

from repro.core.algorithms import AMP
from repro.model import Job, ResourceRequest, Slot, SlotPool
from repro.model.errors import AllocationError

from tests.conftest import make_node, make_slot


def pool_spans(pool: SlotPool) -> dict[int, list[tuple[float, float]]]:
    return {
        node_id: [(slot.start, slot.end) for slot in slots]
        for node_id, slots in pool.by_node().items()
    }


# ----------------------------------------------------------------------
# Coalescing add
# ----------------------------------------------------------------------
def test_add_coalesces_touching_same_node_slots():
    node = make_node(1)
    pool = SlotPool.from_slots([Slot(node, 0.0, 10.0), Slot(node, 10.0, 25.0)])
    assert len(pool) == 1
    assert pool_spans(pool) == {1: [(0.0, 25.0)]}
    pool.assert_disjoint_per_node()


def test_add_coalesces_both_neighbours():
    node = make_node(1)
    pool = SlotPool.from_slots([Slot(node, 0.0, 10.0), Slot(node, 20.0, 30.0)])
    assert len(pool) == 2
    pool.add(Slot(node, 10.0, 20.0))
    assert pool_spans(pool) == {1: [(0.0, 30.0)]}


def test_add_keeps_gapped_and_cross_node_slots_apart():
    pool = SlotPool.from_slots(
        [make_slot(1, 0.0, 10.0), make_slot(1, 11.0, 20.0), make_slot(2, 10.0, 30.0)]
    )
    # gap of 1 on node 1 and a different node id must never merge
    assert len(pool) == 3


def test_add_verbatim_skips_coalescing():
    node = make_node(1)
    pool = SlotPool.from_slots([Slot(node, 0.0, 10.0)])
    pool.add(Slot(node, 10.0, 20.0), coalesce=False)
    assert len(pool) == 2


# ----------------------------------------------------------------------
# Cut / release round trip
# ----------------------------------------------------------------------
@pytest.fixture
def window_and_pool(uniform_pool):
    job = Job("rt", ResourceRequest(node_count=2, reservation_time=20.0, budget=1000.0))
    window = AMP().select(job, uniform_pool)
    assert window is not None
    return window, uniform_pool


def test_release_is_inverse_of_cut(window_and_pool):
    window, pool = window_and_pool
    before = pool_spans(pool)
    pool.cut_window(window)
    assert pool_spans(pool) != before
    pool.release(window)
    assert pool_spans(pool) == before
    pool.assert_disjoint_per_node()


def test_release_is_inverse_of_commit(window_and_pool):
    window, pool = window_and_pool
    before = pool_spans(pool)
    pool.commit_window(window)
    pool.release(window)
    assert pool_spans(pool) == before


def test_double_release_raises_and_leaves_pool_unchanged(window_and_pool):
    window, pool = window_and_pool
    pool.cut_window(window)
    pool.release(window)
    spans = pool_spans(pool)
    with pytest.raises(AllocationError, match="double release"):
        pool.release(window)
    assert pool_spans(pool) == spans


def test_repeated_cut_release_does_not_fragment(window_and_pool):
    window, pool = window_and_pool
    before = pool_spans(pool)
    size = len(pool)
    for _ in range(25):
        pool.cut_window(window)
        pool.release(window)
    assert len(pool) == size
    assert pool_spans(pool) == before


def test_commit_window_after_earlier_cut_relocates_by_span(uniform_pool):
    """Committing two windows picked on one snapshot must both succeed."""
    job = Job("a", ResourceRequest(node_count=2, reservation_time=20.0, budget=1000.0))
    snapshot = uniform_pool.copy()
    first = AMP().select(job, snapshot)
    snapshot.cut_window(first)
    second = AMP().select(job, snapshot)
    assert first is not None and second is not None
    # both windows reference slot objects of the *snapshot*; committing the
    # first replaces the shared pool's slots, so the second must be located
    # by span containment rather than identity.
    uniform_pool.commit_window(first)
    uniform_pool.commit_window(second)
    uniform_pool.assert_disjoint_per_node()
    uniform_pool.release(second)
    uniform_pool.release(first)
    assert pool_spans(uniform_pool) == {i: [(0.0, 100.0)] for i in range(4)}


def test_commit_window_without_containing_slot_raises(uniform_pool):
    job = Job("a", ResourceRequest(node_count=2, reservation_time=20.0, budget=1000.0))
    window = AMP().select(job, uniform_pool)
    uniform_pool.commit_window(window)
    with pytest.raises(AllocationError, match="contains the"):
        uniform_pool.commit_window(window)


# ----------------------------------------------------------------------
# trim_before
# ----------------------------------------------------------------------
def test_trim_before_drops_and_truncates():
    pool = SlotPool.from_slots(
        [make_slot(1, 0.0, 10.0), make_slot(2, 5.0, 40.0), make_slot(3, 30.0, 50.0)]
    )
    changed = pool.trim_before(20.0)
    assert changed == 2  # node 1 dropped, node 2 truncated
    assert pool_spans(pool) == {2: [(20.0, 40.0)], 3: [(30.0, 50.0)]}


def test_trim_before_respects_min_usable_length():
    pool = SlotPool.from_slots([make_slot(1, 0.0, 21.0)], min_usable_length=5.0)
    pool.trim_before(20.0)
    assert len(pool) == 0  # 1-unit tail below the usable threshold


def test_trim_before_noop_when_everything_is_future():
    pool = SlotPool.from_slots([make_slot(1, 10.0, 20.0)])
    assert pool.trim_before(5.0) == 0
    assert pool_spans(pool) == {1: [(10.0, 20.0)]}
