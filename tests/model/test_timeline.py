"""Unit tests for per-node busy/free timelines."""

import pytest

from repro.model import InvalidIntervalError, ModelError, Timeline
from tests.conftest import make_node


@pytest.fixture
def timeline():
    return Timeline(make_node(0), 0.0, 100.0)


class TestConstruction:
    def test_rejects_empty_interval(self):
        with pytest.raises(InvalidIntervalError):
            Timeline(make_node(0), 10.0, 10.0)


class TestAddBusy:
    def test_single_interval(self, timeline):
        timeline.add_busy(10.0, 20.0)
        assert timeline.busy_intervals == [(10.0, 20.0)]

    def test_rejects_empty_busy_interval(self, timeline):
        with pytest.raises(InvalidIntervalError):
            timeline.add_busy(10.0, 10.0)

    def test_rejects_busy_outside_interval(self, timeline):
        with pytest.raises(ModelError):
            timeline.add_busy(90.0, 110.0)
        with pytest.raises(ModelError):
            timeline.add_busy(-5.0, 5.0)

    def test_rejects_overlap_by_default(self, timeline):
        timeline.add_busy(10.0, 20.0)
        with pytest.raises(ModelError):
            timeline.add_busy(15.0, 25.0)

    def test_allow_overlap_merges(self, timeline):
        timeline.add_busy(10.0, 20.0)
        timeline.add_busy(15.0, 25.0, allow_overlap=True)
        assert timeline.busy_intervals == [(10.0, 25.0)]

    def test_adjacent_intervals_merge(self, timeline):
        timeline.add_busy(10.0, 20.0)
        timeline.add_busy(20.0, 30.0)
        assert timeline.busy_intervals == [(10.0, 30.0)]

    def test_intervals_stay_sorted(self, timeline):
        timeline.add_busy(50.0, 60.0)
        timeline.add_busy(10.0, 20.0)
        timeline.add_busy(30.0, 40.0)
        assert timeline.busy_intervals == [(10.0, 20.0), (30.0, 40.0), (50.0, 60.0)]


class TestQueries:
    def test_busy_time_and_utilization(self, timeline):
        timeline.add_busy(0.0, 25.0)
        timeline.add_busy(50.0, 75.0)
        assert timeline.busy_time() == pytest.approx(50.0)
        assert timeline.utilization() == pytest.approx(0.5)

    def test_empty_timeline_one_big_gap(self, timeline):
        assert timeline.free_intervals() == [(0.0, 100.0)]

    def test_free_intervals_between_busy(self, timeline):
        timeline.add_busy(10.0, 20.0)
        timeline.add_busy(40.0, 50.0)
        assert timeline.free_intervals() == [(0.0, 10.0), (20.0, 40.0), (50.0, 100.0)]

    def test_free_intervals_respect_min_length(self, timeline):
        timeline.add_busy(5.0, 20.0)
        gaps = timeline.free_intervals(min_length=10.0)
        assert gaps == [(20.0, 100.0)]

    def test_busy_at_edges_leaves_inner_gap(self, timeline):
        timeline.add_busy(0.0, 30.0)
        timeline.add_busy(70.0, 100.0)
        assert timeline.free_intervals() == [(30.0, 70.0)]

    def test_fully_busy_has_no_gaps(self, timeline):
        timeline.add_busy(0.0, 100.0)
        assert timeline.free_intervals() == []
        assert timeline.utilization() == pytest.approx(1.0)

    def test_free_slots_carry_the_node(self, timeline):
        timeline.add_busy(10.0, 20.0)
        slots = timeline.free_slots()
        assert len(slots) == 2
        assert all(slot.node == timeline.node for slot in slots)

    def test_is_free(self, timeline):
        timeline.add_busy(10.0, 20.0)
        assert timeline.is_free(0.0, 10.0)
        assert timeline.is_free(20.0, 100.0)
        assert not timeline.is_free(5.0, 15.0)
        assert not timeline.is_free(15.0, 18.0)

    def test_is_free_outside_interval(self, timeline):
        assert not timeline.is_free(-10.0, 5.0)
        assert not timeline.is_free(95.0, 105.0)

    def test_is_free_of_empty_span(self, timeline):
        timeline.add_busy(10.0, 20.0)
        assert timeline.is_free(15.0, 15.0)

    def test_free_plus_busy_partitions_interval(self, timeline):
        timeline.add_busy(10.0, 20.0)
        timeline.add_busy(40.0, 70.0)
        total_free = sum(end - start for start, end in timeline.free_intervals())
        assert total_free + timeline.busy_time() == pytest.approx(100.0)

    def test_commit_after_generation_round_trip(self, timeline):
        # Marking one of the free gaps busy shrinks it consistently.
        timeline.add_busy(10.0, 20.0)
        timeline.add_busy(25.0, 35.0)
        assert timeline.free_intervals()[1] == (20.0, 25.0)
