"""Unit tests for the ordered slot pool and window cutting."""

import pytest

from repro.model import (
    AllocationError,
    ResourceRequest,
    SlotPool,
    Window,
    WindowSlot,
)
from tests.conftest import make_slot


def window_for(slot, reservation=20.0, start=None):
    request = ResourceRequest(node_count=1, reservation_time=reservation)
    ws = WindowSlot.for_request(slot, request)
    return Window(start=slot.start if start is None else start, slots=(ws,))


class TestOrdering:
    def test_iteration_is_start_ordered(self):
        slots = [
            make_slot(0, 30.0, 40.0),
            make_slot(1, 0.0, 10.0),
            make_slot(2, 15.0, 25.0),
        ]
        pool = SlotPool.from_slots(slots)
        starts = [slot.start for slot in pool]
        assert starts == sorted(starts)

    def test_add_keeps_order(self):
        pool = SlotPool.from_slots([make_slot(0, 10.0, 20.0)])
        pool.add(make_slot(1, 0.0, 5.0))
        assert [slot.start for slot in pool] == [0.0, 10.0]

    def test_len_and_contains(self):
        slot = make_slot(0, 0.0, 10.0)
        pool = SlotPool.from_slots([slot])
        assert len(pool) == 1
        assert slot in pool
        assert make_slot(1, 0.0, 10.0) not in pool

    def test_add_drops_sub_threshold_slots(self):
        pool = SlotPool(min_usable_length=5.0)
        pool.add(make_slot(0, 0.0, 3.0))
        assert len(pool) == 0


class TestRemove:
    def test_remove_existing(self):
        slot = make_slot(0, 0.0, 10.0)
        pool = SlotPool.from_slots([slot])
        pool.remove(slot)
        assert len(pool) == 0

    def test_remove_missing_raises(self):
        pool = SlotPool.from_slots([make_slot(0, 0.0, 10.0)])
        with pytest.raises(AllocationError):
            pool.remove(make_slot(1, 0.0, 10.0))

    def test_remove_distinguishes_equal_keys(self):
        # Two different nodes, same sort key except node id.
        a = make_slot(0, 0.0, 10.0)
        b = make_slot(1, 0.0, 10.0)
        pool = SlotPool.from_slots([a, b])
        pool.remove(b)
        assert a in pool
        assert b not in pool


class TestCutWindow:
    def test_split_mode_reinserts_remainders(self):
        slot = make_slot(0, 0.0, 100.0, performance=4.0)  # task(20) -> 5 units
        pool = SlotPool.from_slots([slot])
        pool.cut_window(window_for(slot), mode="split")
        remaining = pool.ordered()
        assert len(remaining) == 1
        assert (remaining[0].start, remaining[0].end) == (5.0, 100.0)

    def test_split_mode_mid_slot_produces_two_remainders(self):
        slot = make_slot(0, 0.0, 100.0, performance=4.0)
        pool = SlotPool.from_slots([slot])
        pool.cut_window(window_for(slot, start=40.0), mode="split")
        spans = [(s.start, s.end) for s in pool.ordered()]
        assert spans == [(0.0, 40.0), (45.0, 100.0)]

    def test_consume_mode_drops_whole_slot(self):
        slot = make_slot(0, 0.0, 100.0)
        pool = SlotPool.from_slots([slot])
        pool.cut_window(window_for(slot), mode="consume")
        assert len(pool) == 0

    def test_unknown_mode_rejected(self):
        slot = make_slot(0, 0.0, 100.0)
        pool = SlotPool.from_slots([slot])
        with pytest.raises(ValueError):
            pool.cut_window(window_for(slot), mode="shred")

    def test_cut_missing_slot_raises(self):
        slot = make_slot(0, 0.0, 100.0)
        pool = SlotPool.from_slots([make_slot(1, 0.0, 100.0)])
        with pytest.raises(AllocationError):
            pool.cut_window(window_for(slot))

    def test_cut_window_not_fitting_raises(self):
        slot = make_slot(0, 0.0, 10.0, performance=4.0)  # task needs 5 units
        pool = SlotPool.from_slots([slot])
        bad = window_for(slot, start=7.0)  # [7, 12) overflows the slot
        with pytest.raises(AllocationError):
            pool.cut_window(bad)

    def test_split_respects_min_usable_length(self):
        slot = make_slot(0, 0.0, 7.0, performance=4.0)  # task 5 units from 0
        pool = SlotPool.from_slots([slot], min_usable_length=5.0)
        pool.cut_window(window_for(slot), mode="split")
        # The [5, 7) remainder is below the 5-unit threshold and is dropped.
        assert len(pool) == 0

    def test_total_free_time_accounting_split(self):
        slot = make_slot(0, 0.0, 100.0, performance=4.0)
        pool = SlotPool.from_slots([slot])
        before = pool.total_free_time()
        pool.cut_window(window_for(slot), mode="split")
        assert pool.total_free_time() == pytest.approx(before - 5.0)


class TestCopyAndInvariants:
    def test_copy_is_independent(self):
        slot = make_slot(0, 0.0, 100.0)
        pool = SlotPool.from_slots([slot])
        twin = pool.copy()
        twin.remove(slot)
        assert len(pool) == 1
        assert len(twin) == 0

    def test_by_node_groups(self):
        slots = [make_slot(0, 0.0, 10.0), make_slot(0, 20.0, 30.0), make_slot(1, 0.0, 5.0)]
        pool = SlotPool.from_slots(slots)
        groups = pool.by_node()
        assert sorted(groups) == [0, 1]
        assert len(groups[0]) == 2

    def test_node_count(self):
        slots = [make_slot(0, 0.0, 10.0), make_slot(0, 20.0, 30.0), make_slot(1, 0.0, 5.0)]
        assert SlotPool.from_slots(slots).node_count() == 2

    def test_assert_disjoint_per_node_passes(self):
        pool = SlotPool.from_slots(
            [make_slot(0, 0.0, 10.0), make_slot(0, 10.0, 30.0)]
        )
        pool.assert_disjoint_per_node()

    def test_assert_disjoint_per_node_detects_overlap(self):
        pool = SlotPool.from_slots(
            [make_slot(0, 0.0, 10.0), make_slot(0, 5.0, 30.0)]
        )
        with pytest.raises(AllocationError):
            pool.assert_disjoint_per_node()


class TestMinUsableLength:
    def test_from_slots_filters_by_threshold(self):
        slots = [make_slot(0, 0.0, 3.0), make_slot(1, 0.0, 30.0)]
        pool = SlotPool.from_slots(slots, min_usable_length=5.0)
        assert len(pool) == 1
        assert pool.ordered()[0].node.node_id == 1

    def test_copy_preserves_threshold(self):
        pool = SlotPool(min_usable_length=5.0)
        twin = pool.copy()
        twin.add(make_slot(0, 0.0, 3.0))
        assert len(twin) == 0


class TestEpsilonRules:
    """Single-epsilon discipline on the time axis.

    An earlier revision admitted slots up to one ``TIME_EPSILON``
    *shorter* than ``min_usable_length`` (the threshold had the epsilon
    subtracted twice along the add path); these are the regression
    guards for the strict rule.
    """

    def test_add_drops_slot_just_below_threshold(self):
        from repro.model.slot import TIME_EPSILON

        pool = SlotPool(min_usable_length=10.0)
        # One tenth of an epsilon short: the lax pre-fix rule admitted
        # this (it only required length >= threshold - TIME_EPSILON).
        pool.add(make_slot(0, 0.0, 10.0 - TIME_EPSILON / 10.0))
        assert len(pool) == 0

    def test_add_admits_slot_at_exact_threshold(self):
        pool = SlotPool(min_usable_length=10.0)
        pool.add(make_slot(0, 0.0, 10.0))
        assert len(pool) == 1

    def test_coalesce_gap_is_single_epsilon(self):
        from repro.model.slot import TIME_EPSILON

        pool = SlotPool.from_slots([make_slot(0, 0.0, 10.0)])
        pool.add(make_slot(0, 10.0 + TIME_EPSILON / 2.0, 20.0))
        assert len(pool) == 1  # within one epsilon: merged

        pool = SlotPool.from_slots([make_slot(0, 0.0, 10.0)])
        pool.add(make_slot(0, 10.0 + 2.0 * TIME_EPSILON, 20.0))
        assert len(pool) == 2  # beyond one epsilon: kept apart
