"""The columnar snapshot: roundtrips, cache discipline, mutation storms.

The pool's numpy snapshot (:meth:`SlotPool.as_arrays`) is the substrate
of both the vectorized scan kernel and the shared-memory fan-out, so two
things must hold under arbitrary interleavings of every mutating
operation: the columns always describe exactly the object state
(``_slots`` and the per-node index), and a snapshot that crossed a
shared-memory block decodes value-equal to its source.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MinCost
from repro.core.aep import aep_scan
from repro.core.extractors import MinTotalCostExtractor
from repro.core.reference import reference_scan
from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.model import ResourceRequest, Slot, SlotPool
from repro.model.slotarrays import SharedSlotArrays, SlotArrays
from tests.conftest import make_node, make_slot


def generated_pool(node_count: int = 25, seed: int = 9) -> SlotPool:
    environment = EnvironmentGenerator(
        EnvironmentConfig(node_count=node_count, seed=seed)
    ).generate()
    return environment.slot_pool()


def span_list(pool: SlotPool):
    return [(s.node.node_id, s.start, s.end) for s in pool.ordered()]


def assert_columns_match_objects(pool: SlotPool) -> None:
    """The snapshot's columns are exactly the pool's object state."""
    arrays = pool.as_arrays()
    ordered = pool.ordered()
    assert arrays.slot_count == len(ordered)
    assert arrays.start.tolist() == [s.start for s in ordered]
    assert arrays.end.tolist() == [s.end for s in ordered]
    node_ids = arrays.node_id[arrays.node_row].tolist()
    assert node_ids == [s.node.node_id for s in ordered]
    rows = {int(arrays.node_id[i]): i for i in range(arrays.node_count)}
    for slot in ordered:
        row = rows[slot.node.node_id]
        assert arrays.performance[row] == slot.node.performance
        assert arrays.price[row] == slot.node.price_per_unit


#: Every column of a snapshot, in a fixed order for byte comparison.
COLUMNS = ("start", "end", "node_row", "node_id", "performance", "price",
           "clock", "ram", "disk", "power")


def assert_bytes_equal_rebuild(pool: SlotPool) -> None:
    """The delta-maintained snapshot is byte-equal to a cold rebuild."""
    maintained = pool.as_arrays()
    rebuilt = SlotArrays.from_slots(pool.ordered())
    for column in COLUMNS:
        left, right = getattr(maintained, column), getattr(rebuilt, column)
        assert left.dtype == right.dtype, column
        assert left.tobytes() == right.tobytes(), column
    assert maintained.os_names == rebuilt.os_names


def assert_index_consistent(pool: SlotPool) -> None:
    """``_by_node`` holds the same entries as ``_slots``, per node."""
    flattened = sorted(
        entry for bucket in pool._by_node.values() for entry in bucket
    )
    assert flattened == sorted(pool._slots)
    for node_id, bucket in pool._by_node.items():
        assert bucket  # empty buckets are deleted eagerly
        assert bucket == sorted(bucket)
        assert all(slot.node.node_id == node_id for _, slot in bucket)


class TestSharedMemoryRoundtrip:
    def test_decoded_columns_value_equal(self):
        arrays = generated_pool().as_arrays()
        with arrays.to_shared() as shared:
            reader = SharedSlotArrays.attach(shared.name)
            try:
                decoded = reader.arrays()
            finally:
                reader.close()
        for column in ("start", "end", "node_row", "node_id", "performance",
                       "price", "clock", "ram", "disk", "power"):
            left, right = getattr(arrays, column), getattr(decoded, column)
            assert left.dtype == right.dtype
            assert np.array_equal(left, right)
        assert decoded.os_names == arrays.os_names

    def test_decoded_arrays_outlive_the_block(self):
        pool = generated_pool()
        arrays = pool.as_arrays()
        shared = arrays.to_shared()
        reader = SharedSlotArrays.attach(shared.name)
        decoded = reader.arrays()
        reader.close()
        shared.close()
        shared.unlink()
        # The block is gone; the copied-out columns must still be intact.
        assert np.array_equal(decoded.start, arrays.start)
        rebuilt = [
            (s.node.node_id, s.start, s.end) for s in decoded.slot_objects()
        ]
        assert rebuilt == span_list(pool)

    def test_from_arrays_rebuild_is_faithful(self):
        pool = generated_pool()
        arrays = pool.as_arrays()
        with arrays.to_shared() as shared:
            reader = SharedSlotArrays.attach(shared.name)
            try:
                decoded = reader.arrays()
            finally:
                reader.close()
            rebuilt = SlotPool.from_arrays(
                decoded, min_usable_length=pool.min_usable_length
            )
        assert span_list(rebuilt) == span_list(pool)
        assert rebuilt.min_usable_length == pool.min_usable_length
        # The decoded snapshot doubles as the rebuilt pool's columnar
        # cache — no re-columnarization on the reader side.
        assert rebuilt.as_arrays() is decoded
        assert_index_consistent(rebuilt)
        # A rebuilt pool searches identically to its source.
        request = ResourceRequest(
            node_count=3, reservation_time=40.0, budget=600.0
        )
        original = MinCost().select(request, pool)
        mirrored = MinCost().select(request, rebuilt)
        assert (original is None) == (mirrored is None)
        if original is not None:
            assert original.start == mirrored.start
            assert sorted(original.nodes()) == sorted(mirrored.nodes())


class TestMutationStorm:
    """Interleaved add / commit_window / release / trim_before keep the
    columnar snapshot, ``_slots`` and the per-node index in lockstep."""

    REQUEST = ResourceRequest(node_count=2, reservation_time=30.0, budget=500.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_storm_preserves_agreement(self, seed):
        rng = np.random.default_rng(seed)
        pool = generated_pool(node_count=12, seed=int(rng.integers(1, 1000)))
        committed = []
        clock = 0.0
        fresh_node = 10_000
        search = MinCost()
        for _ in range(30):
            op = rng.integers(0, 4)
            if op == 0:
                # Add a slot on a brand-new node: never collides with a
                # committed span, so later releases stay legal.
                fresh_node += 1
                start = float(rng.uniform(clock, clock + 200.0))
                node = make_node(
                    fresh_node,
                    performance=float(rng.integers(1, 8)),
                    price=float(rng.uniform(0.5, 5.0)),
                )
                pool.add(Slot(node, start, start + float(rng.uniform(5.0, 80.0))))
            elif op == 1:
                window = search.select(self.REQUEST, pool)
                if window is not None:
                    pool.commit_window(window)
                    committed.append(window)
            elif op == 2 and committed:
                pool.release(committed.pop(int(rng.integers(len(committed)))))
            else:
                clock += float(rng.uniform(0.0, 15.0))
                pool.trim_before(clock)
                committed = [w for w in committed if w.start >= clock]
            pool.assert_disjoint_per_node()
            assert_index_consistent(pool)
            assert_columns_match_objects(pool)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_storm_delta_maintenance_byte_equal_to_rebuild(self, seed):
        """The tentpole invariant: after every mutation — including
        rolling-horizon extensions — the incrementally maintained
        snapshot is *byte*-equal to a cold per-slot rebuild."""
        from repro.environment.rolling import HorizonConfig, RollingHorizonSource

        rng = np.random.default_rng(seed)
        env_seed = int(rng.integers(1, 1000))
        # The pool is fed exclusively by the rolling source, exactly as
        # in soak serving (the source owns the node-id space).
        pool = SlotPool()
        source = RollingHorizonSource(
            EnvironmentConfig(node_count=10, seed=env_seed),
            HorizonConfig(lead=120.0, stride=60.0),
        )
        source.extend_to(pool, 600.0)
        committed = []
        clock = 0.0
        horizon = 600.0
        search = MinCost()
        for _ in range(25):
            op = rng.integers(0, 5)
            if op == 0:
                window = search.select(self.REQUEST, pool)
                if window is not None:
                    pool.commit_window(window)
                    committed.append(window)
            elif op == 1 and committed:
                pool.release(committed.pop(int(rng.integers(len(committed)))))
            elif op == 2:
                clock += float(rng.uniform(0.0, 40.0))
                pool.trim_before(clock)
                committed = [w for w in committed if w.start >= clock]
            else:
                # The soak loop's step: publish future segments.
                horizon += float(rng.uniform(0.0, 150.0))
                source.extend_to(pool, horizon)
            assert_bytes_equal_rebuild(pool)

    def test_compaction_boundary_byte_equal(self):
        """Crossing the tombstone-compaction threshold renumbers storage
        rows; the maintained permutation must follow exactly."""
        pool = SlotPool(min_usable_length=1e-9)
        pool._store.compact_min = 8  # reach the boundary quickly
        slots = [
            Slot(make_node(i % 5), float(i), float(i) + 10.0) for i in range(40)
        ]
        for slot in slots:
            pool.add(slot, coalesce=False)
        # Tombstone more than half the storage, one discard at a time,
        # checking equivalence on both sides of the compaction trigger.
        for slot in slots[:30]:
            pool.remove(slot)
            assert_bytes_equal_rebuild(pool)
        # And keep mutating after compaction.
        for i in range(40, 55):
            pool.add(Slot(make_node(i % 5), float(i), float(i) + 5.0),
                     coalesce=False)
            assert_bytes_equal_rebuild(pool)

    def test_full_trim_compacts_node_table_and_bucket_index(self):
        """A node whose slots are all trimmed must vanish from the
        snapshot's node table and the per-node bucket index — a
        long-running rolling-horizon pool would otherwise accumulate one
        table row per node ever seen."""
        short = make_node(1)
        long = make_node(2)
        pool = SlotPool.from_slots([Slot(short, 0.0, 50.0), Slot(long, 0.0, 500.0)])
        assert pool.as_arrays().node_count == 2
        pool.trim_before(100.0)
        arrays = pool.as_arrays()
        assert arrays.node_count == 1
        assert arrays.node_id.tolist() == [2]
        assert list(pool._by_node.keys()) == [2]
        assert_bytes_equal_rebuild(pool)
        # Re-adding the node later must reintroduce it cleanly.
        pool.add(Slot(short, 200.0, 260.0))
        arrays = pool.as_arrays()
        assert arrays.node_id.tolist() == [1, 2]
        assert_bytes_equal_rebuild(pool)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_storm_scan_equivalence(self, seed):
        """After a storm, the vector scan over the mutated pool still
        matches the frozen reference kernel over the same slots."""
        rng = np.random.default_rng(seed)
        pool = generated_pool(node_count=15, seed=int(rng.integers(1, 1000)))
        search = MinCost()
        for _ in range(6):
            window = search.select(self.REQUEST, pool)
            if window is None:
                break
            pool.commit_window(window)
        pool.trim_before(float(rng.uniform(0.0, 30.0)))
        incremental = aep_scan(self.REQUEST, pool, MinTotalCostExtractor())
        reference = reference_scan(
            self.REQUEST, pool.ordered(), MinTotalCostExtractor()
        )
        assert (incremental is None) == (reference is None)
        if incremental is not None:
            assert incremental.window.start == reference.window.start
            assert incremental.value == reference.value
            assert incremental.steps == reference.steps
            assert incremental.slots_scanned == reference.slots_scanned
