"""Unit tests for co-allocation windows and their invariants."""

import pytest

from repro.model import (
    ResourceRequest,
    Window,
    WindowSlot,
    WindowValidationError,
)
from tests.conftest import make_slot


def leg(node_id, start, end, performance=4.0, price=2.0, reservation=20.0):
    slot = make_slot(node_id, start, end, performance, price)
    request = ResourceRequest(node_count=1, reservation_time=reservation)
    return WindowSlot.for_request(slot, request)


@pytest.fixture
def simple_window():
    # Two legs from t=0: 5 units @ cost 10 (perf 4), 10 units @ cost 10 (perf 2).
    legs = (
        leg(0, 0.0, 50.0, performance=4.0, price=2.0),
        leg(1, 0.0, 50.0, performance=2.0, price=1.0),
    )
    return Window(start=0.0, slots=legs)


class TestWindowSlot:
    def test_for_request_computes_duration_and_cost(self):
        ws = leg(0, 0.0, 50.0, performance=4.0, price=2.0, reservation=20.0)
        assert ws.required_time == pytest.approx(5.0)
        assert ws.cost == pytest.approx(10.0)

    def test_fits_from(self):
        ws = leg(0, 0.0, 50.0, performance=4.0)  # needs 5 units
        assert ws.fits_from(0.0)
        assert ws.fits_from(45.0)
        assert not ws.fits_from(45.1)

    def test_energy_positive(self):
        assert leg(0, 0.0, 50.0).energy() > 0


class TestAggregates:
    def test_size(self, simple_window):
        assert simple_window.size == 2

    def test_runtime_is_longest_leg(self, simple_window):
        assert simple_window.runtime == pytest.approx(10.0)

    def test_finish(self, simple_window):
        assert simple_window.finish == pytest.approx(10.0)

    def test_finish_offsets_start(self):
        legs = (leg(0, 5.0, 50.0), leg(1, 5.0, 50.0))
        window = Window(start=5.0, slots=legs)
        assert window.finish == pytest.approx(10.0)

    def test_processor_time_is_sum(self, simple_window):
        assert simple_window.processor_time == pytest.approx(15.0)

    def test_total_cost(self, simple_window):
        assert simple_window.total_cost == pytest.approx(20.0)

    def test_total_energy_is_sum_of_leg_energies(self, simple_window):
        assert simple_window.total_energy == pytest.approx(
            sum(ws.energy() for ws in simple_window.slots)
        )

    def test_nodes(self, simple_window):
        assert simple_window.nodes() == [0, 1]

    def test_empty_window_rejected(self):
        with pytest.raises(WindowValidationError):
            Window(start=0.0, slots=())


class TestValidation:
    def test_valid_window_passes(self, simple_window):
        simple_window.validate()
        assert simple_window.is_valid()

    def test_detects_duplicate_nodes(self):
        legs = (leg(0, 0.0, 50.0), leg(0, 0.0, 50.0))
        with pytest.raises(WindowValidationError, match="reuses nodes"):
            Window(start=0.0, slots=legs).validate()

    def test_detects_window_start_before_slot_start(self):
        window = Window(start=0.0, slots=(leg(0, 10.0, 50.0),))
        with pytest.raises(WindowValidationError):
            window.validate()

    def test_detects_leg_overflowing_slot(self):
        # Task needs 5 units but only 3 remain from the window start.
        window = Window(start=47.0, slots=(leg(0, 0.0, 50.0),))
        with pytest.raises(WindowValidationError):
            window.validate()

    def test_request_size_mismatch(self, simple_window):
        request = ResourceRequest(node_count=3, reservation_time=20.0)
        with pytest.raises(WindowValidationError, match="slots"):
            simple_window.validate(request)

    def test_request_budget_violation(self, simple_window):
        request = ResourceRequest(node_count=2, reservation_time=20.0, budget=19.0)
        with pytest.raises(WindowValidationError, match="budget"):
            simple_window.validate(request)

    def test_request_budget_exact_is_ok(self, simple_window):
        request = ResourceRequest(node_count=2, reservation_time=20.0, budget=20.0)
        simple_window.validate(request)

    def test_request_duration_mismatch(self, simple_window):
        request = ResourceRequest(node_count=2, reservation_time=40.0, budget=100.0)
        with pytest.raises(WindowValidationError, match="required_time"):
            simple_window.validate(request)

    def test_request_hardware_mismatch(self, simple_window):
        request = ResourceRequest(
            node_count=2, reservation_time=20.0, budget=100.0, min_performance=3.0
        )
        with pytest.raises(WindowValidationError, match="hardware"):
            simple_window.validate(request)

    def test_deadline_violation(self, simple_window):
        request = ResourceRequest(
            node_count=2, reservation_time=20.0, budget=100.0, deadline=9.0
        )
        with pytest.raises(WindowValidationError, match="deadline"):
            simple_window.validate(request)

    def test_deadline_met(self, simple_window):
        request = ResourceRequest(
            node_count=2, reservation_time=20.0, budget=100.0, deadline=10.0
        )
        simple_window.validate(request)

    def test_is_valid_false_on_violation(self, simple_window):
        request = ResourceRequest(node_count=2, reservation_time=20.0, budget=1.0)
        assert not simple_window.is_valid(request)


class TestConflicts:
    def test_same_node_overlapping_time_conflicts(self):
        a = Window(start=0.0, slots=(leg(0, 0.0, 50.0),))  # occupies [0, 5)
        b = Window(start=3.0, slots=(leg(0, 0.0, 50.0),))  # occupies [3, 8)
        assert a.conflicts_with(b)
        assert b.conflicts_with(a)

    def test_same_node_disjoint_time_ok(self):
        a = Window(start=0.0, slots=(leg(0, 0.0, 50.0),))  # [0, 5)
        b = Window(start=5.0, slots=(leg(0, 0.0, 50.0),))  # [5, 10)
        assert not a.conflicts_with(b)

    def test_different_nodes_never_conflict(self):
        a = Window(start=0.0, slots=(leg(0, 0.0, 50.0),))
        b = Window(start=0.0, slots=(leg(1, 0.0, 50.0),))
        assert not a.conflicts_with(b)

    def test_partial_overlap_on_one_common_node(self):
        a = Window(start=0.0, slots=(leg(0, 0.0, 50.0), leg(1, 0.0, 50.0)))
        b = Window(start=2.0, slots=(leg(1, 0.0, 50.0), leg(2, 0.0, 50.0)))
        assert a.conflicts_with(b)
