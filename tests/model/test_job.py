"""Unit tests for resource requests, jobs and batches."""

import pytest

from repro.model import InvalidRequestError, Job, JobBatch, ResourceRequest
from tests.conftest import make_node


class TestResourceRequestValidation:
    def test_minimal_valid_request(self):
        request = ResourceRequest(node_count=1, reservation_time=10.0)
        assert request.node_count == 1

    @pytest.mark.parametrize("count", [0, -1])
    def test_rejects_bad_node_count(self, count):
        with pytest.raises(InvalidRequestError):
            ResourceRequest(node_count=count, reservation_time=10.0)

    @pytest.mark.parametrize("time", [0.0, -5.0])
    def test_rejects_bad_reservation_time(self, time):
        with pytest.raises(InvalidRequestError):
            ResourceRequest(node_count=1, reservation_time=time)

    def test_rejects_negative_budget(self):
        with pytest.raises(InvalidRequestError):
            ResourceRequest(node_count=1, reservation_time=10.0, budget=-1.0)

    def test_rejects_negative_price_cap(self):
        with pytest.raises(InvalidRequestError):
            ResourceRequest(node_count=1, reservation_time=10.0, max_price_per_unit=-1.0)

    def test_rejects_nonpositive_reference_performance(self):
        with pytest.raises(InvalidRequestError):
            ResourceRequest(node_count=1, reservation_time=10.0, reference_performance=0.0)

    def test_rejects_negative_deadline(self):
        with pytest.raises(InvalidRequestError):
            ResourceRequest(node_count=1, reservation_time=10.0, deadline=-1.0)

    def test_rejects_negative_min_performance(self):
        with pytest.raises(InvalidRequestError):
            ResourceRequest(node_count=1, reservation_time=10.0, min_performance=-1.0)


class TestEffectiveBudget:
    def test_explicit_budget_wins(self):
        request = ResourceRequest(
            node_count=5, reservation_time=150.0, budget=1500.0, max_price_per_unit=10.0
        )
        assert request.effective_budget == 1500.0

    def test_derived_from_price_cap(self):
        # The paper's formula S = F * t_s * n.
        request = ResourceRequest(
            node_count=5, reservation_time=150.0, max_price_per_unit=2.0
        )
        assert request.effective_budget == pytest.approx(1500.0)

    def test_unlimited_when_neither_given(self):
        request = ResourceRequest(node_count=2, reservation_time=10.0)
        assert request.effective_budget == float("inf")


class TestRequestMatching:
    def test_task_runtime_on(self):
        request = ResourceRequest(node_count=1, reservation_time=150.0)
        assert request.task_runtime_on(make_node(0, performance=5.0)) == pytest.approx(30.0)

    def test_node_matches_applies_price_cap(self):
        request = ResourceRequest(
            node_count=1, reservation_time=10.0, max_price_per_unit=2.0
        )
        assert request.node_matches(make_node(0, price=2.0))
        assert not request.node_matches(make_node(0, price=2.5))

    def test_node_matches_applies_hardware(self):
        request = ResourceRequest(
            node_count=1,
            reservation_time=10.0,
            min_performance=5.0,
            min_ram=8192,
            required_os="linux",
        )
        good = make_node(0, performance=6.0, ram=16384, os="linux")
        assert request.node_matches(good)
        assert not request.node_matches(make_node(1, performance=4.0, ram=16384))
        assert not request.node_matches(make_node(2, performance=6.0, ram=4096))
        assert not request.node_matches(
            make_node(3, performance=6.0, ram=16384, os="windows")
        )


class TestJob:
    def test_job_requires_id(self):
        with pytest.raises(InvalidRequestError):
            Job(job_id="", request=ResourceRequest(node_count=1, reservation_time=1.0))

    def test_default_priority_and_owner(self):
        job = Job("j", ResourceRequest(node_count=1, reservation_time=1.0))
        assert job.priority == 0
        assert job.owner == "anonymous"


class TestJobBatch:
    @staticmethod
    def _job(job_id: str, priority: int) -> Job:
        return Job(job_id, ResourceRequest(node_count=1, reservation_time=1.0), priority)

    def test_iterates_by_descending_priority(self):
        batch = JobBatch()
        batch.add(self._job("low", 1))
        batch.add(self._job("high", 9))
        batch.add(self._job("mid", 5))
        assert [job.job_id for job in batch] == ["high", "mid", "low"]

    def test_stable_order_for_equal_priorities(self):
        batch = JobBatch()
        batch.add(self._job("first", 3))
        batch.add(self._job("second", 3))
        assert [job.job_id for job in batch] == ["first", "second"]

    def test_rejects_duplicate_ids(self):
        batch = JobBatch()
        batch.add(self._job("same", 1))
        with pytest.raises(InvalidRequestError):
            batch.add(self._job("same", 2))

    def test_len(self):
        batch = JobBatch()
        assert len(batch) == 0
        batch.add(self._job("a", 0))
        assert len(batch) == 1
