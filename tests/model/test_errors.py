"""Unit tests for the exception hierarchy contract."""

import pytest

from repro.model import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in (
            "ModelError",
            "InvalidIntervalError",
            "InvalidRequestError",
            "WindowValidationError",
            "AllocationError",
            "SchedulingError",
            "ConfigurationError",
        ):
            exception_type = getattr(errors, name)
            assert issubclass(exception_type, errors.ReproError), name

    def test_model_errors_group(self):
        for name in (
            "InvalidIntervalError",
            "InvalidRequestError",
            "WindowValidationError",
        ):
            assert issubclass(getattr(errors, name), errors.ModelError), name

    def test_catching_the_base_class_catches_domain_failures(self):
        from repro.model import ResourceRequest

        with pytest.raises(errors.ReproError):
            ResourceRequest(node_count=0, reservation_time=1.0)

    def test_interval_error_message(self):
        error = errors.InvalidIntervalError(5.0, 3.0)
        assert "5.0" in str(error)
        assert "3.0" in str(error)
        assert error.start == 5.0
        assert error.end == 3.0

    def test_repro_error_is_an_exception(self):
        assert issubclass(errors.ReproError, Exception)
        # But not a blanket BaseException catch-all.
        assert not issubclass(KeyboardInterrupt, errors.ReproError)
