"""Unit tests for nodes, specs and the hardware/software matcher."""

import math

import pytest

from repro.model import CpuNode, ModelError, NodeSpec, matches_spec
from tests.conftest import make_node


class TestNodeSpec:
    def test_defaults(self):
        spec = NodeSpec()
        assert spec.clock_speed == 1.0
        assert spec.ram == 4096
        assert spec.disk == 100
        assert spec.os == "linux"

    def test_rejects_nonpositive_clock(self):
        with pytest.raises(ModelError):
            NodeSpec(clock_speed=0.0)

    def test_rejects_negative_ram(self):
        with pytest.raises(ModelError):
            NodeSpec(ram=-1)

    def test_rejects_negative_disk(self):
        with pytest.raises(ModelError):
            NodeSpec(disk=-5)


class TestCpuNode:
    def test_rejects_nonpositive_performance(self):
        with pytest.raises(ModelError):
            CpuNode(node_id=0, performance=0.0, price_per_unit=1.0)

    def test_rejects_negative_price(self):
        with pytest.raises(ModelError):
            CpuNode(node_id=0, performance=1.0, price_per_unit=-0.1)

    def test_task_runtime_scales_inversely_with_performance(self):
        slow = make_node(0, performance=2.0)
        fast = make_node(1, performance=10.0)
        assert slow.task_runtime(150.0) == pytest.approx(75.0)
        assert fast.task_runtime(150.0) == pytest.approx(15.0)

    def test_task_runtime_reference_performance(self):
        node = make_node(0, performance=4.0)
        assert node.task_runtime(100.0, reference_performance=2.0) == pytest.approx(50.0)

    def test_task_runtime_zero_reservation(self):
        assert make_node(0).task_runtime(0.0) == 0.0

    def test_task_runtime_rejects_negative_reservation(self):
        with pytest.raises(ModelError):
            make_node(0).task_runtime(-1.0)

    def test_task_runtime_rejects_nonpositive_reference(self):
        with pytest.raises(ModelError):
            make_node(0).task_runtime(10.0, reference_performance=0.0)

    def test_usage_cost(self):
        node = make_node(0, price=3.0)
        assert node.usage_cost(10.0) == pytest.approx(30.0)

    def test_usage_cost_rejects_negative_duration(self):
        with pytest.raises(ModelError):
            make_node(0).usage_cost(-1.0)

    def test_power_grows_with_performance(self):
        slow = make_node(0, performance=2.0)
        fast = make_node(1, performance=10.0)
        assert fast.power() > slow.power()

    def test_energy_is_power_times_runtime(self):
        node = make_node(0, performance=4.0)
        expected = node.power() * node.task_runtime(20.0)
        assert node.energy_cost(20.0) == pytest.approx(expected)

    def test_energy_u_shaped_in_performance(self):
        # Very slow and very fast nodes both burn more energy than a
        # mid-range node for the same task.
        energies = {
            p: make_node(0, performance=p).energy_cost(150.0) for p in (1.0, 5.0, 20.0)
        }
        assert energies[5.0] < energies[1.0]
        assert energies[5.0] < energies[20.0]

    def test_nodes_are_hashable_value_objects(self):
        a = make_node(0, performance=4.0, price=2.0)
        b = make_node(0, performance=4.0, price=2.0)
        assert a == b
        assert hash(a) == hash(b)


class TestMatchesSpec:
    def test_default_requirements_match_everything(self):
        assert matches_spec(make_node(0))

    def test_min_performance(self):
        node = make_node(0, performance=4.0)
        assert matches_spec(node, min_performance=4.0)
        assert not matches_spec(node, min_performance=4.5)

    def test_min_clock_speed(self):
        node = make_node(0, clock_speed=2.0)
        assert matches_spec(node, min_clock_speed=2.0)
        assert not matches_spec(node, min_clock_speed=2.5)

    def test_min_ram(self):
        node = make_node(0, ram=2048)
        assert matches_spec(node, min_ram=2048)
        assert not matches_spec(node, min_ram=4096)

    def test_min_disk(self):
        node = make_node(0, disk=50)
        assert matches_spec(node, min_disk=50)
        assert not matches_spec(node, min_disk=51)

    def test_required_os(self):
        node = make_node(0, os="linux")
        assert matches_spec(node, required_os="linux")
        assert not matches_spec(node, required_os="windows")
        assert matches_spec(node, required_os=None)

    def test_max_price_per_unit(self):
        node = make_node(0, price=2.0)
        assert matches_spec(node, max_price_per_unit=2.0)
        assert not matches_spec(node, max_price_per_unit=1.99)
        assert matches_spec(node, max_price_per_unit=None)

    def test_combined_requirements(self):
        node = make_node(0, performance=6.0, price=3.0, ram=8192, os="linux")
        assert matches_spec(
            node, min_performance=5.0, min_ram=8192, required_os="linux",
            max_price_per_unit=3.5,
        )
        assert not matches_spec(
            node, min_performance=5.0, min_ram=8192, required_os="linux",
            max_price_per_unit=2.5,
        )

    def test_power_is_finite(self):
        assert math.isfinite(make_node(0, performance=10.0).power())
