"""Property-based tests (hypothesis) for the core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import ResourceRequest, Slot, SlotPool, Timeline, Window, WindowSlot
from tests.conftest import make_node

times = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False)


@st.composite
def intervals(draw, min_length=0.5, horizon=1000.0):
    start = draw(st.floats(min_value=0.0, max_value=horizon - min_length))
    length = draw(st.floats(min_value=min_length, max_value=horizon - start))
    return (start, start + length)


@st.composite
def disjoint_busy_lists(draw, horizon=100.0, max_chunks=5):
    """Sorted, strictly disjoint busy intervals inside [0, horizon]."""
    count = draw(st.integers(min_value=0, max_value=max_chunks))
    points = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=horizon),
            min_size=2 * count,
            max_size=2 * count,
            unique=True,
        )
    )
    points.sort()
    chunks = []
    for i in range(count):
        start, end = points[2 * i], points[2 * i + 1]
        if end - start > 1e-6:
            chunks.append((start, end))
    return chunks


class TestSlotProperties:
    @given(interval=intervals(min_length=1.0), cut=st.data())
    @settings(max_examples=200)
    def test_split_conserves_time_and_stays_inside(self, interval, cut):
        start, end = interval
        slot = Slot(make_node(0), start, end)
        cut_start = cut.draw(st.floats(min_value=start, max_value=end - 0.5))
        cut_end = cut.draw(st.floats(min_value=cut_start, max_value=end))
        remainders = slot.split(cut_start, cut_end, min_length=1e-9)
        removed = cut_end - cut_start
        total = sum(r.length for r in remainders)
        assert total <= slot.length - removed + 1e-6
        for r in remainders:
            assert r.start >= start - 1e-9
            assert r.end <= end + 1e-9
            assert not (cut_start + 1e-9 < r.end and r.start < cut_end - 1e-9)

    @given(a=intervals(), b=intervals())
    @settings(max_examples=200)
    def test_overlap_is_symmetric(self, a, b):
        slot_a = Slot(make_node(0), *a)
        slot_b = Slot(make_node(1), *b)
        assert slot_a.overlaps(slot_b) == slot_b.overlaps(slot_a)

    @given(interval=intervals(), probe=times)
    @settings(max_examples=200)
    def test_remaining_from_never_exceeds_length(self, interval, probe):
        slot = Slot(make_node(0), *interval)
        assert slot.remaining_from(probe) <= slot.length + 1e-9


class TestTimelineProperties:
    @given(busy=disjoint_busy_lists())
    @settings(max_examples=200)
    def test_busy_plus_free_partitions_interval(self, busy):
        timeline = Timeline(make_node(0), 0.0, 100.0)
        for start, end in busy:
            timeline.add_busy(start, end)
        free = sum(end - start for start, end in timeline.free_intervals(1e-9))
        assert free + timeline.busy_time() <= 100.0 + 1e-6
        # The partition is exact up to gaps below the min-length threshold.
        assert free + timeline.busy_time() >= 100.0 - 1e-4 - 1e-9 * len(busy)

    @given(busy=disjoint_busy_lists())
    @settings(max_examples=200)
    def test_free_intervals_are_disjoint_and_sorted(self, busy):
        timeline = Timeline(make_node(0), 0.0, 100.0)
        for start, end in busy:
            timeline.add_busy(start, end)
        gaps = timeline.free_intervals(1e-9)
        for (s1, e1), (s2, e2) in zip(gaps, gaps[1:]):
            assert e1 <= s2 + 1e-9

    @given(busy=disjoint_busy_lists())
    @settings(max_examples=200)
    def test_free_intervals_really_free(self, busy):
        timeline = Timeline(make_node(0), 0.0, 100.0)
        for start, end in busy:
            timeline.add_busy(start, end)
        for start, end in timeline.free_intervals(1e-6):
            assert timeline.is_free(start + 1e-9, end - 1e-9)


class TestSlotPoolProperties:
    @given(data=st.data())
    @settings(max_examples=100)
    def test_cut_window_preserves_per_node_disjointness(self, data):
        node_count = data.draw(st.integers(min_value=2, max_value=5))
        slots = []
        for node_id in range(node_count):
            start, end = data.draw(intervals(min_length=10.0, horizon=200.0))
            slots.append(Slot(make_node(node_id, performance=2.0), start, end))
        pool = SlotPool.from_slots(slots)
        request = ResourceRequest(node_count=1, reservation_time=4.0)  # 2 units
        target = data.draw(st.sampled_from(slots))
        ws = WindowSlot.for_request(target, request)
        window = Window(start=target.start, slots=(ws,))
        pool.cut_window(window, mode="split")
        pool.assert_disjoint_per_node()
        # The reserved span is gone from the pool.
        for slot in pool:
            if slot.node.node_id == target.node.node_id:
                assert not (
                    slot.start < window.start + ws.required_time - 1e-9
                    and window.start < slot.end - 1e-9
                )

    @given(data=st.data())
    @settings(max_examples=100)
    def test_iteration_order_always_nondecreasing(self, data):
        count = data.draw(st.integers(min_value=0, max_value=20))
        pool = SlotPool()
        for node_id in range(count):
            start, end = data.draw(intervals(min_length=0.5))
            pool.add(Slot(make_node(node_id), start, end))
        starts = [slot.start for slot in pool]
        assert starts == sorted(starts)
