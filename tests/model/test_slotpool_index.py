"""The per-node index must stay consistent with the flat slot list
through every mutation path (add, coalesce, remove, cut, commit,
release, trim), and the indexed queries must match their old
whole-pool-scan semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model import ResourceRequest, Slot, SlotPool
from repro.model.window import Window, WindowSlot
from tests.conftest import make_node, make_slot


def assert_index_consistent(pool: SlotPool) -> None:
    """The invariant every mutation must preserve."""
    flat = pool.ordered()
    grouped: dict[int, list[Slot]] = {}
    for slot in flat:
        grouped.setdefault(slot.node.node_id, []).append(slot)
    indexed = pool.by_node()
    assert indexed == grouped
    assert pool.node_count() == len(grouped)
    assert sum(len(bucket) for bucket in indexed.values()) == len(pool)
    for slot in flat:
        assert slot in pool


def window_for(pool: SlotPool, request: ResourceRequest, start: float, node_ids):
    groups = pool.by_node()
    legs = []
    for node_id in node_ids:
        slot = groups[node_id][0]
        legs.append(WindowSlot.for_request(slot, request))
    return Window(start=start, slots=tuple(legs))


class TestIndexConsistency:
    def test_add_remove(self):
        pool = SlotPool()
        slots = [make_slot(i % 3, 10.0 * i, 10.0 * i + 8.0) for i in range(9)]
        for slot in slots:
            pool.add(slot, coalesce=False)
            assert_index_consistent(pool)
        for slot in pool.ordered():
            pool.remove(slot)
            assert_index_consistent(pool)
        assert pool.node_count() == 0 and len(pool) == 0

    def test_coalesce_merges_within_node_only(self):
        pool = SlotPool()
        node_a = make_node(1)
        node_b = make_node(2)
        pool.add(Slot(node_a, 0.0, 10.0))
        pool.add(Slot(node_b, 10.0, 20.0))
        pool.add(Slot(node_a, 10.0, 20.0))  # touches node_a's slot, not node_b's
        assert_index_consistent(pool)
        assert pool.by_node()[1] == [Slot(node_a, 0.0, 20.0)]
        assert pool.by_node()[2] == [Slot(node_b, 10.0, 20.0)]

    def test_cut_commit_release_cycle(self):
        request = ResourceRequest(node_count=2, reservation_time=20.0, budget=1000.0)
        pool = SlotPool.from_slots(
            [make_slot(0, 0.0, 100.0), make_slot(1, 0.0, 100.0), make_slot(2, 0.0, 100.0)]
        )
        window = window_for(pool, request, 10.0, [0, 1])
        pool.cut_window(window, mode="split")
        assert_index_consistent(pool)
        pool.release(window)
        assert_index_consistent(pool)
        # committed by span containment after an unrelated earlier commit
        other = window_for(pool, request, 40.0, [2])
        pool.commit_window(other, mode="split")
        assert_index_consistent(pool)

    def test_release_overlap_detected_via_index(self):
        request = ResourceRequest(node_count=1, reservation_time=20.0, budget=1000.0)
        pool = SlotPool.from_slots([make_slot(0, 0.0, 100.0)])
        window = window_for(pool, request, 10.0, [0])
        from repro.model.errors import AllocationError

        with pytest.raises(AllocationError, match="double release"):
            pool.release(window)
        assert_index_consistent(pool)

    def test_trim_before_prefix_only(self):
        pool = SlotPool.from_slots(
            [make_slot(i, float(5 * i), float(5 * i) + 30.0) for i in range(10)]
        )
        changed = pool.trim_before(22.0)
        assert changed > 0
        assert_index_consistent(pool)
        assert all(slot.start >= 22.0 - 1e-9 for slot in pool)
        # idempotent second trim
        assert pool.trim_before(22.0) == 0
        assert_index_consistent(pool)

    def test_trim_drops_fully_past_slots(self):
        pool = SlotPool.from_slots(
            [make_slot(0, 0.0, 10.0), make_slot(1, 0.0, 50.0), make_slot(2, 30.0, 60.0)]
        )
        pool.trim_before(20.0)
        assert_index_consistent(pool)
        assert pool.node_count() == 2  # node 0's only slot is gone
        assert 1 in pool.by_node() and 2 in pool.by_node()

    def test_copy_is_independent(self):
        pool = SlotPool.from_slots([make_slot(0, 0.0, 50.0), make_slot(1, 0.0, 50.0)])
        twin = pool.copy()
        twin.remove(twin.ordered()[0])
        assert_index_consistent(pool)
        assert_index_consistent(twin)
        assert len(pool) == 2 and len(twin) == 1
        assert pool.node_count() == 2 and twin.node_count() == 1

    def test_randomized_mutation_storm(self):
        rng = np.random.default_rng(404)
        pool = SlotPool()
        nodes = [make_node(i) for i in range(6)]
        clock = 0.0
        for _ in range(200):
            action = rng.integers(0, 4)
            if action == 0 or len(pool) == 0:
                node = nodes[int(rng.integers(0, len(nodes)))]
                start = clock + float(rng.uniform(0.0, 40.0))
                pool.add(Slot(node, start, start + float(rng.uniform(2.0, 30.0))))
            elif action == 1:
                slots = pool.ordered()
                pool.remove(slots[int(rng.integers(0, len(slots)))])
            elif action == 2:
                clock += float(rng.uniform(0.0, 5.0))
                pool.trim_before(clock)
            else:
                slots = pool.ordered()
                victim = slots[int(rng.integers(0, len(slots)))]
                if victim.start >= clock and victim.length > 4.0:
                    request = ResourceRequest(
                        node_count=1, reservation_time=1.0, budget=1e9
                    )
                    leg = WindowSlot.for_request(victim, request)
                    if leg.fits_from(victim.start):
                        pool.cut_window(
                            Window(start=victim.start, slots=(leg,)), mode="split"
                        )
            assert_index_consistent(pool)

    def test_contains_checks_exact_slot(self):
        pool = SlotPool.from_slots([make_slot(0, 0.0, 50.0)])
        assert make_slot(0, 0.0, 50.0) in pool
        assert make_slot(0, 0.0, 49.0) not in pool
        assert make_slot(1, 0.0, 50.0) not in pool
