"""Release / commit edge cases around ``trim_before``.

The broker's resilience layer releases committed windows *after* the
virtual clock has advanced (replan and abandon recoveries), so the pool
routinely sees releases whose neighbouring free slots were already
trimmed or truncated.  These tests pin the interplay down against the
per-node bucket index (:meth:`SlotPool.by_node`): a release re-inserts
the exact reserved span even when the clock has moved past part of it,
coalesces with truncated survivors, recreates buckets that trimming
emptied, and stays atomic when rejected as a double release.
"""

from __future__ import annotations

import pytest

from repro.model import Slot, SlotPool, Window, WindowSlot
from repro.model.errors import AllocationError

from tests.conftest import make_node, make_slot


def spans_by_node(pool: SlotPool) -> dict[int, list[tuple[float, float]]]:
    return {
        node_id: [(slot.start, slot.end) for slot in slots]
        for node_id, slots in pool.by_node().items()
    }


def window_on(slots: list[Slot], start: float, required_time: float) -> Window:
    legs = tuple(
        WindowSlot(slot=slot, required_time=required_time, cost=1.0)
        for slot in slots
    )
    return Window(start=start, slots=legs)


def test_release_coalesces_with_partially_trimmed_neighbour():
    """A release merges with the truncated leading fragment, not the original."""
    slot = make_slot(1, 0.0, 100.0)
    pool = SlotPool.from_slots([slot])
    window = window_on([slot], start=20.0, required_time=20.0)
    pool.commit_window(window)
    assert spans_by_node(pool) == {1: [(0.0, 20.0), (40.0, 100.0)]}

    assert pool.trim_before(10.0) == 1
    assert spans_by_node(pool) == {1: [(10.0, 20.0), (40.0, 100.0)]}

    pool.release(window)
    assert spans_by_node(pool) == {1: [(10.0, 100.0)]}
    pool.assert_disjoint_per_node()


def test_release_after_trim_past_fragment_leaves_gap():
    """Trimming past the leading fragment must not swallow the released span."""
    slot = make_slot(1, 0.0, 100.0)
    pool = SlotPool.from_slots([slot])
    window = window_on([slot], start=20.0, required_time=20.0)
    pool.commit_window(window)

    # [0, 20) ends before the cutoff and vanishes; [40, 100) becomes [45, 100).
    assert pool.trim_before(45.0) == 2
    assert spans_by_node(pool) == {1: [(45.0, 100.0)]}

    pool.release(window)
    assert spans_by_node(pool) == {1: [(20.0, 40.0), (45.0, 100.0)]}
    pool.assert_disjoint_per_node()


def test_release_onto_fully_trimmed_node_recreates_bucket():
    """Trimming deletes emptied node buckets; a late release restores one."""
    slot = make_slot(1, 0.0, 30.0)
    pool = SlotPool.from_slots([slot])
    window = window_on([slot], start=10.0, required_time=20.0)
    pool.commit_window(window)

    pool.trim_before(50.0)
    assert spans_by_node(pool) == {}
    assert len(pool) == 0

    pool.release(window)
    assert spans_by_node(pool) == {1: [(10.0, 30.0)]}
    assert len(pool) == 1
    pool.assert_disjoint_per_node()


def test_double_release_after_trim_rejected_and_pool_unchanged():
    slot = make_slot(1, 0.0, 100.0)
    pool = SlotPool.from_slots([slot])
    window = window_on([slot], start=20.0, required_time=20.0)
    pool.commit_window(window)
    pool.trim_before(10.0)
    pool.release(window)

    before = spans_by_node(pool)
    with pytest.raises(AllocationError, match="double release"):
        pool.release(window)
    assert spans_by_node(pool) == before


def test_rejected_multi_leg_release_touches_no_bucket():
    """The overlap pre-check runs for every leg before any span is added."""
    slot_a = make_slot(1, 0.0, 100.0)
    slot_b = make_slot(2, 0.0, 100.0)
    pool = SlotPool.from_slots([slot_a, slot_b])
    window = window_on([slot_a, slot_b], start=20.0, required_time=20.0)
    pool.commit_window(window)
    pool.release(window)

    # Re-open only node 1's span: its leg would now release cleanly, but
    # node 2's leg overlaps free time, so the whole release must fail
    # without re-inserting node 1's span.
    pool.commit_window(window_on([slot_a], start=20.0, required_time=20.0))
    before = spans_by_node(pool)
    assert before[1] == [(0.0, 20.0), (40.0, 100.0)]

    with pytest.raises(AllocationError, match="node 2"):
        pool.release(window)
    assert spans_by_node(pool) == before
    pool.assert_disjoint_per_node()


def test_trim_drops_subthreshold_truncated_tail():
    node = make_node(1)
    pool = SlotPool(min_usable_length=5.0)
    pool.add(Slot(node, 0.0, 30.0))

    assert pool.trim_before(27.0) == 1
    assert spans_by_node(pool) == {}


def test_commit_window_raises_when_trim_ate_the_span():
    """After the clock passes a span's start, no host slot contains it."""
    slot = make_slot(1, 0.0, 100.0)
    pool = SlotPool.from_slots([slot])
    pool.trim_before(25.0)

    window = window_on([slot], start=20.0, required_time=20.0)
    with pytest.raises(AllocationError, match="reserved span"):
        pool.commit_window(window)
    # The failed commit must not have removed the trimmed slot.
    assert spans_by_node(pool) == {1: [(25.0, 100.0)]}
