"""Unit tests for the generic AEP scan."""

import pytest

from repro.core import aep_scan, request_of
from repro.core.extractors import EarliestStartExtractor, MinTotalCostExtractor
from repro.model import Job, ResourceRequest, SlotPool
from tests.conftest import make_slot


def pool_of(*slots):
    return SlotPool.from_slots(slots)


class TestRequestOf:
    def test_accepts_job(self):
        request = ResourceRequest(node_count=1, reservation_time=1.0)
        assert request_of(Job("j", request)) is request

    def test_accepts_bare_request(self):
        request = ResourceRequest(node_count=1, reservation_time=1.0)
        assert request_of(request) is request


class TestScanBasics:
    def test_finds_simple_window(self):
        pool = pool_of(
            make_slot(0, 0.0, 50.0), make_slot(1, 0.0, 50.0)
        )
        request = ResourceRequest(node_count=2, reservation_time=20.0, budget=100.0)
        result = aep_scan(request, pool, EarliestStartExtractor())
        assert result is not None
        assert result.window.start == pytest.approx(0.0)
        assert result.window.size == 2

    def test_returns_none_when_insufficient_slots(self):
        pool = pool_of(make_slot(0, 0.0, 50.0))
        request = ResourceRequest(node_count=2, reservation_time=20.0)
        assert aep_scan(request, pool, EarliestStartExtractor()) is None

    def test_rejects_unsorted_input(self):
        slots = [make_slot(0, 10.0, 50.0), make_slot(1, 0.0, 50.0)]
        request = ResourceRequest(node_count=1, reservation_time=5.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            aep_scan(request, slots, EarliestStartExtractor())

    def test_accepts_plain_sorted_list(self):
        slots = [make_slot(0, 0.0, 50.0), make_slot(1, 5.0, 50.0)]
        request = ResourceRequest(node_count=2, reservation_time=20.0)
        result = aep_scan(request, slots, EarliestStartExtractor())
        assert result is not None
        assert result.window.start == pytest.approx(5.0)

    def test_steps_counted(self):
        pool = pool_of(
            make_slot(0, 0.0, 50.0), make_slot(1, 0.0, 50.0), make_slot(2, 0.0, 50.0)
        )
        request = ResourceRequest(node_count=2, reservation_time=20.0)
        result = aep_scan(request, pool, MinTotalCostExtractor())
        assert result.steps == 2  # extraction attempted at slots 2 and 3


class TestWindowStartSemantics:
    def test_window_anchored_at_latest_member_start(self):
        # Second node only becomes available at t=30.
        pool = pool_of(make_slot(0, 0.0, 100.0), make_slot(1, 30.0, 100.0))
        request = ResourceRequest(node_count=2, reservation_time=20.0)
        result = aep_scan(request, pool, EarliestStartExtractor())
        assert result.window.start == pytest.approx(30.0)

    def test_dead_candidates_pruned(self):
        # Node 0's slot ends before node 1's begins; no synchronous pair.
        pool = pool_of(make_slot(0, 0.0, 10.0), make_slot(1, 20.0, 100.0))
        request = ResourceRequest(node_count=2, reservation_time=20.0)
        assert aep_scan(request, pool, EarliestStartExtractor()) is None

    def test_slot_too_short_for_its_task_is_skipped(self):
        # perf 4 -> task 5 units; a 3-unit slot can never host it.
        pool = pool_of(
            make_slot(0, 0.0, 3.0), make_slot(1, 0.0, 50.0), make_slot(2, 0.0, 50.0)
        )
        request = ResourceRequest(node_count=2, reservation_time=20.0)
        result = aep_scan(request, pool, EarliestStartExtractor())
        assert set(result.window.nodes()) == {1, 2}

    def test_candidate_usable_from_later_start(self):
        # Node 0's slot [0, 12) can host a 5-unit task from t=7 (ends 12).
        pool = pool_of(make_slot(0, 0.0, 12.0), make_slot(1, 7.0, 100.0))
        request = ResourceRequest(node_count=2, reservation_time=20.0)
        result = aep_scan(request, pool, EarliestStartExtractor())
        assert result.window.start == pytest.approx(7.0)

    def test_candidate_expired_by_later_start(self):
        # From t=8 node 0's slot retains only 4 units < 5 required.
        pool = pool_of(make_slot(0, 0.0, 12.0), make_slot(1, 8.0, 100.0))
        request = ResourceRequest(node_count=2, reservation_time=20.0)
        assert aep_scan(request, pool, EarliestStartExtractor()) is None


class TestFilters:
    def test_hardware_filter_applied(self):
        pool = pool_of(
            make_slot(0, 0.0, 50.0, performance=2.0),
            make_slot(1, 0.0, 50.0, performance=8.0),
            make_slot(2, 10.0, 50.0, performance=8.0),
        )
        request = ResourceRequest(
            node_count=2, reservation_time=20.0, min_performance=5.0
        )
        result = aep_scan(request, pool, EarliestStartExtractor())
        assert set(result.window.nodes()) == {1, 2}
        assert result.window.start == pytest.approx(10.0)

    def test_price_cap_filter_applied(self):
        pool = pool_of(
            make_slot(0, 0.0, 50.0, price=10.0),
            make_slot(1, 0.0, 50.0, price=1.0),
            make_slot(2, 5.0, 50.0, price=1.0),
        )
        request = ResourceRequest(
            node_count=2, reservation_time=20.0, max_price_per_unit=2.0
        )
        result = aep_scan(request, pool, EarliestStartExtractor())
        assert 0 not in result.window.nodes()

    def test_deadline_excludes_slow_legs(self):
        # perf 1 -> 20 units (misses deadline 12); perf 4 -> 5 units (ok).
        pool = pool_of(
            make_slot(0, 0.0, 50.0, performance=1.0),
            make_slot(1, 0.0, 50.0, performance=4.0),
            make_slot(2, 0.0, 50.0, performance=4.0),
        )
        request = ResourceRequest(
            node_count=2, reservation_time=20.0, deadline=12.0
        )
        result = aep_scan(request, pool, EarliestStartExtractor())
        assert 0 not in result.window.nodes()
        assert result.window.finish <= 12.0 + 1e-9

    def test_deadline_tightens_with_window_start(self):
        # Fast nodes available only from t=9; task 5 units -> finish 14 > 12.
        pool = pool_of(
            make_slot(1, 9.0, 50.0, performance=4.0),
            make_slot(2, 9.0, 50.0, performance=4.0),
        )
        request = ResourceRequest(node_count=2, reservation_time=20.0, deadline=12.0)
        assert aep_scan(request, pool, EarliestStartExtractor()) is None

    def test_budget_infeasible_everywhere(self):
        pool = pool_of(
            make_slot(0, 0.0, 50.0, price=10.0), make_slot(1, 0.0, 50.0, price=10.0)
        )
        request = ResourceRequest(node_count=2, reservation_time=20.0, budget=50.0)
        assert aep_scan(request, pool, EarliestStartExtractor()) is None


class TestStopAtFirst:
    def test_stop_at_first_returns_first_feasible(self):
        pool = pool_of(
            make_slot(0, 0.0, 50.0, price=1.0),
            make_slot(1, 0.0, 50.0, price=1.0),
            make_slot(2, 20.0, 90.0, price=0.01),
            make_slot(3, 20.0, 90.0, price=0.01),
        )
        request = ResourceRequest(node_count=2, reservation_time=20.0, budget=100.0)
        result = aep_scan(request, pool, EarliestStartExtractor(), stop_at_first=True)
        assert result.window.start == pytest.approx(0.0)

    def test_full_scan_keeps_best_value(self):
        pool = pool_of(
            make_slot(0, 0.0, 50.0, price=1.0),
            make_slot(1, 0.0, 50.0, price=1.0),
            make_slot(2, 20.0, 90.0, price=0.01),
            make_slot(3, 20.0, 90.0, price=0.01),
        )
        request = ResourceRequest(node_count=2, reservation_time=20.0, budget=100.0)
        result = aep_scan(request, pool, MinTotalCostExtractor())
        assert set(result.window.nodes()) == {2, 3}

    def test_ties_keep_earliest(self):
        pool = pool_of(
            make_slot(0, 0.0, 50.0, price=1.0),
            make_slot(1, 0.0, 50.0, price=1.0),
            make_slot(2, 20.0, 90.0, price=1.0),
            make_slot(3, 20.0, 90.0, price=1.0),
        )
        request = ResourceRequest(node_count=2, reservation_time=20.0, budget=100.0)
        result = aep_scan(request, pool, MinTotalCostExtractor())
        assert result.window.start == pytest.approx(0.0)


class TestScanCounters:
    def test_slots_scanned_counts_every_slot(self):
        pool = pool_of(
            make_slot(0, 0.0, 50.0),
            make_slot(1, 5.0, 50.0),
            make_slot(2, 10.0, 50.0),
        )
        request = ResourceRequest(node_count=2, reservation_time=20.0)
        result = aep_scan(request, pool, MinTotalCostExtractor())
        assert result.slots_scanned == 3

    def test_candidate_peak_bounded_by_nodes(self):
        pool = pool_of(*[make_slot(i, 0.0, 50.0) for i in range(6)])
        request = ResourceRequest(node_count=2, reservation_time=20.0)
        result = aep_scan(request, pool, MinTotalCostExtractor())
        assert result.candidate_peak == 6

    def test_peak_reflects_pruning(self):
        # Slots that expire keep the alive set small.
        pool = pool_of(
            make_slot(0, 0.0, 6.0),
            make_slot(1, 7.0, 13.0),
            make_slot(2, 14.0, 20.0),
            make_slot(3, 14.0, 20.0),
        )
        request = ResourceRequest(node_count=2, reservation_time=20.0)  # 5 units
        result = aep_scan(request, pool, MinTotalCostExtractor())
        assert result is not None
        assert result.candidate_peak == 2

    def test_stop_at_first_reports_partial_scan(self):
        pool = pool_of(*[make_slot(i, float(i), 50.0) for i in range(6)])
        request = ResourceRequest(node_count=2, reservation_time=20.0)
        result = aep_scan(
            request, pool, EarliestStartExtractor(), stop_at_first=True
        )
        assert result.slots_scanned == 2  # stopped as soon as feasible
