"""Unit tests for the incremental extended-window kernel, plus the
complexity-counter regression: amortized per-slot work must stay bounded
as the pool grows (each candidate enters and leaves the structure at most
once, so ``inserts + expiries <= 2 * slots_scanned`` at every size)."""

from __future__ import annotations

import pytest

from repro.core.aep import aep_scan
from repro.core.candidates import IncrementalCandidateSet, LegFactory
from repro.core.extractors import MinRuntimeSubstitutionExtractor, MinTotalCostExtractor
from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.model import ResourceRequest, Slot
from tests.conftest import make_node, make_slot


def leg_of(slot, request):
    return LegFactory(request).leg(slot)


@pytest.fixture
def request3():
    return ResourceRequest(node_count=3, reservation_time=20.0, budget=1000.0)


class TestLegFactory:
    def test_caches_per_node(self, request3):
        factory = LegFactory(request3)
        node = make_node(1, performance=4.0, price=2.0)
        first = factory.leg(Slot(node, 0.0, 50.0))
        second = factory.leg(Slot(node, 60.0, 90.0))
        # task(20) on perf 4 runs 5 units and costs 10 at price 2
        assert first.required_time == second.required_time == 5.0
        assert first.cost == second.cost == 10.0
        assert first.slot.start == 0.0 and second.slot.start == 60.0

    def test_matches_window_slot_for_request(self, request3):
        from repro.model.window import WindowSlot

        factory = LegFactory(request3)
        slot = make_slot(2, 10.0, 80.0, performance=5.0, price=4.0)
        direct = WindowSlot.for_request(slot, request3)
        cached = factory.leg(slot)
        assert cached.required_time == direct.required_time
        assert cached.cost == direct.cost


class TestIncrementalCandidateSet:
    def test_insert_orders_by_cost_then_time_then_arrival(self, request3):
        candidates = IncrementalCandidateSet(2)
        legs = [
            leg_of(make_slot(0, 0.0, 100.0, performance=2.0, price=3.0), request3),
            leg_of(make_slot(1, 0.0, 100.0, performance=4.0, price=1.0), request3),
            leg_of(make_slot(2, 0.0, 100.0, performance=4.0, price=1.0), request3),
        ]
        for leg in legs:
            candidates.insert(leg)
        ordered = candidates.ordered()
        # node 1 and node 2 tie on (cost, time); arrival order breaks the tie
        assert [ws.slot.node.node_id for ws in ordered] == [1, 2, 0]
        by_time = candidates.ordered_by_time()
        assert [ws.required_time for ws in by_time] == sorted(
            ws.required_time for ws in legs
        )
        assert [ws.slot.node.node_id for ws in candidates.scan_ordered()] == [0, 1, 2]

    def test_cheap_sum_tracks_n_cheapest(self, request3):
        candidates = IncrementalCandidateSet(2)
        prices = [5.0, 1.0, 3.0, 0.5]
        for node_id, price in enumerate(prices):
            candidates.insert(
                leg_of(
                    make_slot(node_id, 0.0, 100.0, performance=4.0, price=price),
                    request3,
                )
            )
            costs = sorted(ws.cost for ws in candidates.ordered())
            expected = sum(costs[:2])
            assert candidates.cheapest_sum == pytest.approx(expected, abs=1e-9)

    def test_prune_expires_by_slot_end(self, request3):
        candidates = IncrementalCandidateSet(1)
        short = leg_of(make_slot(0, 0.0, 22.0, performance=4.0), request3)  # runs 5
        long = leg_of(make_slot(1, 0.0, 100.0, performance=4.0), request3)
        candidates.insert(short)
        candidates.insert(long)
        assert len(candidates) == 2
        # short fits while window_start <= 17; prune at 18 drops it
        assert candidates.prune(17.0) == 0
        assert candidates.prune(18.0) == 1
        assert [ws.slot.node.node_id for ws in candidates.ordered()] == [1]
        assert candidates.inserted == 2 and candidates.expired == 1

    def test_deadline_expires_earlier_than_slot_end(self):
        request = ResourceRequest(
            node_count=1, reservation_time=20.0, budget=100.0, deadline=30.0
        )
        candidates = IncrementalCandidateSet(1, deadline=30.0)
        leg = leg_of(make_slot(0, 0.0, 100.0, performance=4.0), request)  # runs 5
        candidates.insert(leg)
        # eligible while window_start + 5 <= 30
        assert candidates.prune(25.0) == 0
        assert candidates.prune(26.0) == 1

    def test_feasible_cheapest_budget_boundary(self, request3):
        candidates = IncrementalCandidateSet(2)
        for node_id in range(3):
            candidates.insert(
                leg_of(make_slot(node_id, 0.0, 100.0, performance=4.0), request3)
            )  # each costs 10
        assert candidates.feasible_cheapest(2, 19.0) is None
        found = candidates.feasible_cheapest(2, 20.0)
        assert found is not None
        chosen, total = found
        assert total == 20.0 and len(chosen) == 2
        assert candidates.feasible_cheapest(4, float("inf")) is None  # too few

    def test_eligible_filters_by_deadline(self):
        request = ResourceRequest(node_count=2, reservation_time=20.0, budget=1000.0)
        candidates = IncrementalCandidateSet(2, deadline=50.0)
        fast = leg_of(make_slot(0, 0.0, 100.0, performance=10.0), request)  # runs 2
        slow = leg_of(make_slot(1, 0.0, 100.0, performance=1.0, price=0.1), request)  # runs 20
        candidates.insert(fast)
        candidates.insert(slow)
        # At window start 40, slow (20 units) misses the 50 deadline.
        eligible = candidates.eligible(2, 40.0)
        assert [ws.slot.node.node_id for ws in eligible] == [0]
        # Explicit deadline overrides the constructed one.
        assert len(candidates.eligible(2, 40.0, deadline=80.0)) == 2


class TestComplexityCounters:
    """The amortized-O(1) bookkeeping bound, asserted as pool size grows."""

    NODE_COUNTS = (50, 100, 200)

    def _scan(self, node_count, extractor):
        environment = EnvironmentGenerator(
            EnvironmentConfig(node_count=node_count, seed=2013)
        ).generate()
        slots = environment.slot_pool().ordered()
        request = ResourceRequest(node_count=5, reservation_time=150.0, budget=1500.0)
        result = aep_scan(request, slots, extractor)
        assert result is not None
        return result, node_count

    @pytest.mark.parametrize("nodes", NODE_COUNTS)
    def test_per_slot_work_bounded(self, nodes):
        result, node_count = self._scan(nodes, MinRuntimeSubstitutionExtractor())
        assert result.candidate_inserts <= result.slots_scanned
        assert result.candidate_expiries <= result.candidate_inserts
        # Each slot contributes at most one insert and one expiry over the
        # whole scan — the linearity invariant, independent of pool size.
        mutations = result.candidate_inserts + result.candidate_expiries
        assert mutations <= 2 * result.slots_scanned
        assert result.candidate_peak <= node_count

    def test_mutation_ratio_does_not_grow(self):
        """Amortized mutations per scanned slot stay <= 2 at every size —
        the regression guard against reintroducing per-step rebuilds."""
        ratios = []
        for nodes in self.NODE_COUNTS:
            result, _ = self._scan(nodes, MinTotalCostExtractor())
            ratios.append(
                (result.candidate_inserts + result.candidate_expiries)
                / result.slots_scanned
            )
        assert all(ratio <= 2.0 for ratio in ratios)

    def test_counters_default_zero(self):
        from repro.core.aep import ScanResult
        from repro.model.window import Window, WindowSlot

        request = ResourceRequest(node_count=1, reservation_time=20.0, budget=100.0)
        leg = WindowSlot.for_request(make_slot(0, 0.0, 100.0), request)
        result = ScanResult(
            window=Window(start=0.0, slots=(leg,)), value=0.0, steps=0
        )
        assert result.candidate_inserts == 0
        assert result.candidate_expiries == 0


class TestPruneIdentity:
    """Expiry must delete the expiring candidate's *own* sorted-list
    entries, never an equal-comparing neighbour's.

    Distinct candidates can carry byte-equal ``(cost, required_time)``
    pairs (identical node types), and IEEE comparison even equates
    distinct keys (``-0.0 == 0.0``); only the serial identifies the
    entry.  ``_delete_keyed`` verifies it before deleting and raises on
    a miss instead of silently removing another candidate.
    """

    def test_delete_keyed_skips_equal_comparing_neighbour(self):
        from repro.core.candidates import _delete_keyed

        entries = [(0.0, 5.0, 1), (-0.0, 5.0, 2)]  # keys compare equal
        index = _delete_keyed(entries, (-0.0, 5.0, 2))
        assert index == 1
        assert entries == [(0.0, 5.0, 1)]

    def test_delete_keyed_missing_serial_raises(self):
        from repro.core.candidates import _delete_keyed

        with pytest.raises(LookupError):
            _delete_keyed([(1.0, 2.0, 1)], (1.0, 2.0, 9))

    def test_duplicate_key_storm_expires_the_right_candidates(self):
        """Hypothesis storm: many candidates sharing exact (time, cost)
        keys but different expiries; pruning must keep exactly the legs
        the brute-force model keeps — verified by object identity."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.model.slot import TIME_EPSILON, Slot
        from repro.model.window import WindowSlot

        spec = st.lists(
            st.tuples(
                st.sampled_from([1.0, 2.0]),       # cost: collisions guaranteed
                st.sampled_from([3.0, 4.0]),       # required_time: ditto
                st.sampled_from([8.0, 10.0, 12.0, 14.0]),  # slot end: expiry spread
            ),
            min_size=4,
            max_size=20,
        )

        @settings(max_examples=60, deadline=None)
        @given(spec=spec, cuts=st.lists(st.floats(0.0, 12.0), min_size=1, max_size=5))
        def run(spec, cuts):
            candidates = IncrementalCandidateSet(n=2)
            model = []  # (serial, cost, time, expire, leg)
            for serial, (cost, time, end) in enumerate(spec, start=1):
                leg = WindowSlot(
                    slot=Slot(make_node(serial), 0.0, end),
                    required_time=time,
                    cost=cost,
                )
                candidates.insert(leg)
                model.append((serial, cost, time, end - time, leg))
            for window_start in sorted(cuts):
                expired = candidates.prune(window_start)
                survivors = [
                    entry
                    for entry in model
                    if entry[3] >= window_start - TIME_EPSILON
                ]
                assert expired == len(model) - len(survivors)
                model = survivors
                expected = sorted(model, key=lambda e: (e[1], e[2], e[0]))
                actual = candidates.ordered()
                assert len(actual) == len(expected)
                for got, want in zip(actual, expected):
                    assert got is want[4]  # identity, not mere equality

        run()
