"""Dispatch and equivalence tests of the vectorized scan kernel.

The byte-level equivalence net against the frozen pre-change kernel
lives in ``test_scan_equivalence.py`` (the vector path participates in
it transparently through ``aep_scan``).  These tests cover what that
suite cannot: the dispatch seams — counter telemetry, the environment
kill-switch, the object-kernel fallback for unsupported shapes — and a
direct vector-vs-object comparison that includes the structural
counters the reference kernel does not track.
"""

from __future__ import annotations

import pytest

from repro.core import aep as aep_module
from repro.core import vectorized
from repro.core.aep import aep_scan
from repro.core.extractors import (
    EarliestFinishExtractor,
    EarliestStartExtractor,
    MinRuntimeExactExtractor,
    MinRuntimeSubstitutionExtractor,
    MinTotalCostExtractor,
)
from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.model import ResourceRequest

REQUEST = ResourceRequest(node_count=4, reservation_time=60.0, budget=900.0)

EXTRACTORS = [
    EarliestStartExtractor,
    MinTotalCostExtractor,
    MinRuntimeSubstitutionExtractor,
    MinRuntimeExactExtractor,
    EarliestFinishExtractor,
]


def make_pool(node_count: int = 40, seed: int = 17):
    environment = EnvironmentGenerator(
        EnvironmentConfig(node_count=node_count, seed=seed)
    ).generate()
    return environment.slot_pool()


def counters():
    return dict(vectorized.scan_counters)


class TestDispatch:
    def test_value_epsilon_agrees_with_object_kernel(self):
        # The replay compares improvement margins against the object
        # kernel's constant; a drift between the two would silently
        # change which step wins ties.
        assert vectorized.VALUE_EPSILON == aep_module.VALUE_EPSILON

    def test_pool_scan_takes_vector_path(self):
        pool = make_pool()
        before = counters()
        result = aep_scan(REQUEST, pool, MinTotalCostExtractor())
        assert result is not None
        assert vectorized.scan_counters["vectorized"] == before["vectorized"] + 1
        assert vectorized.scan_counters["fallback"] == before["fallback"]

    def test_env_switch_forces_object_kernel(self, monkeypatch):
        monkeypatch.setenv(vectorized.KERNEL_ENV, "object")
        assert not vectorized.kernel_enabled()
        pool = make_pool()
        before = counters()
        result = aep_scan(REQUEST, pool, MinTotalCostExtractor())
        assert result is not None
        assert vectorized.scan_counters["vectorized"] == before["vectorized"]
        assert vectorized.scan_counters["fallback"] == before["fallback"] + 1

    def test_unsorted_input_still_raises_order_error(self):
        # The vector kernel refuses unsorted snapshots; the object kernel
        # must keep its contractual ValueError on out-of-order slots.
        slots = make_pool().ordered()
        slots[0], slots[-1] = slots[-1], slots[0]
        with pytest.raises(ValueError):
            aep_scan(REQUEST, slots, MinTotalCostExtractor())

    def test_subclassed_extractor_falls_back(self):
        class Derived(MinTotalCostExtractor):
            pass

        pool = make_pool()
        before = counters()
        result = aep_scan(REQUEST, pool, Derived())
        assert result is not None
        assert vectorized.scan_counters["fallback"] == before["fallback"] + 1


class TestVectorObjectEquivalence:
    """Full ``ScanResult`` equality — counters included — per extractor.

    Stronger than the reference-kernel net: the frozen kernel reports
    ``candidate_inserts``/``candidate_expiries`` as zero, so only the
    object kernel can confirm the vector replay reproduces them.
    """

    @pytest.mark.parametrize("make_extractor", EXTRACTORS)
    @pytest.mark.parametrize("stop_at_first", [False, True])
    @pytest.mark.parametrize("seed", [3, 29])
    def test_scanresult_identical(self, make_extractor, stop_at_first, seed, monkeypatch):
        pool = make_pool(seed=seed)
        vector = aep_scan(
            REQUEST, pool, make_extractor(), stop_at_first=stop_at_first
        )
        monkeypatch.setenv(vectorized.KERNEL_ENV, "object")
        obj = aep_scan(
            REQUEST, pool.ordered(), make_extractor(), stop_at_first=stop_at_first
        )
        assert (vector is None) == (obj is None)
        if vector is None:
            return
        assert vector.window.start == obj.window.start
        assert [
            (ws.slot.node.node_id, ws.slot.start, ws.slot.end, ws.required_time, ws.cost)
            for ws in vector.window.slots
        ] == [
            (ws.slot.node.node_id, ws.slot.start, ws.slot.end, ws.required_time, ws.cost)
            for ws in obj.window.slots
        ]
        assert vector.value == obj.value
        assert vector.steps == obj.steps
        assert vector.slots_scanned == obj.slots_scanned
        assert vector.candidate_peak == obj.candidate_peak
        assert vector.candidate_inserts == obj.candidate_inserts
        assert vector.candidate_expiries == obj.candidate_expiries
