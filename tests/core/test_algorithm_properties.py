"""Property-style tests: algorithms vs the exhaustive reference optimum.

On random small pools, every algorithm's window must validate against the
request, the optimal criterion algorithms must match :class:`Exhaustive`,
and heuristics must never beat the exact optimum.
"""

import numpy as np
import pytest

from repro.core import (
    AMP,
    CSA,
    Criterion,
    Exhaustive,
    MinCost,
    MinEnergy,
    MinFinish,
    MinProcTime,
    MinRunTime,
)
from repro.model import ResourceRequest
from tests.conftest import random_small_pool

TRIALS = 30


def random_request(rng):
    return ResourceRequest(
        node_count=int(rng.integers(2, 4)),
        reservation_time=float(rng.uniform(5.0, 25.0)),
        budget=float(rng.uniform(30.0, 200.0)),
    )


@pytest.fixture
def cases():
    rng = np.random.default_rng(777)
    built = []
    for _ in range(TRIALS):
        built.append((random_request(rng), random_small_pool(rng), rng))
    return built


def test_every_window_validates(cases):
    algorithms = [
        AMP(),
        AMP(policy="cheapest"),
        MinCost(),
        MinRunTime(),
        MinRunTime(exact=True),
        MinFinish(),
        MinFinish(exact=True),
        MinProcTime(simplified=False),
        MinEnergy(),
    ]
    for request, pool, rng in cases:
        for algorithm in algorithms:
            window = algorithm.select(request, pool)
            if window is not None:
                window.validate(request)


def test_feasibility_is_consistent_across_exact_algorithms(cases):
    # All algorithms with a cheapest-subset feasibility core agree on
    # whether any window exists.
    for request, pool, rng in cases:
        results = {
            "amp": AMP(policy="cheapest").select(request, pool),
            "cost": MinCost().select(request, pool),
            "runtime": MinRunTime(exact=True).select(request, pool),
            "exhaustive": Exhaustive(Criterion.COST).select(request, pool),
        }
        found = {name: window is not None for name, window in results.items()}
        assert len(set(found.values())) == 1, found


def test_mincost_matches_exhaustive(cases):
    for request, pool, rng in cases:
        ours = MinCost().select(request, pool)
        optimal = Exhaustive(Criterion.COST).select(request, pool)
        if optimal is None:
            assert ours is None
        else:
            assert ours.total_cost == pytest.approx(optimal.total_cost)


def test_minruntime_exact_matches_exhaustive(cases):
    for request, pool, rng in cases:
        ours = MinRunTime(exact=True).select(request, pool)
        optimal = Exhaustive(Criterion.RUNTIME).select(request, pool)
        if optimal is None:
            assert ours is None
        else:
            assert ours.runtime == pytest.approx(optimal.runtime)


def test_minfinish_exact_matches_exhaustive(cases):
    for request, pool, rng in cases:
        ours = MinFinish(exact=True).select(request, pool)
        optimal = Exhaustive(Criterion.FINISH_TIME).select(request, pool)
        if optimal is None:
            assert ours is None
        else:
            assert ours.finish == pytest.approx(optimal.finish)


def test_amp_cheapest_start_matches_exhaustive(cases):
    for request, pool, rng in cases:
        ours = AMP(policy="cheapest").select(request, pool)
        optimal = Exhaustive(Criterion.START_TIME).select(request, pool)
        if optimal is None:
            assert ours is None
        else:
            assert ours.start == pytest.approx(optimal.start)


def test_substitution_heuristic_never_beats_exact(cases):
    for request, pool, rng in cases:
        heuristic = MinRunTime(exact=False).select(request, pool)
        exact = MinRunTime(exact=True).select(request, pool)
        if heuristic is not None:
            assert exact is not None
            assert exact.runtime <= heuristic.runtime + 1e-9


def test_amp_first_never_earlier_than_cheapest(cases):
    for request, pool, rng in cases:
        first = AMP(policy="first").select(request, pool)
        cheapest = AMP(policy="cheapest").select(request, pool)
        if first is not None:
            assert cheapest is not None
            assert cheapest.start <= first.start + 1e-9


def test_csa_alternatives_disjoint_and_valid(cases):
    for request, pool, rng in cases:
        alternatives = CSA().find_alternatives(request, pool)
        for window in alternatives:
            window.validate(request)
        for i, a in enumerate(alternatives):
            for b in alternatives[i + 1 :]:
                assert not a.conflicts_with(b)


def test_csa_best_start_no_earlier_than_amp(cases):
    # CSA's first alternative IS the AMP window, so its best start time
    # equals AMP's.
    for request, pool, rng in cases:
        amp_window = AMP().select(request, pool)
        alternatives = CSA().find_alternatives(request, pool)
        if amp_window is None:
            assert alternatives == []
        else:
            assert min(w.start for w in alternatives) == pytest.approx(
                amp_window.start
            )


def test_minproctime_opt_never_beaten_by_simplified(cases):
    for request, pool, rng in cases:
        optimizing = MinProcTime(simplified=False).select(request, pool)
        simplified = MinProcTime(
            simplified=True, rng=np.random.default_rng(1)
        ).select(request, pool)
        if simplified is not None:
            assert optimizing is not None
            assert optimizing.processor_time <= simplified.processor_time + 1e-9
