"""Fixed-start replacement search (the repair policy's kernel).

All scenarios share a small heterogeneous pool where per-leg costs are
easy to read: a perf-4/price-p node runs a 20-unit task in 5 units at
cost ``5 p``.  The search must return the cheapest ``count`` legs able
to host ``[start, start + required_time)``, honour node exclusions, the
remaining budget and the deadline, and certify infeasibility with
``None``.
"""

from __future__ import annotations

from repro.core.repair import find_fixed_start_replacements
from repro.model import ResourceRequest, SlotPool

from tests.conftest import make_slot


def request(budget: float = 1000.0, deadline: float | None = None) -> ResourceRequest:
    return ResourceRequest(
        node_count=2, reservation_time=20.0, budget=budget, deadline=deadline
    )


def heterogeneous_pool() -> SlotPool:
    return SlotPool.from_slots(
        [
            make_slot(1, 0.0, 100.0, performance=4.0, price=1.0),  # cost 5
            make_slot(2, 0.0, 100.0, performance=4.0, price=2.0),  # cost 10
            make_slot(3, 0.0, 100.0, performance=4.0, price=4.0),  # cost 20
            make_slot(4, 0.0, 100.0, performance=2.0, price=1.0),  # cost 10, len 10
        ]
    )


def test_returns_the_cheapest_legs_in_cost_order():
    legs = find_fixed_start_replacements(
        heterogeneous_pool(), request(), start=10.0, count=2,
        exclude_nodes=set(), budget=1000.0,
    )
    assert legs is not None
    assert [leg.slot.node.node_id for leg in legs] == [1, 2]
    assert [leg.cost for leg in legs] == [5.0, 10.0]
    assert all(leg.fits_from(10.0) for leg in legs)


def test_excluded_nodes_never_host_a_replacement():
    legs = find_fixed_start_replacements(
        heterogeneous_pool(), request(), start=10.0, count=2,
        exclude_nodes={1, 3}, budget=1000.0,
    )
    assert legs is not None
    assert {leg.slot.node.node_id for leg in legs} == {2, 4}


def test_replacement_nodes_are_distinct():
    legs = find_fixed_start_replacements(
        heterogeneous_pool(), request(), start=10.0, count=3,
        exclude_nodes=set(), budget=1000.0,
    )
    assert legs is not None
    nodes = [leg.slot.node.node_id for leg in legs]
    assert len(set(nodes)) == len(nodes) == 3


def test_cheapest_count_over_budget_is_infeasible():
    # Cheapest pair costs 15; a budget of 12 cannot host any pair.
    assert (
        find_fixed_start_replacements(
            heterogeneous_pool(), request(), start=10.0, count=2,
            exclude_nodes=set(), budget=12.0,
        )
        is None
    )


def test_too_few_eligible_candidates_is_infeasible():
    assert (
        find_fixed_start_replacements(
            heterogeneous_pool(), request(), start=10.0, count=4,
            exclude_nodes={2}, budget=1000.0,
        )
        is None
    )


def test_slot_must_contain_the_fixed_span():
    # A slot opening after the fixed start, and one whose tail is shorter
    # than the task, can never host the span.
    pool = SlotPool.from_slots(
        [
            make_slot(1, 15.0, 100.0),  # opens after start
            make_slot(2, 0.0, 12.0),  # tail [10, 12) < runtime 5
            make_slot(3, 0.0, 100.0),
        ]
    )
    legs = find_fixed_start_replacements(
        pool, request(), start=10.0, count=1, exclude_nodes=set(), budget=1000.0
    )
    assert legs is not None
    assert [leg.slot.node.node_id for leg in legs] == [3]
    assert (
        find_fixed_start_replacements(
            pool, request(), start=10.0, count=2, exclude_nodes=set(), budget=1000.0
        )
        is None
    )


def test_deadline_rules_out_late_finishes():
    pool = heterogeneous_pool()
    # start 10 + runtime 5 = finish 15: fine under deadline 20, not 13.
    assert (
        find_fixed_start_replacements(
            pool, request(deadline=20.0), start=10.0, count=1,
            exclude_nodes=set(), budget=1000.0,
        )
        is not None
    )
    assert (
        find_fixed_start_replacements(
            pool, request(deadline=13.0), start=10.0, count=1,
            exclude_nodes=set(), budget=1000.0,
        )
        is None
    )


def test_zero_count_is_trivially_satisfied():
    assert (
        find_fixed_start_replacements(
            heterogeneous_pool(), request(), start=10.0, count=0,
            exclude_nodes=set(), budget=0.0,
        )
        == []
    )
