"""Equivalence tests for the incrementally sorted fast scans."""

import numpy as np
import pytest

from repro.core import AMP, MinCost
from repro.core.fastscan import fast_earliest_start, fast_min_cost
from repro.model import ResourceRequest
from tests.conftest import random_small_pool


def random_request(rng):
    return ResourceRequest(
        node_count=int(rng.integers(1, 4)),
        reservation_time=float(rng.uniform(5.0, 25.0)),
        budget=float(rng.uniform(20.0, 200.0)),
    )


class TestEquivalence:
    def test_min_cost_matches_reference_on_random_pools(self):
        rng = np.random.default_rng(21)
        reference = MinCost()
        for _ in range(60):
            pool = random_small_pool(rng, node_count=int(rng.integers(3, 12)))
            request = random_request(rng)
            slow = reference.select(request, pool)
            fast = fast_min_cost(request, pool)
            assert (slow is None) == (fast is None)
            if slow is not None:
                assert fast.total_cost == pytest.approx(slow.total_cost)
                assert fast.size == slow.size
                fast.validate(request)

    def test_earliest_start_matches_reference_on_random_pools(self):
        rng = np.random.default_rng(22)
        reference = AMP(policy="cheapest")
        for _ in range(60):
            pool = random_small_pool(rng, node_count=int(rng.integers(3, 12)))
            request = random_request(rng)
            slow = reference.select(request, pool)
            fast = fast_earliest_start(request, pool)
            assert (slow is None) == (fast is None)
            if slow is not None:
                assert fast.start == pytest.approx(slow.start)
                fast.validate(request)

    def test_min_cost_on_fixture(self, heterogeneous_pool):
        request = ResourceRequest(node_count=2, reservation_time=20.0, budget=100.0)
        window = fast_min_cost(request, heterogeneous_pool)
        assert window.total_cost == pytest.approx(20.0)

    def test_deadline_respected(self, heterogeneous_pool):
        request = ResourceRequest(
            node_count=2, reservation_time=20.0, budget=100.0, deadline=10.0
        )
        slow = MinCost().select(request, heterogeneous_pool)
        fast = fast_min_cost(request, heterogeneous_pool)
        assert (slow is None) == (fast is None)
        if fast is not None:
            assert fast.finish <= 10.0 + 1e-9
            assert fast.total_cost == pytest.approx(slow.total_cost)

    def test_base_environment_equivalence(self):
        from repro.simulation import paper_base_config
        from repro.simulation.experiment import make_generator

        config = paper_base_config(cycles=1, seed=55)
        job = config.base_job()
        for _ in range(5):
            pool = make_generator(config).generate().slot_pool()
            slow = MinCost().select(job, pool)
            fast = fast_min_cost(job, pool)
            assert fast.total_cost == pytest.approx(slow.total_cost)

    def test_infeasible_cases(self, heterogeneous_pool):
        request = ResourceRequest(node_count=2, reservation_time=20.0, budget=5.0)
        assert fast_min_cost(request, heterogeneous_pool) is None
        assert fast_earliest_start(request, heterogeneous_pool) is None
