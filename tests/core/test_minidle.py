"""Unit tests for the MinIdle algorithm and the idle-time criterion."""

import numpy as np
import pytest

from repro.core import Criterion, Exhaustive, MinIdle, MinCost
from repro.model import ResourceRequest, SlotPool
from tests.conftest import make_slot, random_small_pool


def request(n=2, budget=1000.0):
    return ResourceRequest(node_count=n, reservation_time=20.0, budget=budget)


class TestIdleTimeCriterion:
    def test_equal_legs_have_zero_idle(self):
        pool = SlotPool.from_slots(
            [make_slot(i, 0.0, 100.0, performance=4.0) for i in range(2)]
        )
        window = MinCost().select(request(), pool)
        assert window.idle_time == pytest.approx(0.0)
        assert Criterion.IDLE_TIME.evaluate(window) == pytest.approx(0.0)

    def test_rough_edge_idle_value(self):
        # perf 2 -> 10 units, perf 4 -> 5 units: idle = 10 - 5 = 5.
        pool = SlotPool.from_slots(
            [
                make_slot(0, 0.0, 100.0, performance=2.0),
                make_slot(1, 0.0, 100.0, performance=4.0),
            ]
        )
        window = MinCost().select(request(), pool)
        assert window.idle_time == pytest.approx(5.0)

    def test_label(self):
        assert Criterion.IDLE_TIME.label == "idle time"


class TestMinIdle:
    def test_prefers_equal_speed_nodes(self):
        # Two perf-4 nodes (idle 0, cost 2*10) vs a perf-10 + perf-4 mix
        # (idle 3, cheaper).  MinIdle must take the balanced pair.
        pool = SlotPool.from_slots(
            [
                make_slot(0, 0.0, 100.0, performance=4.0, price=2.0),
                make_slot(1, 0.0, 100.0, performance=4.0, price=2.0),
                make_slot(2, 0.0, 100.0, performance=10.0, price=0.5),
            ]
        )
        window = MinIdle().select(request(), pool)
        assert window.idle_time == pytest.approx(0.0)
        assert set(window.nodes()) == {0, 1}

    def test_budget_forces_imbalance(self):
        # The balanced pair is unaffordable; the mixed pair is the only
        # feasible option.
        pool = SlotPool.from_slots(
            [
                make_slot(0, 0.0, 100.0, performance=4.0, price=20.0),  # cost 100
                make_slot(1, 0.0, 100.0, performance=4.0, price=20.0),  # cost 100
                make_slot(2, 0.0, 100.0, performance=2.0, price=1.0),   # cost 10
                make_slot(3, 0.0, 100.0, performance=10.0, price=2.0),  # cost 4
            ]
        )
        window = MinIdle().select(request(budget=50.0), pool)
        assert window is not None
        assert window.total_cost <= 50.0
        assert window.idle_time > 0.0

    def test_matches_exhaustive_without_budget_pressure(self):
        rng = np.random.default_rng(3)
        for _ in range(25):
            pool = random_small_pool(rng, node_count=int(rng.integers(3, 9)))
            req = ResourceRequest(
                node_count=int(rng.integers(2, 4)), reservation_time=10.0
            )
            ours = MinIdle().select(req, pool)
            reference = Exhaustive(Criterion.IDLE_TIME).select(req, pool)
            assert (ours is None) == (reference is None)
            if ours is not None:
                # Unconstrained budget: the consecutive sweep is optimal.
                assert ours.idle_time == pytest.approx(
                    reference.idle_time, abs=1e-9
                )

    def test_never_worse_than_mincost_on_idle(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            pool = random_small_pool(rng, node_count=int(rng.integers(3, 9)))
            req = ResourceRequest(
                node_count=2,
                reservation_time=10.0,
                budget=float(rng.uniform(20.0, 200.0)),
            )
            idle_window = MinIdle().select(req, pool)
            cost_window = MinCost().select(req, pool)
            assert (idle_window is None) == (cost_window is None)
            if idle_window is not None:
                assert idle_window.idle_time <= cost_window.idle_time + 1e-9
                idle_window.validate(req)

    def test_finds_window_whenever_feasible(self, heterogeneous_pool):
        req = request(2, budget=21.0)  # tight: only specific pairs fit
        assert (MinIdle().select(req, heterogeneous_pool) is None) == (
            MinCost().select(req, heterogeneous_pool) is None
        )
