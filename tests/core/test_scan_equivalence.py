"""Old-vs-new scan equivalence: the incremental kernel must select
window-for-window identical results to the frozen pre-change kernel
(:mod:`repro.core.reference`) for every criterion, across random pools,
seeds, and budget/deadline configurations.  Equality is exact — floats
are compared byte-for-byte, not approximately — because the incremental
kernel is engineered to reproduce the reference's summation orders and
tie-breaking, not merely its optima.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aep import aep_scan
from repro.core.extractors import (
    EarliestFinishExtractor,
    EarliestStartExtractor,
    GreedyAdditiveExtractor,
    MinRuntimeExactExtractor,
    MinRuntimeSubstitutionExtractor,
    MinTotalCostExtractor,
    RandomWindowExtractor,
)
from repro.core.reference import (
    ReferenceGreedyAdditiveExtractor,
    ReferenceMinRuntimeSubstitutionExtractor,
    reference_scan,
)
from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.model import ResourceRequest, Slot, SlotPool
from tests.conftest import make_node

SEEDS = [11, 23, 47, 101, 2013]

#: (name, incremental-path extractor, frozen reference extractor, stop_at_first)
CRITERIA = [
    ("start_first", EarliestStartExtractor, EarliestStartExtractor, True),
    ("start_full", EarliestStartExtractor, EarliestStartExtractor, False),
    ("cost", MinTotalCostExtractor, MinTotalCostExtractor, False),
    (
        "runtime_substitution",
        MinRuntimeSubstitutionExtractor,
        ReferenceMinRuntimeSubstitutionExtractor,
        False,
    ),
    ("runtime_exact", MinRuntimeExactExtractor, MinRuntimeExactExtractor, False),
    (
        "finish",
        EarliestFinishExtractor,
        lambda: EarliestFinishExtractor(
            runtime_extractor=ReferenceMinRuntimeSubstitutionExtractor()
        ),
        False,
    ),
    (
        "greedy_additive",
        GreedyAdditiveExtractor,
        ReferenceGreedyAdditiveExtractor,
        False,
    ),
]


def fragmented_pool(
    rng: np.random.Generator,
    node_count: int = 10,
    segments: int = 3,
    horizon: float = 120.0,
) -> SlotPool:
    """Several disjoint slots per node, so candidates expire mid-scan."""
    slots = []
    for node_id in range(node_count):
        node = make_node(
            node_id, float(rng.integers(1, 8)), float(rng.uniform(0.5, 6.0))
        )
        cursor = float(rng.uniform(0.0, 10.0))
        for _ in range(segments):
            length = float(rng.uniform(5.0, horizon / segments))
            slots.append(Slot(node, cursor, cursor + length))
            cursor += length + float(rng.uniform(1.0, 10.0))
    return SlotPool.from_slots(slots)


def request_variants(rng: np.random.Generator) -> list[ResourceRequest]:
    """Unlimited, tight-budget, budget+deadline, and deadline-only requests."""
    node_count = int(rng.integers(2, 5))
    reservation = float(rng.uniform(5.0, 25.0))
    return [
        ResourceRequest(node_count=node_count, reservation_time=reservation),
        ResourceRequest(
            node_count=node_count,
            reservation_time=reservation,
            budget=float(rng.uniform(20.0, 120.0)),
        ),
        ResourceRequest(
            node_count=node_count,
            reservation_time=reservation,
            budget=float(rng.uniform(120.0, 400.0)),
            deadline=float(rng.uniform(30.0, 90.0)),
        ),
        ResourceRequest(
            node_count=node_count,
            reservation_time=reservation,
            deadline=float(rng.uniform(20.0, 60.0)),
        ),
    ]


def fingerprint(result):
    """Exact structural identity of a scan result (or None)."""
    if result is None:
        return None
    return (
        result.window.start,
        result.value,
        tuple(
            (
                ws.slot.node.node_id,
                ws.slot.start,
                ws.slot.end,
                ws.required_time,
                ws.cost,
            )
            for ws in result.window.slots
        ),
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "name,make_new,make_old,stop_at_first",
    CRITERIA,
    ids=[row[0] for row in CRITERIA],
)
def test_equivalence_random_pools(seed, name, make_new, make_old, stop_at_first):
    rng = np.random.default_rng(seed)
    pool = fragmented_pool(rng, node_count=int(rng.integers(6, 14)))
    for request in request_variants(rng):
        new = aep_scan(request, pool, make_new(), stop_at_first=stop_at_first)
        old = reference_scan(request, pool, make_old(), stop_at_first=stop_at_first)
        assert fingerprint(new) == fingerprint(old), (
            f"criterion {name} diverged (seed {seed}, request {request})"
        )
        if new is not None:
            assert new.steps == old.steps
            assert new.slots_scanned == old.slots_scanned


@pytest.mark.parametrize(
    "name,make_new,make_old,stop_at_first",
    CRITERIA,
    ids=[row[0] for row in CRITERIA],
)
def test_equivalence_base_environment(name, make_new, make_old, stop_at_first):
    """The paper's base environment: 100 nodes, seed 2013, base job."""
    environment = EnvironmentGenerator(
        EnvironmentConfig(node_count=100, seed=2013)
    ).generate()
    slots = environment.slot_pool().ordered()
    for request in (
        ResourceRequest(node_count=5, reservation_time=150.0, budget=1500.0),
        ResourceRequest(
            node_count=5, reservation_time=150.0, budget=1500.0, deadline=400.0
        ),
    ):
        new = aep_scan(request, slots, make_new(), stop_at_first=stop_at_first)
        old = reference_scan(request, slots, make_old(), stop_at_first=stop_at_first)
        assert fingerprint(new) == fingerprint(old), f"criterion {name} diverged"


@pytest.mark.parametrize("seed", SEEDS)
def test_equivalence_random_window_extractor(seed):
    """Order-sensitive extraction: twin seeded rngs must draw identically,
    which requires the incremental kernel to present candidates in the
    reference's scan order."""
    rng = np.random.default_rng(seed)
    pool = fragmented_pool(rng, node_count=8)
    request = ResourceRequest(
        node_count=3,
        reservation_time=float(rng.uniform(5.0, 20.0)),
        budget=float(rng.uniform(50.0, 300.0)),
    )
    new = aep_scan(
        request, pool, RandomWindowExtractor(rng=np.random.default_rng(seed * 7 + 1))
    )
    old = reference_scan(
        request, pool, RandomWindowExtractor(rng=np.random.default_rng(seed * 7 + 1))
    )
    assert fingerprint(new) == fingerprint(old)


def test_equivalence_infeasible_everywhere():
    """Both kernels agree on None when no feasible window exists."""
    pool = SlotPool.from_slots([Slot(make_node(0), 0.0, 50.0)])
    request = ResourceRequest(node_count=3, reservation_time=10.0, budget=5.0)
    for _, make_new, make_old, stop_at_first in CRITERIA:
        assert aep_scan(request, pool, make_new(), stop_at_first=stop_at_first) is None
        assert (
            reference_scan(request, pool, make_old(), stop_at_first=stop_at_first)
            is None
        )
