"""Unit tests for the per-criterion window extractors.

Each extractor is exercised on hand-built candidate sets with known
optima, and the heuristics are cross-checked against their exact
counterparts.
"""

import numpy as np
import pytest

from repro.core.extractors import (
    EarliestFinishExtractor,
    EarliestStartExtractor,
    ExactAdditiveExtractor,
    GreedyAdditiveExtractor,
    MinRuntimeExactExtractor,
    MinRuntimeSubstitutionExtractor,
    MinTotalCostExtractor,
    RandomWindowExtractor,
    cheapest_subset,
)
from repro.model import ResourceRequest, WindowSlot
from tests.conftest import make_slot


def candidate(node_id, performance, price, reservation=20.0, start=0.0, end=200.0):
    slot = make_slot(node_id, start, end, performance, price)
    request = ResourceRequest(node_count=1, reservation_time=reservation)
    return WindowSlot.for_request(slot, request)


@pytest.fixture
def mixed_candidates():
    """Five nodes: (perf, price) -> (required_time, cost) for t_s = 20.

    node 0: perf 2,  price 1   -> time 10, cost 10
    node 1: perf 4,  price 2   -> time  5, cost 10
    node 2: perf 5,  price 4   -> time  4, cost 16
    node 3: perf 10, price 9   -> time  2, cost 18
    node 4: perf 1,  price 0.5 -> time 20, cost 10
    """
    specs = [(2.0, 1.0), (4.0, 2.0), (5.0, 4.0), (10.0, 9.0), (1.0, 0.5)]
    return [candidate(i, perf, price) for i, (perf, price) in enumerate(specs)]


def request(n, budget):
    return ResourceRequest(node_count=n, reservation_time=20.0, budget=budget)


class TestCheapestSubset:
    def test_picks_n_cheapest(self, mixed_candidates):
        chosen = cheapest_subset(mixed_candidates, 2, budget=100.0)
        assert sorted(ws.cost for ws in chosen) == [10.0, 10.0]

    def test_none_when_too_few(self, mixed_candidates):
        assert cheapest_subset(mixed_candidates[:1], 2, budget=100.0) is None

    def test_none_when_over_budget(self, mixed_candidates):
        assert cheapest_subset(mixed_candidates, 2, budget=19.0) is None

    def test_exact_budget_ok(self, mixed_candidates):
        assert cheapest_subset(mixed_candidates, 2, budget=20.0) is not None


class TestEarliestStartExtractor:
    def test_value_is_window_start(self, mixed_candidates):
        extraction = EarliestStartExtractor().extract(
            7.5, mixed_candidates, request(2, 100.0)
        )
        assert extraction.value == pytest.approx(7.5)

    def test_infeasible_returns_none(self, mixed_candidates):
        assert (
            EarliestStartExtractor().extract(0.0, mixed_candidates, request(2, 19.0))
            is None
        )


class TestMinTotalCostExtractor:
    def test_minimal_cost_selected(self, mixed_candidates):
        extraction = MinTotalCostExtractor().extract(
            0.0, mixed_candidates, request(3, 100.0)
        )
        assert extraction.value == pytest.approx(30.0)  # the three cost-10 legs

    def test_budget_binding(self, mixed_candidates):
        assert (
            MinTotalCostExtractor().extract(0.0, mixed_candidates, request(3, 29.0))
            is None
        )

    def test_unlimited_budget(self, mixed_candidates):
        req = ResourceRequest(node_count=5, reservation_time=20.0)
        extraction = MinTotalCostExtractor().extract(0.0, mixed_candidates, req)
        assert extraction.value == pytest.approx(10 + 10 + 16 + 18 + 10)


class TestMinRuntimeSubstitution:
    def test_upgrades_to_faster_slots_within_budget(self, mixed_candidates):
        # n=2: cheapest two are times {10, 5} or {10, 20}... cheapest by cost
        # are the three cost-10 legs; with budget 28 the extractor can swap
        # the slowest for the 16-cost perf-5 leg (time 4).
        extraction = MinRuntimeSubstitutionExtractor().extract(
            0.0, mixed_candidates, request(2, 28.0)
        )
        assert extraction is not None
        assert extraction.value <= 10.0

    def test_with_big_budget_reaches_fastest_pair(self, mixed_candidates):
        extraction = MinRuntimeSubstitutionExtractor().extract(
            0.0, mixed_candidates, request(2, 100.0)
        )
        assert extraction.value == pytest.approx(4.0)  # perf 10 (2) + perf 5 (4)

    def test_infeasible_returns_none(self, mixed_candidates):
        assert (
            MinRuntimeSubstitutionExtractor().extract(
                0.0, mixed_candidates, request(2, 15.0)
            )
            is None
        )

    def test_never_exceeds_budget(self, mixed_candidates):
        for budget in (20.0, 26.0, 28.0, 34.0, 100.0):
            extraction = MinRuntimeSubstitutionExtractor().extract(
                0.0, mixed_candidates, request(3, budget)
            )
            if extraction is not None:
                assert sum(ws.cost for ws in extraction.slots) <= budget + 1e-6


class TestMinRuntimeExact:
    def test_matches_brute_force_on_fixture(self, mixed_candidates):
        extraction = MinRuntimeExactExtractor().extract(
            0.0, mixed_candidates, request(2, 28.0)
        )
        # Brute force: feasible pairs within budget 28 and their max times:
        # {0,1}: cost 20 time 10; {0,4}: 20/20; {1,4}: 20/20; {1,2}: 26/5;
        # {0,2}: 26/10; {4,2}: 26/20; {3,*}: >= 28 -> {3,4}: 28 wait cost 18+10=28 time 20
        # {3,0}: 28 time 10; {3,1}: 28 time 5.
        # Minimum achievable max-time is 5 ({1,2} or {3,1}).
        assert extraction.value == pytest.approx(5.0)

    def test_exact_never_worse_than_substitution(self, mixed_candidates):
        for n in (2, 3, 4):
            for budget in (25.0, 30.0, 40.0, 60.0, 100.0):
                req = request(n, budget)
                exact = MinRuntimeExactExtractor().extract(0.0, mixed_candidates, req)
                heur = MinRuntimeSubstitutionExtractor().extract(
                    0.0, mixed_candidates, req
                )
                assert (exact is None) == (heur is None)
                if exact is not None:
                    assert exact.value <= heur.value + 1e-9

    def test_random_instances_against_brute_force(self):
        rng = np.random.default_rng(4)
        from itertools import combinations

        for trial in range(50):
            m = int(rng.integers(3, 9))
            n = int(rng.integers(2, min(4, m) + 1))
            cands = [
                candidate(
                    i,
                    performance=float(rng.integers(1, 11)),
                    price=float(rng.uniform(0.2, 5.0)),
                )
                for i in range(m)
            ]
            budget = float(rng.uniform(20.0, 120.0))
            req = request(n, budget)
            exact = MinRuntimeExactExtractor().extract(0.0, cands, req)
            best = None
            for combo in combinations(cands, n):
                if sum(ws.cost for ws in combo) <= budget + 1e-9:
                    value = max(ws.required_time for ws in combo)
                    if best is None or value < best:
                        best = value
            if best is None:
                assert exact is None
            else:
                assert exact is not None
                assert exact.value == pytest.approx(best)


class TestEarliestFinish:
    def test_value_offsets_start(self, mixed_candidates):
        runtime = MinRuntimeExactExtractor().extract(
            0.0, mixed_candidates, request(2, 100.0)
        )
        finish = EarliestFinishExtractor(MinRuntimeExactExtractor()).extract(
            12.0, mixed_candidates, request(2, 100.0)
        )
        assert finish.value == pytest.approx(12.0 + runtime.value)

    def test_default_backend_is_substitution(self, mixed_candidates):
        extraction = EarliestFinishExtractor().extract(
            0.0, mixed_candidates, request(2, 100.0)
        )
        assert extraction is not None

    def test_infeasible_returns_none(self, mixed_candidates):
        assert (
            EarliestFinishExtractor().extract(0.0, mixed_candidates, request(2, 5.0))
            is None
        )


class TestRandomWindowExtractor:
    def test_respects_budget(self, mixed_candidates):
        rng = np.random.default_rng(0)
        extractor = RandomWindowExtractor(rng=rng)
        for _ in range(50):
            extraction = extractor.extract(0.0, mixed_candidates, request(2, 21.0))
            assert extraction is not None
            assert sum(ws.cost for ws in extraction.slots) <= 21.0 + 1e-6

    def test_infeasible_returns_none(self, mixed_candidates):
        extractor = RandomWindowExtractor(rng=np.random.default_rng(0))
        assert extractor.extract(0.0, mixed_candidates, request(2, 10.0)) is None

    def test_too_few_candidates(self, mixed_candidates):
        extractor = RandomWindowExtractor(rng=np.random.default_rng(0))
        assert extractor.extract(0.0, mixed_candidates[:1], request(2, 100.0)) is None

    def test_value_is_additive_key(self, mixed_candidates):
        extractor = RandomWindowExtractor(rng=np.random.default_rng(3))
        extraction = extractor.extract(0.0, mixed_candidates, request(3, 1000.0))
        assert extraction.value == pytest.approx(
            sum(ws.required_time for ws in extraction.slots)
        )

    def test_reproducible_with_seeded_rng(self, mixed_candidates):
        a = RandomWindowExtractor(rng=np.random.default_rng(5)).extract(
            0.0, mixed_candidates, request(2, 1000.0)
        )
        b = RandomWindowExtractor(rng=np.random.default_rng(5)).extract(
            0.0, mixed_candidates, request(2, 1000.0)
        )
        assert [ws.slot.node.node_id for ws in a.slots] == [
            ws.slot.node.node_id for ws in b.slots
        ]


class TestAdditiveExtractors:
    def test_greedy_minimizes_proc_time_on_fixture(self, mixed_candidates):
        extraction = GreedyAdditiveExtractor().extract(
            0.0, mixed_candidates, request(2, 100.0)
        )
        # Optimum: perf 10 (time 2) + perf 5 (time 4) = 6.
        assert extraction.value == pytest.approx(6.0)

    def test_exact_matches_greedy_on_fixture(self, mixed_candidates):
        for budget in (21.0, 27.0, 30.0, 40.0, 100.0):
            req = request(2, budget)
            greedy = GreedyAdditiveExtractor().extract(0.0, mixed_candidates, req)
            exact = ExactAdditiveExtractor().extract(0.0, mixed_candidates, req)
            assert (greedy is None) == (exact is None)
            if exact is not None:
                assert exact.value <= greedy.value + 1e-9

    def test_exact_against_brute_force_random(self):
        rng = np.random.default_rng(8)
        from itertools import combinations

        for _ in range(40):
            m = int(rng.integers(3, 9))
            n = int(rng.integers(2, min(4, m) + 1))
            cands = [
                candidate(
                    i,
                    performance=float(rng.integers(1, 11)),
                    price=float(rng.uniform(0.2, 5.0)),
                )
                for i in range(m)
            ]
            budget = float(rng.uniform(20.0, 120.0))
            req = request(n, budget)
            exact = ExactAdditiveExtractor().extract(0.0, cands, req)
            best = None
            for combo in combinations(cands, n):
                if sum(ws.cost for ws in combo) <= budget + 1e-9:
                    value = sum(ws.required_time for ws in combo)
                    if best is None or value < best:
                        best = value
            if best is None:
                assert exact is None
            else:
                assert exact.value == pytest.approx(best)

    def test_greedy_never_exceeds_budget(self, mixed_candidates):
        for budget in (20.0, 26.0, 36.0, 44.0):
            extraction = GreedyAdditiveExtractor().extract(
                0.0, mixed_candidates, request(3, budget)
            )
            if extraction is not None:
                assert sum(ws.cost for ws in extraction.slots) <= budget + 1e-6

    def test_custom_key(self, mixed_candidates):
        # Minimizing energy instead of time changes the chosen pair.
        energy = GreedyAdditiveExtractor(key=lambda ws: ws.energy()).extract(
            0.0, mixed_candidates, request(2, 100.0)
        )
        time = GreedyAdditiveExtractor().extract(0.0, mixed_candidates, request(2, 100.0))
        assert energy.value == pytest.approx(sum(ws.energy() for ws in energy.slots))
        assert {ws.slot.node.node_id for ws in energy.slots} != {
            ws.slot.node.node_id for ws in time.slots
        } or energy.value <= sum(ws.energy() for ws in time.slots) + 1e-9
