"""Hypothesis property tests for the selection algorithms.

Random small instances, checked against the algorithms' contracts:
windows validate, optimal algorithms match the exhaustive reference,
heuristics never beat exact variants, budget monotonicity holds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AMP,
    CSA,
    Criterion,
    Exhaustive,
    MinCost,
    MinFinish,
    MinRunTime,
)
from repro.model import ResourceRequest, Slot, SlotPool
from tests.conftest import make_node


@st.composite
def slot_pools(draw, max_nodes=7, horizon=80.0):
    """A random slot pool: one slot per node, varied speed/price/spans."""
    node_count = draw(st.integers(min_value=2, max_value=max_nodes))
    slots = []
    for node_id in range(node_count):
        performance = draw(st.integers(min_value=1, max_value=10))
        price = draw(
            st.floats(min_value=0.25, max_value=6.0, allow_nan=False)
        )
        start = draw(st.floats(min_value=0.0, max_value=horizon / 2, allow_nan=False))
        length = draw(st.floats(min_value=5.0, max_value=horizon, allow_nan=False))
        node = make_node(node_id, float(performance), price)
        slots.append(Slot(node, start, start + length))
    return SlotPool.from_slots(slots)


@st.composite
def requests(draw):
    return ResourceRequest(
        node_count=draw(st.integers(min_value=1, max_value=3)),
        reservation_time=draw(
            st.floats(min_value=2.0, max_value=30.0, allow_nan=False)
        ),
        budget=draw(st.floats(min_value=10.0, max_value=300.0, allow_nan=False)),
    )


@given(pool=slot_pools(), request=requests())
@settings(max_examples=60, deadline=None)
def test_windows_always_validate(pool, request):
    for algorithm in (AMP(), AMP(policy="cheapest"), MinCost(), MinRunTime(), MinFinish()):
        window = algorithm.select(request, pool)
        if window is not None:
            window.validate(request)


@given(pool=slot_pools(), request=requests())
@settings(max_examples=40, deadline=None)
def test_mincost_is_globally_optimal(pool, request):
    ours = MinCost().select(request, pool)
    reference = Exhaustive(Criterion.COST).select(request, pool)
    assert (ours is None) == (reference is None)
    if ours is not None:
        assert ours.total_cost <= reference.total_cost + 1e-6


@given(pool=slot_pools(), request=requests())
@settings(max_examples=40, deadline=None)
def test_exact_runtime_is_globally_optimal(pool, request):
    ours = MinRunTime(exact=True).select(request, pool)
    reference = Exhaustive(Criterion.RUNTIME).select(request, pool)
    assert (ours is None) == (reference is None)
    if ours is not None:
        assert ours.runtime <= reference.runtime + 1e-6


@given(pool=slot_pools(), request=requests())
@settings(max_examples=40, deadline=None)
def test_substitution_never_beats_exact_runtime(pool, request):
    heuristic = MinRunTime(exact=False).select(request, pool)
    exact = MinRunTime(exact=True).select(request, pool)
    assert (heuristic is None) == (exact is None)
    if heuristic is not None:
        assert exact.runtime <= heuristic.runtime + 1e-9


@given(pool=slot_pools(), request=requests(), extra=st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=40, deadline=None)
def test_budget_monotonicity(pool, request, extra):
    """A larger budget never makes the optimal runtime or cost worse."""
    richer = ResourceRequest(
        node_count=request.node_count,
        reservation_time=request.reservation_time,
        budget=request.budget + extra,
    )
    poor_runtime = MinRunTime(exact=True).select(request, pool)
    rich_runtime = MinRunTime(exact=True).select(richer, pool)
    if poor_runtime is not None:
        assert rich_runtime is not None
        assert rich_runtime.runtime <= poor_runtime.runtime + 1e-9
    poor_cost = MinCost().select(request, pool)
    rich_cost = MinCost().select(richer, pool)
    if poor_cost is not None:
        assert rich_cost is not None
        assert rich_cost.total_cost <= poor_cost.total_cost + 1e-9


@given(pool=slot_pools(), request=requests())
@settings(max_examples=30, deadline=None)
def test_csa_alternatives_disjoint_and_counted(pool, request):
    alternatives = CSA().find_alternatives(request, pool)
    for window in alternatives:
        window.validate(request)
    for i, a in enumerate(alternatives):
        for b in alternatives[i + 1 :]:
            assert not a.conflicts_with(b)
    # With consume-cutting, each alternative consumes node_count slots.
    assert len(alternatives) <= max(0, len(pool) // request.node_count)


@given(pool=slot_pools(), request=requests())
@settings(max_examples=40, deadline=None)
def test_deadline_only_removes_windows(pool, request):
    """Adding a deadline can only shrink the feasible set, never break it."""
    unconstrained = MinFinish(exact=True).select(request, pool)
    if unconstrained is None:
        return
    constrained_request = ResourceRequest(
        node_count=request.node_count,
        reservation_time=request.reservation_time,
        budget=request.budget,
        deadline=unconstrained.finish + 1.0,
    )
    window = MinFinish(exact=True).select(constrained_request, pool)
    assert window is not None
    assert window.finish <= unconstrained.finish + 1e-6
