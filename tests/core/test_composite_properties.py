"""Hypothesis property tests for the multi-criteria combinators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Criterion,
    constrained_best,
    dominates,
    lexicographic_choice,
    pareto_front,
    weighted_choice,
)
from repro.model import ResourceRequest, Window, WindowSlot
from tests.conftest import make_slot

CRITERIA = (Criterion.RUNTIME, Criterion.COST, Criterion.START_TIME)


@st.composite
def window_lists(draw):
    count = draw(st.integers(min_value=1, max_value=8))
    windows = []
    for index in range(count):
        performance = draw(st.integers(min_value=1, max_value=10))
        price = draw(st.floats(min_value=0.2, max_value=8.0, allow_nan=False))
        start = draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
        request = ResourceRequest(node_count=1, reservation_time=20.0)
        slot = make_slot(index, start, start + 200.0, float(performance), price)
        windows.append(
            Window(start=start, slots=(WindowSlot.for_request(slot, request),))
        )
    return windows


@given(windows=window_lists())
@settings(max_examples=150, deadline=None)
def test_pareto_front_is_mutually_non_dominating(windows):
    front = pareto_front(windows, list(CRITERIA))
    assert front  # at least one non-dominated window always exists
    for a in front:
        for b in front:
            assert not dominates(a, b, list(CRITERIA))


@given(windows=window_lists())
@settings(max_examples=150, deadline=None)
def test_every_excluded_window_is_dominated(windows):
    front = pareto_front(windows, list(CRITERIA))
    front_ids = set(map(id, front))
    for window in windows:
        if id(window) in front_ids:
            continue
        assert any(dominates(member, window, list(CRITERIA)) for member in windows)


@given(windows=window_lists())
@settings(max_examples=150, deadline=None)
def test_single_criterion_optima_are_on_the_front(windows):
    front = pareto_front(windows, list(CRITERIA))
    for criterion in CRITERIA:
        best_value = min(criterion.evaluate(w) for w in windows)
        front_best = min(criterion.evaluate(w) for w in front)
        # dominates() treats values within 1e-9 as ties, so the front's
        # optimum may sit an epsilon above the global one.
        assert front_best <= best_value + 1e-8


@given(windows=window_lists(), data=st.data())
@settings(max_examples=150, deadline=None)
def test_weighted_choice_returns_member_and_respects_pure_weights(windows, data):
    criterion = data.draw(st.sampled_from(CRITERIA))
    chosen = weighted_choice(windows, {criterion: 1.0})
    assert any(chosen is w for w in windows)
    assert criterion.evaluate(chosen) == min(criterion.evaluate(w) for w in windows)


@given(windows=window_lists(), data=st.data())
@settings(max_examples=150, deadline=None)
def test_lexicographic_first_criterion_always_optimal(windows, data):
    order = data.draw(st.permutations(list(CRITERIA)))
    chosen = lexicographic_choice(windows, order, tolerance=0.0)
    primary = order[0]
    # tolerance=0 still admits a 1e-12 float-noise tie band by design.
    assert primary.evaluate(chosen) <= min(
        primary.evaluate(w) for w in windows
    ) + 1e-9


@given(windows=window_lists(), data=st.data())
@settings(max_examples=150, deadline=None)
def test_constrained_best_respects_limits(windows, data):
    limit = data.draw(st.floats(min_value=1.0, max_value=400.0, allow_nan=False))
    chosen = constrained_best(windows, Criterion.RUNTIME, {Criterion.COST: limit})
    feasible = [w for w in windows if w.total_cost <= limit + 1e-9]
    if not feasible:
        assert chosen is None
    else:
        assert chosen.total_cost <= limit + 1e-9
        assert chosen.runtime == min(w.runtime for w in feasible)
