"""Unit tests for the find_window facade."""

import numpy as np
import pytest

from repro.core import (
    AMP,
    Criterion,
    MinCost,
    MinEnergy,
    MinFinish,
    MinRunTime,
    find_window,
)
from repro.model import ResourceRequest


def request(n=2, budget=100.0):
    return ResourceRequest(node_count=n, reservation_time=20.0, budget=budget)


class TestMinimizingDispatch:
    def test_start_time(self, heterogeneous_pool):
        facade = find_window(request(), heterogeneous_pool, Criterion.START_TIME)
        direct = AMP().select(request(), heterogeneous_pool)
        assert facade.start == direct.start
        assert facade.nodes() == direct.nodes()

    def test_cost(self, heterogeneous_pool):
        facade = find_window(request(), heterogeneous_pool, Criterion.COST)
        direct = MinCost().select(request(), heterogeneous_pool)
        assert facade.total_cost == pytest.approx(direct.total_cost)

    def test_runtime_exact_flag(self, heterogeneous_pool):
        heuristic = find_window(request(), heterogeneous_pool, Criterion.RUNTIME)
        exact = find_window(
            request(), heterogeneous_pool, Criterion.RUNTIME, exact=True
        )
        reference = MinRunTime(exact=True).select(request(), heterogeneous_pool)
        assert exact.runtime == pytest.approx(reference.runtime)
        assert exact.runtime <= heuristic.runtime + 1e-9

    def test_finish(self, heterogeneous_pool):
        facade = find_window(request(), heterogeneous_pool, Criterion.FINISH_TIME)
        direct = MinFinish().select(request(), heterogeneous_pool)
        assert facade.finish == pytest.approx(direct.finish)

    def test_proc_time_with_rng(self, heterogeneous_pool):
        window = find_window(
            request(),
            heterogeneous_pool,
            Criterion.PROCESSOR_TIME,
            rng=np.random.default_rng(0),
        )
        assert window is not None
        optimizing = find_window(
            request(), heterogeneous_pool, Criterion.PROCESSOR_TIME, exact=True
        )
        assert optimizing.processor_time <= window.processor_time + 1e-9

    def test_energy(self, heterogeneous_pool):
        facade = find_window(request(), heterogeneous_pool, Criterion.ENERGY)
        direct = MinEnergy().select(request(), heterogeneous_pool)
        assert facade.total_energy == pytest.approx(direct.total_energy)

    def test_infeasible_returns_none(self, heterogeneous_pool):
        assert (
            find_window(request(budget=1.0), heterogeneous_pool, Criterion.COST)
            is None
        )


class TestMaximizingDispatch:
    def test_latest_start(self, heterogeneous_pool):
        earliest = find_window(request(), heterogeneous_pool, Criterion.START_TIME)
        latest = find_window(
            request(), heterogeneous_pool, Criterion.START_TIME, maximize=True
        )
        assert latest.start >= earliest.start

    def test_max_cost_stays_within_budget(self, heterogeneous_pool):
        req = request(budget=30.0)
        window = find_window(req, heterogeneous_pool, Criterion.COST, maximize=True)
        assert window.total_cost <= 30.0 + 1e-6
        cheapest = find_window(req, heterogeneous_pool, Criterion.COST)
        assert window.total_cost >= cheapest.total_cost - 1e-9

    def test_max_proc_time_picks_slow_nodes(self, heterogeneous_pool):
        req = request(budget=100.0)
        most = find_window(
            req, heterogeneous_pool, Criterion.PROCESSOR_TIME, maximize=True
        )
        least = find_window(
            req, heterogeneous_pool, Criterion.PROCESSOR_TIME, exact=True
        )
        assert most.processor_time >= least.processor_time

    def test_max_energy(self, heterogeneous_pool):
        req = request(budget=100.0)
        most = find_window(req, heterogeneous_pool, Criterion.ENERGY, maximize=True)
        least = find_window(req, heterogeneous_pool, Criterion.ENERGY)
        assert most.total_energy >= least.total_energy - 1e-9

    def test_max_runtime_not_supported(self, heterogeneous_pool):
        with pytest.raises(NotImplementedError):
            find_window(
                request(), heterogeneous_pool, Criterion.RUNTIME, maximize=True
            )
        with pytest.raises(NotImplementedError):
            find_window(
                request(), heterogeneous_pool, Criterion.FINISH_TIME, maximize=True
            )

    def test_maximized_windows_validate(self, heterogeneous_pool):
        req = request(budget=60.0)
        for criterion in (
            Criterion.START_TIME,
            Criterion.COST,
            Criterion.PROCESSOR_TIME,
            Criterion.ENERGY,
        ):
            window = find_window(req, heterogeneous_pool, criterion, maximize=True)
            if window is not None:
                window.validate(req)


class TestIdleTimeDispatch:
    def test_idle_time_minimization(self, heterogeneous_pool):
        window = find_window(request(), heterogeneous_pool, Criterion.IDLE_TIME)
        assert window is not None
        window.validate(request())

    def test_idle_time_maximize_not_supported(self, heterogeneous_pool):
        with pytest.raises(NotImplementedError):
            find_window(
                request(), heterogeneous_pool, Criterion.IDLE_TIME, maximize=True
            )
