"""Unit tests for the concrete selection algorithms on known fixtures.

The ``heterogeneous_pool`` fixture (see conftest) has closed-form optima
for every criterion, so each algorithm's window can be checked exactly.
"""

import numpy as np
import pytest

from repro.core import (
    AMP,
    Criterion,
    Exhaustive,
    FirstFit,
    MinCost,
    MinEnergy,
    MinFinish,
    MinProcTime,
    MinRunTime,
    RigidBackfill,
)
from repro.model import Job, ResourceRequest, SlotPool
from tests.conftest import make_slot


def request(n=2, budget=100.0, **kwargs):
    return ResourceRequest(node_count=n, reservation_time=20.0, budget=budget, **kwargs)


class TestAMP:
    def test_earliest_start_on_heterogeneous_pool(self, heterogeneous_pool):
        window = AMP().select(request(2), heterogeneous_pool)
        assert window is not None
        assert window.start == pytest.approx(0.0)

    def test_first_policy_takes_scan_order(self, heterogeneous_pool):
        # Scan order at t=0: nodes 4 (end 30), 0, 1 (sort key end asc).
        window = AMP(policy="first").select(request(2), heterogeneous_pool)
        assert window.nodes() == [4, 0]

    def test_cheapest_policy_takes_cheapest(self, heterogeneous_pool):
        window = AMP(policy="cheapest").select(request(3), heterogeneous_pool)
        assert set(window.nodes()) == {0, 1, 4}

    def test_eviction_when_first_window_over_budget(self):
        # Three slots at t=0: two expensive, one cheap; n=2 with budget that
        # only fits {cheap, cheap2}; the expensive one must be evicted.
        pool = SlotPool.from_slots(
            [
                make_slot(0, 0.0, 50.0, price=10.0),  # cost 50
                make_slot(1, 0.0, 60.0, price=1.0),   # cost 5
                make_slot(2, 0.0, 70.0, price=1.0),   # cost 5
            ]
        )
        window = AMP(policy="first").select(request(2, budget=20.0), pool)
        assert window is not None
        assert window.start == pytest.approx(0.0)
        assert set(window.nodes()) == {1, 2}

    def test_returns_none_when_budget_infeasible(self, heterogeneous_pool):
        assert AMP().select(request(2, budget=1.0), heterogeneous_pool) is None

    def test_returns_none_when_not_enough_nodes(self, heterogeneous_pool):
        assert AMP().select(request(6), heterogeneous_pool) is None

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            AMP(policy="bogus")

    def test_window_validates_against_request(self, heterogeneous_pool):
        req = request(3)
        window = AMP().select(req, heterogeneous_pool)
        window.validate(req)

    def test_cheapest_policy_start_never_later_than_first_policy(
        self, heterogeneous_pool
    ):
        req = request(2, budget=21.0)
        first = AMP(policy="first").select(req, heterogeneous_pool)
        cheapest = AMP(policy="cheapest").select(req, heterogeneous_pool)
        if first is not None:
            assert cheapest is not None
            assert cheapest.start <= first.start + 1e-9


class TestMinCost:
    def test_exact_minimum_on_fixture(self, heterogeneous_pool):
        window = MinCost().select(request(2), heterogeneous_pool)
        # Cheapest pair: any two of the cost-10 legs (nodes 0, 1, 4).
        assert window.total_cost == pytest.approx(20.0)

    def test_matches_exhaustive(self, heterogeneous_pool):
        req = request(3, budget=60.0)
        ours = MinCost().select(req, heterogeneous_pool)
        optimal = Exhaustive(Criterion.COST).select(req, heterogeneous_pool)
        assert ours.total_cost == pytest.approx(optimal.total_cost)

    def test_respects_budget(self, heterogeneous_pool):
        assert MinCost().select(request(2, budget=19.0), heterogeneous_pool) is None

    def test_window_validates(self, heterogeneous_pool):
        req = request(4)
        MinCost().select(req, heterogeneous_pool).validate(req)


class TestMinRunTime:
    def test_fastest_affordable_pair(self, heterogeneous_pool):
        window = MinRunTime().select(request(2, budget=100.0), heterogeneous_pool)
        # perf 10 (time 2) + perf 5 (time 4): runtime 4 from t=20.
        assert window.runtime == pytest.approx(4.0)

    def test_budget_limits_speed(self, heterogeneous_pool):
        window = MinRunTime().select(request(2, budget=27.0), heterogeneous_pool)
        assert window.total_cost <= 27.0 + 1e-6
        assert window.runtime >= 4.0

    def test_exact_variant_never_worse(self, heterogeneous_pool):
        for budget in (21.0, 27.0, 30.0, 35.0, 100.0):
            req = request(2, budget=budget)
            heuristic = MinRunTime(exact=False).select(req, heterogeneous_pool)
            exact = MinRunTime(exact=True).select(req, heterogeneous_pool)
            assert (heuristic is None) == (exact is None)
            if exact is not None:
                assert exact.runtime <= heuristic.runtime + 1e-9

    def test_exact_matches_exhaustive(self, heterogeneous_pool):
        req = request(2, budget=30.0)
        exact = MinRunTime(exact=True).select(req, heterogeneous_pool)
        optimal = Exhaustive(Criterion.RUNTIME).select(req, heterogeneous_pool)
        assert exact.runtime == pytest.approx(optimal.runtime)

    def test_names_distinguish_variants(self):
        assert MinRunTime().name == "MinRunTime"
        assert MinRunTime(exact=True).name == "MinRunTime-exact"


class TestMinFinish:
    def test_earliest_finish_on_fixture(self, heterogeneous_pool):
        window = MinFinish().select(request(2, budget=100.0), heterogeneous_pool)
        # At t=0 nodes {0, 1, 4} are alive: best runtime pair {0, 1} -> 10
        # wait: node 1 (time 5) and node 0 (time 10) -> runtime 10, finish 10.
        # At t=10 node 2 joins: {1, 2} runtime 5 -> finish 15.  At t=20 node 3:
        # {2, 3} runtime 4 -> finish 24.  Minimum finish is 10 at t=0.
        assert window.finish == pytest.approx(10.0)
        assert window.start == pytest.approx(0.0)

    def test_matches_exhaustive_finish(self, heterogeneous_pool):
        req = request(2, budget=100.0)
        ours = MinFinish(exact=True).select(req, heterogeneous_pool)
        optimal = Exhaustive(Criterion.FINISH_TIME).select(req, heterogeneous_pool)
        assert ours.finish == pytest.approx(optimal.finish)

    def test_budget_respected(self, heterogeneous_pool):
        window = MinFinish().select(request(3, budget=36.0), heterogeneous_pool)
        assert window.total_cost <= 36.0 + 1e-6


class TestMinProcTime:
    def test_optimizing_variant_matches_exhaustive(self, heterogeneous_pool):
        req = request(2, budget=100.0)
        ours = MinProcTime(simplified=False).select(req, heterogeneous_pool)
        optimal = Exhaustive(Criterion.PROCESSOR_TIME).select(req, heterogeneous_pool)
        assert ours.processor_time == pytest.approx(optimal.processor_time)

    def test_simplified_variant_feasible_and_valid(self, heterogeneous_pool):
        req = request(2, budget=40.0)
        window = MinProcTime(rng=np.random.default_rng(1)).select(
            req, heterogeneous_pool
        )
        assert window is not None
        window.validate(req)

    def test_simplified_not_better_than_optimizing(self, heterogeneous_pool):
        req = request(2, budget=100.0)
        simplified = MinProcTime(rng=np.random.default_rng(2)).select(
            req, heterogeneous_pool
        )
        optimizing = MinProcTime(simplified=False).select(req, heterogeneous_pool)
        assert optimizing.processor_time <= simplified.processor_time + 1e-9

    def test_names(self):
        assert MinProcTime().name == "MinProcTime"
        assert MinProcTime(simplified=False).name == "MinProcTime-opt"


class TestMinEnergy:
    def test_greedy_feasible_and_valid(self, heterogeneous_pool):
        req = request(2, budget=100.0)
        window = MinEnergy().select(req, heterogeneous_pool)
        assert window is not None
        window.validate(req)

    def test_exact_matches_exhaustive(self, heterogeneous_pool):
        req = request(2, budget=100.0)
        ours = MinEnergy(exact=True).select(req, heterogeneous_pool)
        optimal = Exhaustive(Criterion.ENERGY).select(req, heterogeneous_pool)
        assert ours.total_energy == pytest.approx(optimal.total_energy)

    def test_greedy_never_better_than_exact(self, heterogeneous_pool):
        for budget in (21.0, 30.0, 100.0):
            req = request(2, budget=budget)
            greedy = MinEnergy().select(req, heterogeneous_pool)
            exact = MinEnergy(exact=True).select(req, heterogeneous_pool)
            assert (greedy is None) == (exact is None)
            if exact is not None:
                assert exact.total_energy <= greedy.total_energy + 1e-9


class TestFirstFit:
    def test_ignores_budget(self, heterogeneous_pool):
        window = FirstFit().select(request(2, budget=1.0), heterogeneous_pool)
        assert window is not None  # budget-blind by design

    def test_first_matching_window(self, heterogeneous_pool):
        window = FirstFit().select(request(2), heterogeneous_pool)
        assert window.start == pytest.approx(0.0)

    def test_hardware_still_checked(self, heterogeneous_pool):
        req = request(2, min_performance=4.0)
        window = FirstFit().select(req, heterogeneous_pool)
        assert all(
            ws.slot.node.performance >= 4.0 for ws in window.slots
        )


class TestRigidBackfill:
    def test_rigid_duration_ignores_performance(self, heterogeneous_pool):
        window = RigidBackfill().select(request(2), heterogeneous_pool)
        assert window is not None
        assert all(
            ws.required_time == pytest.approx(20.0) for ws in window.slots
        )

    def test_needs_full_reservation_length(self):
        # Slots shorter than the rigid 20-unit reservation are unusable even
        # on fast nodes (where the AEP family would only need 5 units).
        pool = SlotPool.from_slots(
            [
                make_slot(0, 0.0, 10.0, performance=8.0),
                make_slot(1, 0.0, 10.0, performance=8.0),
            ]
        )
        assert RigidBackfill().select(request(2), pool) is None

    def test_cost_blind(self, heterogeneous_pool):
        window = RigidBackfill().select(request(2, budget=0.0), heterogeneous_pool)
        assert window is not None


class TestExhaustive:
    def test_guards_against_large_pools(self):
        slots = [make_slot(i, 0.0, 50.0) for i in range(65)]
        pool = SlotPool.from_slots(slots)
        with pytest.raises(ValueError):
            Exhaustive().select(request(2), pool)

    def test_respects_deadline(self, heterogeneous_pool):
        req = request(2, deadline=10.0)
        window = Exhaustive(Criterion.COST).select(req, heterogeneous_pool)
        assert window is None or window.finish <= 10.0 + 1e-9

    def test_none_when_infeasible(self, heterogeneous_pool):
        assert Exhaustive().select(request(2, budget=5.0), heterogeneous_pool) is None


class TestMinProcTimeExact:
    def test_exact_matches_exhaustive(self, heterogeneous_pool):
        req = request(2, budget=100.0)
        exact = MinProcTime(simplified=False, exact=True).select(
            req, heterogeneous_pool
        )
        optimal = Exhaustive(Criterion.PROCESSOR_TIME).select(req, heterogeneous_pool)
        assert exact.processor_time == pytest.approx(optimal.processor_time)

    def test_exact_never_worse_than_greedy(self, heterogeneous_pool):
        for budget in (21.0, 27.0, 40.0, 100.0):
            req = request(2, budget=budget)
            greedy = MinProcTime(simplified=False).select(req, heterogeneous_pool)
            exact = MinProcTime(simplified=False, exact=True).select(
                req, heterogeneous_pool
            )
            assert (greedy is None) == (exact is None)
            if exact is not None:
                assert exact.processor_time <= greedy.processor_time + 1e-9

    def test_name(self):
        assert MinProcTime(simplified=False, exact=True).name == "MinProcTime-exact"
