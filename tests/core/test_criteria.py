"""Unit tests for window criteria and CSA-style best-window selection."""

import pytest

from repro.core import Criterion, best_window
from repro.model import ResourceRequest, Window, WindowSlot
from tests.conftest import make_slot


def simple_window(start, performance, price, reservation=20.0, node_id=0):
    slot = make_slot(node_id, start, start + 100.0, performance, price)
    request = ResourceRequest(node_count=1, reservation_time=reservation)
    return Window(start=start, slots=(WindowSlot.for_request(slot, request),))


class TestEvaluate:
    @pytest.fixture
    def window(self):
        return simple_window(start=10.0, performance=4.0, price=2.0)

    def test_start_time(self, window):
        assert Criterion.START_TIME.evaluate(window) == pytest.approx(10.0)

    def test_runtime(self, window):
        assert Criterion.RUNTIME.evaluate(window) == pytest.approx(5.0)

    def test_finish_time(self, window):
        assert Criterion.FINISH_TIME.evaluate(window) == pytest.approx(15.0)

    def test_processor_time(self, window):
        assert Criterion.PROCESSOR_TIME.evaluate(window) == pytest.approx(5.0)

    def test_cost(self, window):
        assert Criterion.COST.evaluate(window) == pytest.approx(10.0)

    def test_energy(self, window):
        assert Criterion.ENERGY.evaluate(window) == pytest.approx(window.total_energy)

    def test_labels_unique(self):
        labels = {criterion.label for criterion in Criterion}
        assert len(labels) == len(list(Criterion))


class TestBestWindow:
    def test_picks_minimum(self):
        early = simple_window(0.0, 4.0, 2.0)
        late = simple_window(50.0, 4.0, 2.0, node_id=1)
        assert best_window([late, early], Criterion.START_TIME) is early

    def test_different_criteria_pick_different_windows(self):
        cheap_slow = simple_window(0.0, 1.0, 0.1)      # runtime 20, cost 2
        pricey_fast = simple_window(0.0, 10.0, 30.0, node_id=1)  # runtime 2, cost 60
        assert best_window([cheap_slow, pricey_fast], Criterion.COST) is cheap_slow
        assert best_window([cheap_slow, pricey_fast], Criterion.RUNTIME) is pricey_fast

    def test_first_wins_ties(self):
        a = simple_window(0.0, 4.0, 2.0)
        b = simple_window(0.0, 4.0, 2.0, node_id=1)
        assert best_window([a, b], Criterion.COST) is a

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            best_window([], Criterion.COST)
