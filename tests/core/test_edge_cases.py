"""Edge-case tests across the algorithm suite."""

import numpy as np
import pytest

from repro.core import (
    AMP,
    CSA,
    Criterion,
    Exhaustive,
    FirstFit,
    MinCost,
    MinEnergy,
    MinFinish,
    MinProcTime,
    MinRunTime,
    RigidBackfill,
)
from repro.model import ResourceRequest, SlotPool
from tests.conftest import make_slot

ALL_ALGORITHMS = lambda: [  # noqa: E731 - test helper
    AMP(),
    AMP(policy="cheapest"),
    MinCost(),
    MinRunTime(),
    MinRunTime(exact=True),
    MinFinish(),
    MinProcTime(rng=np.random.default_rng(0)),
    MinProcTime(simplified=False),
    MinEnergy(),
    FirstFit(),
    RigidBackfill(),
]


class TestEmptyAndTinyPools:
    def test_empty_pool(self):
        request = ResourceRequest(node_count=1, reservation_time=10.0)
        pool = SlotPool()
        for algorithm in ALL_ALGORITHMS():
            assert algorithm.select(request, pool) is None
        assert CSA().find_alternatives(request, pool) == []

    def test_single_slot_single_task(self):
        request = ResourceRequest(node_count=1, reservation_time=10.0, budget=100.0)
        pool = SlotPool.from_slots([make_slot(0, 5.0, 50.0)])
        window = AMP().select(request, pool)
        assert window.start == pytest.approx(5.0)
        assert window.size == 1

    def test_exactly_n_slots(self):
        # "in the case, when m = n the selection is trivial"
        request = ResourceRequest(node_count=3, reservation_time=20.0, budget=100.0)
        pool = SlotPool.from_slots([make_slot(i, 0.0, 50.0) for i in range(3)])
        for algorithm in ALL_ALGORITHMS():
            window = algorithm.select(request, pool)
            assert window is not None
            assert set(window.nodes()) == {0, 1, 2}


class TestRequestVariants:
    def test_reference_performance_scales_durations(self):
        pool = SlotPool.from_slots([make_slot(0, 0.0, 100.0, performance=4.0)])
        fast_ref = ResourceRequest(
            node_count=1, reservation_time=20.0, reference_performance=2.0
        )
        window = AMP().select(fast_ref, pool)
        # 20 units at reference perf 2 = 40 work units -> 10 on perf 4.
        assert window.runtime == pytest.approx(10.0)

    def test_price_cap_excluding_everything(self):
        pool = SlotPool.from_slots([make_slot(0, 0.0, 100.0, price=5.0)])
        request = ResourceRequest(
            node_count=1, reservation_time=10.0, max_price_per_unit=1.0
        )
        for algorithm in ALL_ALGORITHMS():
            assert algorithm.select(request, pool) is None

    def test_unlimited_budget(self):
        pool = SlotPool.from_slots(
            [make_slot(i, 0.0, 100.0, price=1000.0) for i in range(2)]
        )
        request = ResourceRequest(node_count=2, reservation_time=10.0)
        assert MinCost().select(request, pool) is not None

    def test_budget_derived_from_price_cap(self):
        # S = F * t_s * n = 3 * 10 * 2 = 60; each task costs 2*2.5=... wait:
        # perf 4 -> task 2.5 units; price 3 -> cost 7.5 each, total 15 <= 60.
        pool = SlotPool.from_slots(
            [make_slot(i, 0.0, 100.0, performance=4.0, price=3.0) for i in range(2)]
        )
        request = ResourceRequest(
            node_count=2, reservation_time=10.0, max_price_per_unit=3.0
        )
        window = AMP().select(request, pool)
        assert window is not None
        window.validate(request)

    def test_more_tasks_than_nodes(self):
        pool = SlotPool.from_slots([make_slot(i, 0.0, 100.0) for i in range(3)])
        request = ResourceRequest(node_count=4, reservation_time=10.0)
        for algorithm in ALL_ALGORITHMS():
            assert algorithm.select(request, pool) is None

    def test_deadline_exactly_at_finish(self):
        pool = SlotPool.from_slots(
            [make_slot(i, 0.0, 100.0, performance=4.0) for i in range(2)]
        )
        # perf 4 -> 5 units; deadline exactly 5.
        request = ResourceRequest(node_count=2, reservation_time=20.0, deadline=5.0)
        window = MinFinish().select(request, pool)
        assert window is not None
        assert window.finish == pytest.approx(5.0)

    def test_task_longer_than_any_slot(self):
        pool = SlotPool.from_slots([make_slot(0, 0.0, 10.0, performance=1.0)])
        request = ResourceRequest(node_count=1, reservation_time=20.0)
        for algorithm in ALL_ALGORITHMS():
            assert algorithm.select(request, pool) is None


class TestDeterminism:
    def test_equal_slots_tie_break_deterministic(self):
        request = ResourceRequest(node_count=2, reservation_time=10.0, budget=100.0)
        slots = [make_slot(i, 0.0, 50.0) for i in range(5)]
        pool_a = SlotPool.from_slots(slots)
        pool_b = SlotPool.from_slots(list(reversed(slots)))
        window_a = MinCost().select(request, pool_a)
        window_b = MinCost().select(request, pool_b)
        assert window_a.nodes() == window_b.nodes()

    def test_algorithms_do_not_mutate_the_pool(self):
        request = ResourceRequest(node_count=2, reservation_time=10.0, budget=100.0)
        pool = SlotPool.from_slots([make_slot(i, 0.0, 50.0) for i in range(4)])
        snapshot = pool.ordered()
        for algorithm in ALL_ALGORITHMS():
            algorithm.select(request, pool)
        CSA().find_alternatives(request, pool)
        assert pool.ordered() == snapshot

    def test_exhaustive_agrees_on_m_equals_n(self):
        request = ResourceRequest(node_count=2, reservation_time=10.0, budget=100.0)
        pool = SlotPool.from_slots([make_slot(i, 0.0, 50.0) for i in range(2)])
        assert Exhaustive(Criterion.COST).select(request, pool) is not None


class TestCsaEdgeCases:
    def test_csa_single_possible_window(self):
        request = ResourceRequest(node_count=2, reservation_time=20.0, budget=100.0)
        pool = SlotPool.from_slots([make_slot(i, 0.0, 30.0) for i in range(2)])
        alternatives = CSA().find_alternatives(request, pool)
        assert len(alternatives) == 1

    def test_csa_select_by_every_criterion(self):
        request = ResourceRequest(node_count=2, reservation_time=20.0, budget=1000.0)
        slots = [make_slot(i, 0.0, 100.0, performance=float(i + 1)) for i in range(6)]
        pool = SlotPool.from_slots(slots)
        csa = CSA()
        for criterion in Criterion:
            window = csa.select_by(request, pool, criterion)
            assert window is not None
            window.validate(request)
