"""Unit tests for the composite (multi-criteria) selection strategies."""

import pytest

from repro.core import (
    Criterion,
    constrained_best,
    dominates,
    lexicographic_choice,
    pareto_front,
    weighted_choice,
)
from repro.core.composite import normalize
from repro.model import ResourceRequest, Window, WindowSlot
from tests.conftest import make_slot


def window(start, performance, price, node_id=0, reservation=20.0):
    slot = make_slot(node_id, start, start + 200.0, performance, price)
    request = ResourceRequest(node_count=1, reservation_time=reservation)
    return Window(start=start, slots=(WindowSlot.for_request(slot, request),))


@pytest.fixture
def trio():
    """Three windows spanning a cost/speed/start trade-off.

    early_cheap_slow : start 0,  runtime 20, cost 10
    early_fast_pricey: start 0,  runtime 2,  cost 18
    late_balanced    : start 50, runtime 5,  cost 10
    """
    return {
        "early_cheap_slow": window(0.0, 1.0, 0.5, node_id=0),
        "early_fast_pricey": window(0.0, 10.0, 9.0, node_id=1),
        "late_balanced": window(50.0, 4.0, 2.0, node_id=2),
    }


class TestNormalize:
    def test_spans_unit_interval(self):
        assert normalize([2.0, 4.0, 6.0]) == [0.0, 0.5, 1.0]

    def test_constant_input(self):
        assert normalize([3.0, 3.0]) == [0.0, 0.0]


class TestWeightedChoice:
    def test_pure_cost_weight_picks_cheapest(self, trio):
        chosen = weighted_choice(
            list(trio.values()), {Criterion.COST: 1.0}
        )
        assert chosen.total_cost == pytest.approx(10.0)

    def test_pure_runtime_weight_picks_fastest(self, trio):
        chosen = weighted_choice(list(trio.values()), {Criterion.RUNTIME: 1.0})
        assert chosen is trio["early_fast_pricey"]

    def test_balanced_weights_pick_compromise(self, trio):
        chosen = weighted_choice(
            list(trio.values()),
            {Criterion.RUNTIME: 1.0, Criterion.COST: 1.0, Criterion.START_TIME: 0.1},
        )
        assert chosen is trio["late_balanced"]

    def test_zero_weight_criterion_ignored(self, trio):
        chosen = weighted_choice(
            list(trio.values()), {Criterion.COST: 1.0, Criterion.START_TIME: 0.0}
        )
        assert chosen.total_cost == pytest.approx(10.0)

    def test_empty_windows_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice([], {Criterion.COST: 1.0})

    def test_empty_weights_rejected(self, trio):
        with pytest.raises(ValueError):
            weighted_choice(list(trio.values()), {})

    def test_negative_weight_rejected(self, trio):
        with pytest.raises(ValueError):
            weighted_choice(list(trio.values()), {Criterion.COST: -1.0})

    def test_all_zero_weights_rejected(self, trio):
        with pytest.raises(ValueError):
            weighted_choice(list(trio.values()), {Criterion.COST: 0.0})


class TestLexicographicChoice:
    def test_primary_criterion_dominates(self, trio):
        chosen = lexicographic_choice(
            list(trio.values()), [Criterion.START_TIME, Criterion.RUNTIME]
        )
        # Two windows start at 0; the faster one wins the tie-break.
        assert chosen is trio["early_fast_pricey"]

    def test_secondary_breaks_exact_ties(self, trio):
        chosen = lexicographic_choice(
            list(trio.values()), [Criterion.START_TIME, Criterion.COST]
        )
        assert chosen is trio["early_cheap_slow"]

    def test_tolerance_widens_the_tie(self, trio):
        # With a huge tolerance on cost, everything survives to the
        # runtime round, which the fast window wins.
        chosen = lexicographic_choice(
            list(trio.values()),
            [Criterion.COST, Criterion.RUNTIME],
            tolerance=1.0,
        )
        assert chosen is trio["early_fast_pricey"]

    def test_strict_tolerance_stops_early(self, trio):
        chosen = lexicographic_choice(
            list(trio.values()), [Criterion.COST, Criterion.RUNTIME], tolerance=0.0
        )
        # Cost-10 windows: cheap_slow and late_balanced; runtime favours
        # the latter.
        assert chosen is trio["late_balanced"]

    def test_validation(self, trio):
        with pytest.raises(ValueError):
            lexicographic_choice([], [Criterion.COST])
        with pytest.raises(ValueError):
            lexicographic_choice(list(trio.values()), [])
        with pytest.raises(ValueError):
            lexicographic_choice(list(trio.values()), [Criterion.COST], tolerance=-0.1)


class TestPareto:
    def test_dominance(self, trio):
        better = trio["late_balanced"]
        # A window strictly worse on both axes.
        worse = window(60.0, 3.0, 2.5, node_id=3)  # runtime 6.67, cost 16.67
        assert dominates(better, worse, [Criterion.RUNTIME, Criterion.COST])
        assert not dominates(worse, better, [Criterion.RUNTIME, Criterion.COST])

    def test_no_self_domination(self, trio):
        w = trio["late_balanced"]
        assert not dominates(w, w, [Criterion.RUNTIME, Criterion.COST])

    def test_front_keeps_tradeoff_windows(self, trio):
        front = pareto_front(
            list(trio.values()), [Criterion.RUNTIME, Criterion.COST]
        )
        assert trio["early_fast_pricey"] in front
        assert trio["late_balanced"] in front
        # cheap_slow ties late_balanced on cost but is slower -> dominated.
        assert trio["early_cheap_slow"] not in front

    def test_front_with_third_axis_rescues_window(self, trio):
        front = pareto_front(
            list(trio.values()),
            [Criterion.RUNTIME, Criterion.COST, Criterion.START_TIME],
        )
        # cheap_slow beats late_balanced on start time -> non-dominated.
        assert set(map(id, front)) == set(map(id, trio.values()))

    def test_single_criterion_front_is_the_minimum(self, trio):
        front = pareto_front(list(trio.values()), [Criterion.COST])
        assert all(w.total_cost == pytest.approx(10.0) for w in front)

    def test_empty_input(self):
        assert pareto_front([], [Criterion.COST]) == []

    def test_requires_criteria(self, trio):
        with pytest.raises(ValueError):
            pareto_front(list(trio.values()), [])


class TestConstrainedBest:
    def test_limit_filters_then_optimizes(self, trio):
        chosen = constrained_best(
            list(trio.values()), Criterion.RUNTIME, {Criterion.COST: 12.0}
        )
        assert chosen is trio["late_balanced"]

    def test_unsatisfiable_limits(self, trio):
        assert (
            constrained_best(
                list(trio.values()), Criterion.RUNTIME, {Criterion.COST: 1.0}
            )
            is None
        )

    def test_no_limits_is_plain_minimum(self, trio):
        chosen = constrained_best(list(trio.values()), Criterion.RUNTIME, {})
        assert chosen is trio["early_fast_pricey"]
