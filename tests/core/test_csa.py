"""Unit tests for the CSA multi-alternative scheme."""

import pytest

from repro.core import AMP, CSA, Criterion
from repro.model import ResourceRequest, SlotPool
from tests.conftest import make_slot


def request(n=2, budget=1000.0):
    return ResourceRequest(node_count=n, reservation_time=20.0, budget=budget)


@pytest.fixture
def stacked_pool():
    """Three layers of two parallel slots each -> three disjoint windows."""
    slots = []
    for layer, start in enumerate((0.0, 40.0, 80.0)):
        for lane in range(2):
            slots.append(make_slot(layer * 2 + lane, start, start + 30.0))
    return SlotPool.from_slots(slots)


class TestFindAlternatives:
    def test_finds_all_disjoint_windows(self, stacked_pool):
        alternatives = CSA().find_alternatives(request(2), stacked_pool)
        assert len(alternatives) == 3
        starts = sorted(window.start for window in alternatives)
        assert starts == pytest.approx([0.0, 40.0, 80.0])

    def test_alternatives_are_slot_disjoint(self, stacked_pool):
        alternatives = CSA().find_alternatives(request(2), stacked_pool)
        for i, a in enumerate(alternatives):
            for b in alternatives[i + 1 :]:
                assert not a.conflicts_with(b)

    def test_caller_pool_untouched(self, stacked_pool):
        size_before = len(stacked_pool)
        CSA().find_alternatives(request(2), stacked_pool)
        assert len(stacked_pool) == size_before

    def test_limit_caps_alternatives(self, stacked_pool):
        alternatives = CSA().find_alternatives(request(2), stacked_pool, limit=2)
        assert len(alternatives) == 2

    def test_constructor_cap(self, stacked_pool):
        alternatives = CSA(max_alternatives=1).find_alternatives(
            request(2), stacked_pool
        )
        assert len(alternatives) == 1

    def test_empty_when_infeasible(self, stacked_pool):
        assert CSA().find_alternatives(request(4), stacked_pool) == []

    def test_first_alternative_matches_amp(self, stacked_pool):
        amp_window = AMP().select(request(2), stacked_pool)
        alternatives = CSA().find_alternatives(request(2), stacked_pool)
        assert alternatives[0].start == amp_window.start
        assert alternatives[0].nodes() == amp_window.nodes()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CSA(max_alternatives=0)
        with pytest.raises(ValueError):
            CSA(cut_mode="bogus")


class TestCutModes:
    def test_split_mode_finds_at_least_as_many(self):
        # One long slot pair: split-cutting can pack multiple windows into
        # the same slots, consume-cutting only one.
        slots = [make_slot(0, 0.0, 100.0), make_slot(1, 0.0, 100.0)]
        pool = SlotPool.from_slots(slots)
        consume = CSA(cut_mode="consume").find_alternatives(request(2), pool)
        split = CSA(cut_mode="split").find_alternatives(request(2), pool)
        assert len(consume) == 1
        assert len(split) > len(consume)
        for i, a in enumerate(split):
            for b in split[i + 1 :]:
                assert not a.conflicts_with(b)


class TestSelection:
    def test_select_by_criterion(self, stacked_pool):
        csa = CSA(criterion=Criterion.START_TIME)
        window = csa.select(request(2), stacked_pool)
        assert window.start == pytest.approx(0.0)

    def test_select_by_explicit_criterion(self, stacked_pool):
        csa = CSA()
        cheapest = csa.select_by(request(2), stacked_pool, Criterion.COST)
        fastest = csa.select_by(request(2), stacked_pool, Criterion.RUNTIME)
        assert cheapest is not None
        assert fastest is not None

    def test_select_none_when_no_alternatives(self, stacked_pool):
        assert CSA().select(request(4), stacked_pool) is None
        assert CSA().select_by(request(4), stacked_pool, Criterion.COST) is None

    def test_selected_is_extreme_among_alternatives(self, stacked_pool):
        csa = CSA()
        alternatives = csa.find_alternatives(request(2), stacked_pool)
        chosen = csa.select_by(request(2), stacked_pool, Criterion.FINISH_TIME)
        assert chosen.finish == min(w.finish for w in alternatives)
