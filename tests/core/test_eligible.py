"""Tests of the public ``eligible(n, start, deadline)`` candidate API.

Successor of the retired ``repro.core.fastscan`` equivalence suite: the
incrementally sorted fast scans *are* the main path now (``MinCost`` /
``AMP``), and the private cost-order walk the old deadline path used is
replaced by :meth:`IncrementalCandidateSet.eligible`.  These tests cover
the public query directly, plus the deadline behavior the shim's callers
relied on, through the public algorithms.
"""

import numpy as np
import pytest

from repro.core import AMP, MinCost
from repro.core.candidates import IncrementalCandidateSet, LegFactory
from repro.model import ResourceRequest
from tests.conftest import make_slot, random_small_pool


def random_request(rng):
    return ResourceRequest(
        node_count=int(rng.integers(1, 4)),
        reservation_time=float(rng.uniform(5.0, 25.0)),
        budget=float(rng.uniform(20.0, 200.0)),
    )


def populated_set(request, n, deadline=None):
    """A candidate set over three heterogeneous always-free slots.

    With ``reservation_time=20``: node 0 (perf 2) runs 10 units for 10,
    node 1 (perf 4) runs 5 units for 15, node 2 (perf 8) runs 2.5 units
    for 22.5 — cost order [0, 1, 2], runtime order [2, 1, 0].
    """
    candidates = IncrementalCandidateSet(n, deadline=deadline)
    factory = LegFactory(request)
    for node_id, performance, price in ((0, 2.0, 1.0), (1, 4.0, 3.0), (2, 8.0, 9.0)):
        candidates.insert(
            factory.leg(make_slot(node_id, 0.0, 100.0, performance, price))
        )
    return candidates


class TestEligible:
    def test_no_deadline_returns_cheapest_n(self):
        request = ResourceRequest(node_count=2, reservation_time=20.0)
        candidates = populated_set(request, 2)
        chosen = candidates.eligible(2, window_start=0.0)
        assert chosen == candidates.cheapest(2)
        assert [ws.slot.node.node_id for ws in chosen] == [0, 1]

    def test_deadline_filters_slow_candidates(self):
        request = ResourceRequest(node_count=2, reservation_time=20.0)
        candidates = populated_set(request, 2)
        # node 0 needs 10 units; from start 45 it misses the 50 deadline,
        # so the selection must skip to the dearer-but-faster nodes.
        chosen = candidates.eligible(2, window_start=45.0, deadline=50.0)
        assert [ws.slot.node.node_id for ws in chosen] == [1, 2]

    def test_explicit_deadline_overrides_constructed_one(self):
        request = ResourceRequest(node_count=2, reservation_time=20.0)
        candidates = populated_set(request, 2, deadline=200.0)
        # The constructed deadline admits everyone; a per-query one filters.
        assert len(candidates.eligible(3, window_start=45.0)) == 3
        assert len(candidates.eligible(3, window_start=45.0, deadline=50.0)) == 2

    def test_returns_fewer_when_not_enough_fit(self):
        request = ResourceRequest(node_count=2, reservation_time=20.0)
        candidates = populated_set(request, 2)
        # Only node 2 (2.5 units) can finish within 3 time units.
        chosen = candidates.eligible(2, window_start=0.0, deadline=3.0)
        assert [ws.slot.node.node_id for ws in chosen] == [2]


class TestPublicAlgorithms:
    """The shim's behavioral guarantees, through the public entry points."""

    def test_min_cost_on_random_pools(self):
        rng = np.random.default_rng(21)
        algorithm = MinCost()
        for _ in range(30):
            pool = random_small_pool(rng, node_count=int(rng.integers(3, 12)))
            request = random_request(rng)
            window = algorithm.select(request, pool)
            if window is not None:
                window.validate(request)

    def test_min_cost_on_fixture(self, heterogeneous_pool):
        request = ResourceRequest(node_count=2, reservation_time=20.0, budget=100.0)
        window = MinCost().select(request, heterogeneous_pool)
        assert window.total_cost == pytest.approx(20.0)

    def test_deadline_respected(self, heterogeneous_pool):
        request = ResourceRequest(
            node_count=2, reservation_time=20.0, budget=100.0, deadline=10.0
        )
        window = MinCost().select(request, heterogeneous_pool)
        if window is not None:
            assert window.finish <= 10.0 + 1e-9
            window.validate(request)

    def test_infeasible_cases(self, heterogeneous_pool):
        request = ResourceRequest(node_count=2, reservation_time=20.0, budget=5.0)
        assert MinCost().select(request, heterogeneous_pool) is None
        assert AMP(policy="cheapest").select(request, heterogeneous_pool) is None
