"""Batched-vs-sequential scan equivalence.

:func:`repro.core.batchscan.batch_aep_scan` must return, for every job
of a batch, a result *byte-identical* to a sequential per-job
:func:`~repro.core.aep.aep_scan` — window spans, criterion value, and
every complexity counter (``steps``, ``slots_scanned``,
``candidate_peak``, ``candidate_inserts``, ``candidate_expiries``) —
across every criterion, ``stop_at_first``, adversarial duplicate-class
batches, budget-only-varying classes (the shared multi-budget sweep),
and under the object-kernel fallback.  Grouping removes recomputation,
never changes a decision.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aep import aep_scan
from repro.core.algorithms.amp import AMP
from repro.core.algorithms.csa import CSA
from repro.core.algorithms.mincost import MinCost
from repro.core.algorithms.minruntime import MinRunTime
from repro.core.batchscan import batch_aep_scan, scan_class_key
from repro.core.extractors import (
    EarliestFinishExtractor,
    EarliestStartExtractor,
    GreedyAdditiveExtractor,
    MinRuntimeExactExtractor,
    MinRuntimeSubstitutionExtractor,
    MinTotalCostExtractor,
)
from repro.core.vectorized import scan_counters
from repro.model import ResourceRequest
from tests.core.test_scan_equivalence import (
    fingerprint,
    fragmented_pool,
    request_variants,
)

SEEDS = [11, 23, 47, 101, 2013]

#: (name, extractor factory, stop_at_first) — every production scan mode.
CRITERIA = [
    ("start_first", EarliestStartExtractor, True),
    ("start_full", EarliestStartExtractor, False),
    ("cost", MinTotalCostExtractor, False),
    ("runtime_substitution", MinRuntimeSubstitutionExtractor, False),
    ("runtime_exact", MinRuntimeExactExtractor, False),
    ("finish", EarliestFinishExtractor, False),
    ("greedy_additive", GreedyAdditiveExtractor, False),
]


def full_fingerprint(result):
    """Window identity plus every complexity counter."""
    if result is None:
        return None
    return fingerprint(result) + (
        result.steps,
        result.slots_scanned,
        result.candidate_peak,
        result.candidate_inserts,
        result.candidate_expiries,
    )


def adversarial_batch(rng: np.random.Generator) -> list[ResourceRequest]:
    """Distinct classes, exact duplicates, and budget-only variants."""
    variants = request_variants(rng)
    batch = list(variants)
    # Exact duplicates of every class, shuffled in.
    batch.extend(variants)
    # Budget-only-varying copies of one shape: same plan key and node
    # count, different budgets — the shared multi-budget sweep path.
    base = variants[0]
    for scale in (0.5, 1.5, 3.0, 10.0):
        batch.append(
            ResourceRequest(
                node_count=base.node_count,
                reservation_time=base.reservation_time,
                budget=float(scale * 60.0),
            )
        )
    order = rng.permutation(len(batch))
    return [batch[index] for index in order]


class TestBatchScanEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "name,make_extractor,stop_at_first",
        CRITERIA,
        ids=[name for name, _, _ in CRITERIA],
    )
    def test_byte_identical_to_sequential(self, seed, name, make_extractor, stop_at_first):
        rng = np.random.default_rng(seed)
        pool = fragmented_pool(rng)
        extractor = make_extractor()
        batch = adversarial_batch(rng)
        sequential = [
            full_fingerprint(
                aep_scan(request, pool, extractor, stop_at_first=stop_at_first)
            )
            for request in batch
        ]
        batched = batch_aep_scan(
            batch, pool, extractor, stop_at_first=stop_at_first
        )
        assert [full_fingerprint(result) for result in batched] == sequential

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_all_distinct_batch(self, seed):
        rng = np.random.default_rng(seed)
        pool = fragmented_pool(rng)
        extractor = MinTotalCostExtractor()
        batch = request_variants(rng)
        assert len({scan_class_key(request) for request in batch}) == len(batch)
        sequential = [
            full_fingerprint(aep_scan(request, pool, extractor))
            for request in batch
        ]
        batched = batch_aep_scan(batch, pool, extractor)
        assert [full_fingerprint(result) for result in batched] == sequential

    def test_duplicates_share_one_result_object(self):
        rng = np.random.default_rng(7)
        pool = fragmented_pool(rng)
        request = request_variants(rng)[1]
        before = dict(scan_counters)
        results = batch_aep_scan([request, request, request], pool, MinTotalCostExtractor())
        assert results[0] is results[1] is results[2]
        assert scan_counters["grouped_jobs"] - before["grouped_jobs"] == 3
        assert scan_counters["grouped_classes"] - before["grouped_classes"] == 1
        assert scan_counters["grouped_shared"] - before["grouped_shared"] == 2

    def test_budget_only_variants_use_shared_sweep(self):
        rng = np.random.default_rng(23)
        pool = fragmented_pool(rng)
        shapes = [
            ResourceRequest(node_count=3, reservation_time=15.0, budget=budget)
            for budget in (40.0, 90.0, 200.0, 1000.0)
        ]
        extractor = MinTotalCostExtractor()
        before = dict(scan_counters)
        batched = batch_aep_scan(shapes, pool, extractor)
        assert scan_counters["batch_sweeps"] - before["batch_sweeps"] == 1
        assert (
            scan_counters["batch_sweep_classes"] - before["batch_sweep_classes"]
            == 4
        )
        sequential = [
            full_fingerprint(aep_scan(request, pool, extractor))
            for request in shapes
        ]
        assert [full_fingerprint(result) for result in batched] == sequential

    @pytest.mark.parametrize(
        "name,make_extractor,stop_at_first",
        CRITERIA,
        ids=[name for name, _, _ in CRITERIA],
    )
    def test_object_kernel_parity(self, monkeypatch, name, make_extractor, stop_at_first):
        monkeypatch.setenv("REPRO_SCAN_KERNEL", "object")
        rng = np.random.default_rng(101)
        pool = fragmented_pool(rng)
        extractor = make_extractor()
        batch = adversarial_batch(rng)
        sequential = [
            full_fingerprint(
                aep_scan(request, pool, extractor, stop_at_first=stop_at_first)
            )
            for request in batch
        ]
        batched = batch_aep_scan(
            batch, pool, extractor, stop_at_first=stop_at_first
        )
        assert [full_fingerprint(result) for result in batched] == sequential

    def test_empty_batch(self):
        rng = np.random.default_rng(0)
        pool = fragmented_pool(rng, node_count=2, segments=1)
        assert batch_aep_scan([], pool, MinTotalCostExtractor()) == []


class TestScanClassKey:
    def test_budget_only_difference_changes_key_not_plan(self):
        cheap = ResourceRequest(node_count=3, reservation_time=10.0, budget=50.0)
        rich = ResourceRequest(node_count=3, reservation_time=10.0, budget=500.0)
        assert scan_class_key(cheap) != scan_class_key(rich)
        assert scan_class_key(cheap)[0] == scan_class_key(rich)[0]

    def test_equal_effective_budget_groups(self):
        explicit = ResourceRequest(node_count=2, reservation_time=10.0, budget=100.0)
        twin = ResourceRequest(node_count=2, reservation_time=10.0, budget=100.0)
        assert scan_class_key(explicit) == scan_class_key(twin)


class TestFindAlternativesBatch:
    """The algorithm-layer entry point: element-for-element identical to
    a sequential per-job ``find_alternatives`` loop for the whole
    production family."""

    def windows_fingerprint(self, windows):
        return [
            (
                window.start,
                tuple(
                    (ws.slot.node.node_id, ws.slot.start, ws.slot.end)
                    for ws in window.slots
                ),
            )
            for window in windows
        ]

    @pytest.mark.parametrize(
        "make_search",
        [
            lambda: CSA(max_alternatives=5),
            MinCost,
            MinRunTime,
            AMP,
        ],
        ids=["csa", "mincost", "minruntime", "amp"],
    )
    def test_matches_sequential_loop(self, make_search):
        rng = np.random.default_rng(47)
        pool = fragmented_pool(rng)
        search = make_search()
        batch = adversarial_batch(rng)
        sequential = [
            self.windows_fingerprint(search.find_alternatives(request, pool, 5))
            for request in batch
        ]
        batched = search.find_alternatives_batch(batch, pool, limit=5)
        assert [self.windows_fingerprint(windows) for windows in batched] == sequential

    def test_duplicate_jobs_get_independent_lists(self):
        rng = np.random.default_rng(11)
        pool = fragmented_pool(rng)
        request = request_variants(rng)[0]
        search = CSA(max_alternatives=3)
        batched = search.find_alternatives_batch([request, request], pool, limit=3)
        assert batched[0] == batched[1]
        assert batched[0] is not batched[1]  # shallow copies, safe to mutate
