"""Dynamic environment updates between scheduling cycles.

"During each scheduling cycle the sets of available slots are updated
based on the information from local resource managers" (Section 1).  The
paper's experiments regenerate the whole environment per cycle; a live VO
instead *evolves*: local jobs arrive and consume free time, finished local
jobs release time, and nodes join or leave the resource pool.  This module
applies such update batches to an :class:`~repro.environment.Environment`
in place, so multi-cycle studies can run against a persistent, changing
resource picture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.environment.generator import Environment
from repro.model.errors import ConfigurationError, ModelError
from repro.model.timeline import Timeline


@dataclass(frozen=True)
class UpdateStats:
    """What one update pass changed."""

    local_jobs_added: int
    time_consumed: float
    nodes_joined: tuple[int, ...]
    nodes_left: tuple[int, ...]


@dataclass(frozen=True)
class UpdateModel:
    """Stochastic model of between-cycle resource churn.

    Parameters
    ----------
    local_job_rate:
        Expected number of new local jobs per node per cycle.
    local_job_length_range:
        Uniform bounds of a new local job's length.
    node_join_rate / node_leave_rate:
        Expected number of nodes joining/leaving the VO per cycle.  A
        leaving node's remaining free time disappears from the published
        slots (its timeline is marked fully busy); joining nodes arrive
        empty.
    placement_attempts:
        How many random placements to try per new local job before giving
        up (the node may simply be too full).
    """

    local_job_rate: float = 0.5
    local_job_length_range: tuple[float, float] = (10.0, 60.0)
    node_join_rate: float = 0.0
    node_leave_rate: float = 0.0
    placement_attempts: int = 8

    def __post_init__(self) -> None:
        if self.local_job_rate < 0:
            raise ConfigurationError(
                f"local_job_rate must be >= 0, got {self.local_job_rate}"
            )
        low, high = self.local_job_length_range
        if low <= 0 or high < low:
            raise ConfigurationError(
                f"invalid local_job_length_range {self.local_job_length_range}"
            )
        if self.node_join_rate < 0 or self.node_leave_rate < 0:
            raise ConfigurationError("node join/leave rates must be >= 0")
        if self.placement_attempts < 1:
            raise ConfigurationError(
                f"placement_attempts must be >= 1, got {self.placement_attempts}"
            )


def _place_local_job(
    timeline: Timeline, length: float, rng: np.random.Generator, attempts: int
) -> bool:
    """Try to place one local job into a free gap of the timeline."""
    gaps = [
        (start, end)
        for start, end in timeline.free_intervals(length)
    ]
    if not gaps:
        return False
    for _ in range(attempts):
        start, end = gaps[int(rng.integers(0, len(gaps)))]
        offset = float(rng.uniform(start, max(start, end - length)))
        if timeline.is_free(offset, offset + length):
            timeline.add_busy(offset, offset + length)
            return True
    return False


def apply_updates(
    environment: Environment,
    model: UpdateModel,
    rng: Optional[np.random.Generator] = None,
) -> UpdateStats:
    """Apply one between-cycle update pass to ``environment`` in place."""
    rng = rng if rng is not None else np.random.default_rng()
    added = 0
    consumed = 0.0

    # New local jobs claim free time on surviving nodes.
    for node in environment.nodes:
        timeline = environment.timelines[node.node_id]
        arrivals = int(rng.poisson(model.local_job_rate))
        for _ in range(arrivals):
            length = float(rng.uniform(*model.local_job_length_range))
            if _place_local_job(timeline, length, rng, model.placement_attempts):
                added += 1
                consumed += length

    # Node churn.
    left: list[int] = []
    leave_count = min(int(rng.poisson(model.node_leave_rate)), len(environment.nodes) - 1)
    if leave_count > 0:
        victims = rng.choice(len(environment.nodes), size=leave_count, replace=False)
        for index in sorted((int(v) for v in victims), reverse=True):
            node = environment.nodes[index]
            timeline = environment.timelines[node.node_id]
            for start, end in timeline.free_intervals(1e-9):
                timeline.add_busy(start, end)
            left.append(node.node_id)

    joined: list[int] = []
    join_count = int(rng.poisson(model.node_join_rate))
    if join_count > 0:
        from repro.environment.generator import EnvironmentGenerator

        generator = EnvironmentGenerator(environment.config, rng=rng)
        next_id = max(node.node_id for node in environment.nodes) + 1
        for offset in range(join_count):
            node = generator.generate_node(next_id + offset)
            environment.nodes.append(node)
            environment.timelines[node.node_id] = Timeline(
                node,
                environment.config.interval_start,
                environment.config.interval_end,
            )
            joined.append(node.node_id)

    return UpdateStats(
        local_jobs_added=added,
        time_consumed=consumed,
        nodes_joined=tuple(joined),
        nodes_left=tuple(left),
    )
