"""Two-phase batch scheduling (the VO scheme of the paper's reference [6])."""

from repro.scheduling.combination import (
    CombinationChoice,
    greedy_combination,
    optimal_combination,
)
from repro.scheduling.metascheduler import BatchScheduler, CycleReport
from repro.scheduling.reservations import Reservation, ReservationLedger
from repro.scheduling.simulation import (
    CycleStats,
    FlowConfig,
    FlowResult,
    JobFlowSimulation,
)
from repro.scheduling.updates import UpdateModel, UpdateStats, apply_updates

__all__ = [
    "apply_updates",
    "BatchScheduler",
    "CombinationChoice",
    "CycleReport",
    "CycleStats",
    "FlowConfig",
    "FlowResult",
    "greedy_combination",
    "JobFlowSimulation",
    "optimal_combination",
    "Reservation",
    "ReservationLedger",
    "UpdateModel",
    "UpdateStats",
]
