"""Phase two of the batch scheduling scheme: combination selection.

During every cycle of job-batch scheduling two problems are solved
(Section 1): "1) selecting an alternative set of slots that meet the
requirements; 2) choosing a slot combination that would be the efficient or
optimal in terms of the whole job batch execution".  The slot-selection
algorithms of :mod:`repro.core` solve problem 1; this module solves
problem 2: pick exactly one alternative per job so that

* no two chosen windows claim overlapping time on the same node,
* an optional VO-level budget on the combined cost is respected,
* the sum of a criterion over the chosen windows is minimized.

Two solvers are provided: a fast greedy pass in priority order (the
production default) and an exact branch-and-bound used as a reference on
small batches.  Jobs whose every alternative conflicts with earlier
choices are left unscheduled for the cycle, as in the VO model where an
unallocated job waits for the next scheduling cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.criteria import Criterion
from repro.model.errors import SchedulingError
from repro.model.job import Job
from repro.model.slot import TIME_EPSILON
from repro.model.window import Window


@dataclass(frozen=True)
class CombinationChoice:
    """The outcome of phase two for one batch."""

    assignments: dict[str, Window]  # job_id -> chosen window
    total_value: float
    unscheduled: tuple[str, ...] = ()

    @property
    def scheduled_count(self) -> int:
        """Number of jobs that received a window."""
        return len(self.assignments)

    def total_cost(self) -> float:
        """Combined cost of the chosen windows."""
        return sum(window.total_cost for window in self.assignments.values())

    def makespan(self) -> float:
        """Latest finish time among the chosen windows."""
        if not self.assignments:
            return 0.0
        return max(window.finish for window in self.assignments.values())


def _conflicts_with_any(window: Window, chosen: Sequence[Window]) -> bool:
    """Reference predicate: pairwise :meth:`Window.conflicts_with` loop.

    Kept as the specification :class:`ConflictIndex` is tested against;
    the solvers below use the index, which answers the same question in
    O(window legs) numpy comparisons instead of O(chosen x legs) Python.
    """
    return any(window.conflicts_with(other) for other in chosen)


class ConflictIndex:
    """Chosen-window reservations indexed by node, with LIFO removal.

    Phase 2 asks one question per candidate alternative: does it overlap
    any already-chosen window on a common node?  The historical answer
    walked every chosen window's legs in Python — O(chosen x legs) per
    candidate, the phase-2 hot loop on large batches.  This index keeps,
    per node, flat arrays of the chosen reservations' starts and
    epsilon-adjusted ends, so a candidate is checked with one vectorized
    interval-overlap mask per (distinct) candidate node.

    Exactness: ``candidate.conflicts_with(chosen)`` declares a conflict
    on a common node iff ``cand.start < (chosen.start +
    chosen_leg.required_time) - TIME_EPSILON`` and ``chosen.start <
    (cand.start + cand_leg.required_time) - TIME_EPSILON``.  The index
    precomputes the epsilon-adjusted ends with the identical ``(start +
    required_time) - TIME_EPSILON`` operation order, and it mirrors the
    reference's node-reuse asymmetry exactly: the *candidate* side keeps
    only the last leg per node (the ``mine`` dict comprehension) while
    the *chosen* side retains every pushed leg (the ``other.slots``
    loop) — so accept/reject decisions are byte-identical to the
    pairwise loop (property-tested in
    ``tests/scheduling/test_combination.py``).

    ``pop`` removes the most recently pushed window (per-node count
    rollback), which is exactly the discipline the branch-and-bound
    recursion needs.
    """

    __slots__ = ("_starts", "_ends_eps", "_counts", "_stack")

    def __init__(self) -> None:
        self._starts: dict[int, np.ndarray] = {}
        self._ends_eps: dict[int, np.ndarray] = {}
        self._counts: dict[int, int] = {}
        self._stack: list[list[int]] = []

    def __len__(self) -> int:
        return len(self._stack)

    def push(self, window: Window) -> None:
        """Add a chosen window's reservations to the index."""
        start = window.start
        nodes: list[int] = []
        for ws in window.slots:
            node_id = ws.slot.node.node_id
            end_eps = (start + ws.required_time) - TIME_EPSILON
            count = self._counts.get(node_id, 0)
            starts = self._starts.get(node_id)
            if starts is None:
                starts = np.empty(4)
                self._starts[node_id] = starts
                self._ends_eps[node_id] = np.empty(4)
            elif count == starts.size:  # amortized doubling growth
                starts = np.concatenate([starts, np.empty(starts.size)])
                self._starts[node_id] = starts
                self._ends_eps[node_id] = np.concatenate(
                    [self._ends_eps[node_id], np.empty(count)]
                )
            starts[count] = start
            self._ends_eps[node_id][count] = end_eps
            self._counts[node_id] = count + 1
            nodes.append(node_id)
        self._stack.append(nodes)

    def pop(self) -> None:
        """Remove the most recently pushed window (LIFO)."""
        for node_id in self._stack.pop():
            self._counts[node_id] -= 1

    def conflicts(self, window: Window) -> bool:
        """Whether ``window`` overlaps any indexed window on a common node."""
        start = window.start
        counts = self._counts
        # Last leg wins on a node reused within the window, mirroring the
        # span dict in Window.conflicts_with.
        cand_end_eps: dict[int, float] = {}
        for ws in window.slots:
            cand_end_eps[ws.slot.node.node_id] = (
                start + ws.required_time
            ) - TIME_EPSILON
        for node_id, end_eps in cand_end_eps.items():
            count = counts.get(node_id, 0)
            if not count:
                continue
            chosen_starts = self._starts[node_id][:count]
            chosen_ends_eps = self._ends_eps[node_id][:count]
            if bool(
                ((start < chosen_ends_eps) & (chosen_starts < end_eps)).any()
            ):
                return True
        return False


def greedy_combination(
    jobs: Sequence[Job],
    alternatives: dict[str, Sequence[Window]],
    criterion: Criterion = Criterion.COST,
    vo_budget: Optional[float] = None,
) -> CombinationChoice:
    """Greedy phase-two selection in priority order.

    For each job (highest priority first) pick the alternative with the
    smallest criterion value that does not conflict with already chosen
    windows and fits the remaining VO budget.  Linear in the total number
    of alternatives; the scheme the metascheduler uses on-line.
    """
    ordered = sorted(jobs, key=lambda job: -job.priority)
    chosen = ConflictIndex()
    assignments: dict[str, Window] = {}
    unscheduled: list[str] = []
    remaining_budget = float("inf") if vo_budget is None else vo_budget
    total_value = 0.0
    for job in ordered:
        options = alternatives.get(job.job_id, ())
        ranked = sorted(options, key=criterion.evaluate)
        selected: Optional[Window] = None
        for window in ranked:
            if window.total_cost > remaining_budget + 1e-9:
                continue
            if chosen.conflicts(window):
                continue
            selected = window
            break
        if selected is None:
            unscheduled.append(job.job_id)
            continue
        chosen.push(selected)
        assignments[job.job_id] = selected
        remaining_budget -= selected.total_cost
        total_value += criterion.evaluate(selected)
    return CombinationChoice(
        assignments=assignments,
        total_value=total_value,
        unscheduled=tuple(unscheduled),
    )


@dataclass
class _SearchState:
    best_value: float = float("inf")
    best_scheduled: int = -1
    best_assignments: dict[str, Window] = field(default_factory=dict)


def optimal_combination(
    jobs: Sequence[Job],
    alternatives: dict[str, Sequence[Window]],
    criterion: Criterion = Criterion.COST,
    vo_budget: Optional[float] = None,
    max_nodes_expanded: int = 200_000,
) -> CombinationChoice:
    """Exact phase-two selection by branch and bound.

    Maximizes the number of scheduled jobs first, then minimizes the total
    criterion value — the lexicographic objective the VO administrator
    cares about.  Exponential in the worst case; ``max_nodes_expanded``
    bounds the search and raises :class:`SchedulingError` when exceeded, to
    keep misuse loud.
    """
    ordered = sorted(jobs, key=lambda job: -job.priority)
    state = _SearchState()
    budget = float("inf") if vo_budget is None else vo_budget
    expanded = 0

    options_by_job: list[tuple[Job, list[Window]]] = [
        (job, sorted(alternatives.get(job.job_id, ()), key=criterion.evaluate))
        for job in ordered
    ]

    def visit(
        index: int,
        chosen: ConflictIndex,
        assignments: dict[str, Window],
        value: float,
        cost: float,
    ) -> None:
        """Depth-first branch-and-bound recursion."""
        nonlocal expanded
        expanded += 1
        if expanded > max_nodes_expanded:
            raise SchedulingError(
                f"optimal_combination exceeded {max_nodes_expanded} search nodes; "
                "use greedy_combination for batches of this size"
            )
        if index == len(options_by_job):
            scheduled = len(assignments)
            if scheduled > state.best_scheduled or (
                scheduled == state.best_scheduled and value < state.best_value
            ):
                state.best_scheduled = scheduled
                state.best_value = value
                state.best_assignments = dict(assignments)
            return
        # Bound: even scheduling every remaining job cannot beat the best.
        remaining = len(options_by_job) - index
        if len(assignments) + remaining < state.best_scheduled:
            return
        job, options = options_by_job[index]
        for window in options:
            if cost + window.total_cost > budget + 1e-9:
                continue
            if chosen.conflicts(window):
                continue
            chosen.push(window)
            assignments[job.job_id] = window
            visit(
                index + 1,
                chosen,
                assignments,
                value + criterion.evaluate(window),
                cost + window.total_cost,
            )
            chosen.pop()
            del assignments[job.job_id]
        # Also consider leaving the job unscheduled.
        visit(index + 1, chosen, assignments, value, cost)

    visit(0, ConflictIndex(), {}, 0.0, 0.0)
    scheduled_ids = set(state.best_assignments)
    unscheduled = tuple(job.job_id for job in ordered if job.job_id not in scheduled_ids)
    total_value = (
        state.best_value if state.best_scheduled > 0 else 0.0
    )
    return CombinationChoice(
        assignments=state.best_assignments,
        total_value=total_value,
        unscheduled=unscheduled,
    )
