"""The hierarchical metascheduler: a full two-phase scheduling cycle.

This is our concretization of the VO scheduling scheme the paper builds on
(its references [6, 7]): a metascheduler receives the slot sets published
by local resource managers, and during each cycle (1) searches alternative
windows for every batch job in priority order, then (2) selects one
alternative per job by a VO-level criterion, and commits the chosen
windows back onto the node timelines.

The paper itself evaluates phase 1 in isolation; the metascheduler exists
so the library is usable end-to-end (and so the examples can demonstrate
batch-level behaviour).  Where reference [6] leaves details open, the
choices made here are documented inline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.algorithms.base import SlotSelectionAlgorithm
from repro.core.algorithms.csa import CSA
from repro.core.criteria import Criterion
from repro.environment.generator import Environment
from repro.model.errors import SchedulingError
from repro.model.job import Job, JobBatch
from repro.model.slotpool import SlotPool
from repro.model.window import Window
from repro.scheduling.combination import (
    CombinationChoice,
    greedy_combination,
    optimal_combination,
)


@dataclass(frozen=True)
class CycleReport:
    """Everything that happened during one scheduling cycle."""

    choice: CombinationChoice
    alternatives_found: dict[str, int]
    jobs: tuple[Job, ...] = ()

    @property
    def scheduled(self) -> dict[str, Window]:
        """Job id -> chosen window."""
        return self.choice.assignments

    @property
    def unscheduled(self) -> tuple[str, ...]:
        """Ids of jobs deferred this cycle."""
        return self.choice.unscheduled

    def summary(self) -> dict[str, float]:
        """Cycle-level aggregates for logging and tests."""
        return {
            "scheduled_jobs": float(self.choice.scheduled_count),
            "unscheduled_jobs": float(len(self.choice.unscheduled)),
            "total_cost": self.choice.total_cost(),
            "makespan": self.choice.makespan(),
            "alternatives_total": float(sum(self.alternatives_found.values())),
        }

    def fairness(self):
        """Per-owner service report for this cycle (lazy import)."""
        from repro.analysis.fairness import fairness_of_assignments

        return fairness_of_assignments(self.jobs, self.choice.assignments)


@dataclass
class BatchScheduler:
    """Two-phase batch scheduler over one environment.

    Parameters
    ----------
    search:
        Phase-one algorithm.  CSA by default (the general scheme); any
        single-window AEP algorithm also works — it simply contributes one
        alternative per job.
    criterion:
        Phase-two selection criterion (VO policy).
    vo_budget:
        Optional cap on the combined cost of the chosen windows.
    exact_phase2:
        Use the exact branch-and-bound selector instead of the greedy one.
    alternatives_per_job:
        Optional cap passed to the phase-one search.
    consume_slots:
        When ``True``, each job's chosen alternatives are searched on a
        pool from which earlier jobs' alternatives were already cut; this
        guarantees conflict-free alternatives at the price of starving
        lower-priority jobs.  The default (``False``) searches every job on
        the same published pool and lets phase two resolve conflicts.
    """

    search: SlotSelectionAlgorithm = field(default_factory=CSA)
    criterion: Criterion = Criterion.COST
    vo_budget: Optional[float] = None
    exact_phase2: bool = False
    alternatives_per_job: Optional[int] = None
    consume_slots: bool = False

    def find_alternatives(
        self, batch: JobBatch, pool: SlotPool
    ) -> dict[str, list[Window]]:
        """Phase one: alternative windows per job, priority order.

        The non-consuming default searches every job against the same
        published pool, so jobs with equal requests would recompute the
        identical search; the batch is routed through
        :meth:`~repro.core.algorithms.base.SlotSelectionAlgorithm.find_alternatives_batch`,
        which runs one search per request class (decisions are identical
        to the per-job loop).  ``consume_slots`` keeps the sequential
        loop: each job's search depends on the cuts of its predecessors,
        so no two jobs see the same pool and grouping does not apply.
        """
        if not self.consume_slots:
            jobs = list(batch)
            found = self.search.find_alternatives_batch(
                jobs, pool, limit=self.alternatives_per_job
            )
            return {job.job_id: windows for job, windows in zip(jobs, found)}
        alternatives: dict[str, list[Window]] = {}
        working = pool.copy()
        for job in batch:
            found = self.search.find_alternatives(
                job, working, limit=self.alternatives_per_job
            )
            alternatives[job.job_id] = found
            for window in found:
                working.cut_window(window)
        return alternatives

    def choose_combination(
        self, batch: JobBatch, alternatives: dict[str, list[Window]]
    ) -> CombinationChoice:
        """Phase two: one alternative per job under the VO policy."""
        jobs: Sequence[Job] = batch.by_priority()
        if self.exact_phase2:
            return optimal_combination(
                jobs, alternatives, self.criterion, self.vo_budget
            )
        return greedy_combination(jobs, alternatives, self.criterion, self.vo_budget)

    def plan(
        self,
        batch: JobBatch,
        pool: SlotPool,
        alternatives: Optional[dict[str, list[Window]]] = None,
    ) -> CycleReport:
        """Phases one and two on an explicit pool, without committing.

        This is the cycle kernel shared by :meth:`run_cycle` and by service
        contexts (the broker service) that own their pool, run phase one
        externally — e.g. in parallel across jobs — and commit under their
        own locking discipline.  Pass ``alternatives`` to reuse precomputed
        phase-one results; otherwise phase one runs here.
        """
        if alternatives is None:
            alternatives = self.find_alternatives(batch, pool)
        choice = self.choose_combination(batch, alternatives)
        return CycleReport(
            choice=choice,
            alternatives_found={
                job_id: len(windows) for job_id, windows in alternatives.items()
            },
            jobs=tuple(batch.by_priority()),
        )

    def run_cycle(self, batch: JobBatch, environment: Environment) -> CycleReport:
        """One full scheduling cycle: search, select, commit.

        Chosen windows are committed onto the environment's node timelines,
        so a subsequent cycle (with newly arrived jobs) sees the residual
        free time only.
        """
        report = self.plan(batch, environment.slot_pool())
        for job_id, window in report.scheduled.items():
            try:
                environment.commit_window(window)
            except Exception as error:  # pragma: no cover - defensive
                raise SchedulingError(
                    f"committing window for job {job_id} failed: {error}"
                ) from error
        return report
