"""Multi-cycle job-flow simulation: the VO's steady-state behaviour.

The paper's economic model targets *job-flow level scheduling*: batches of
user jobs arrive over time, each cycle schedules what fits, deferred jobs
wait for the next cycle, and the resource picture keeps changing under
local load.  This driver wires the pieces — job arrivals
(:class:`~repro.simulation.JobGenerator`), the two-phase
:class:`~repro.scheduling.BatchScheduler`, between-cycle churn
(:mod:`repro.scheduling.updates`) — into a reproducible simulation with
per-cycle and aggregate statistics, so VO policies (the phase-two
criterion, the search algorithm, budgets) can be compared end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.environment.generator import Environment, EnvironmentConfig, EnvironmentGenerator
from repro.model.errors import ConfigurationError
from repro.model.job import Job, JobBatch
from repro.scheduling.metascheduler import BatchScheduler
from repro.scheduling.updates import UpdateModel, apply_updates
from repro.analysis.fairness import FairnessReport
from repro.simulation.jobgen import JobGenerator
from repro.simulation.metrics import RunningStat
from repro.simulation.trace import DEFERRED, DROPPED, SCHEDULED, FlowTrace


@dataclass(frozen=True)
class FlowConfig:
    """Parameters of a job-flow simulation."""

    cycles: int = 10
    arrivals_per_cycle: int = 4
    max_deferrals: int = 3
    environment: EnvironmentConfig = field(default_factory=lambda: EnvironmentConfig(node_count=60))
    updates: Optional[UpdateModel] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {self.cycles}")
        if self.arrivals_per_cycle < 0:
            raise ConfigurationError(
                f"arrivals_per_cycle must be >= 0, got {self.arrivals_per_cycle}"
            )
        if self.max_deferrals < 0:
            raise ConfigurationError(
                f"max_deferrals must be >= 0, got {self.max_deferrals}"
            )


@dataclass
class CycleStats:
    """Per-cycle record of a flow simulation."""

    cycle: int
    submitted: int
    scheduled: int
    deferred: int
    dropped: int
    total_cost: float
    makespan: float
    free_time_after: float


@dataclass
class FlowResult:
    """Aggregate outcome of a job-flow simulation."""

    cycles: list[CycleStats] = field(default_factory=list)
    scheduled_total: int = 0
    dropped_total: int = 0
    cost: RunningStat = field(default_factory=RunningStat)
    waiting_cycles: RunningStat = field(default_factory=RunningStat)
    #: Attempt-weighted per-owner service: a deferred job contributes one
    #: submission per cycle it waited, so owners whose jobs linger score a
    #: lower service rate.
    fairness: FairnessReport = field(default_factory=FairnessReport)

    @property
    def throughput(self) -> float:
        """Scheduled jobs per cycle."""
        if not self.cycles:
            return 0.0
        return self.scheduled_total / len(self.cycles)

    @property
    def drop_rate(self) -> float:
        """Dropped jobs as a fraction of all resolved jobs."""
        total = self.scheduled_total + self.dropped_total
        if total == 0:
            return 0.0
        return self.dropped_total / total


class JobFlowSimulation:
    """Drives batches of arriving jobs through repeated scheduling cycles.

    Deferred jobs re-enter the next cycle's batch with a priority boost
    (ageing); a job deferred more than ``max_deferrals`` times is dropped,
    which models users walking away — and keeps the backlog bounded when
    the environment saturates.
    """

    def __init__(
        self,
        config: FlowConfig,
        scheduler: Optional[BatchScheduler] = None,
        job_generator: Optional[JobGenerator] = None,
        trace: Optional[FlowTrace] = None,
    ):
        self.config = config
        self.scheduler = scheduler if scheduler is not None else BatchScheduler()
        self.trace = trace
        self._rng = np.random.default_rng(config.seed)
        self.job_generator = (
            job_generator
            if job_generator is not None
            else JobGenerator(rng=self._rng)
        )
        self.environment: Environment = EnvironmentGenerator(
            config.environment, rng=self._rng
        ).generate()
        self._backlog: list[tuple[Job, int]] = []  # (job, deferral count)
        self._arrival_cycle: dict[str, int] = {}

    def _build_batch(self, cycle: int) -> JobBatch:
        batch = JobBatch()
        for job, deferrals in self._backlog:
            # Ageing: each deferral bumps the priority.
            batch.add(
                Job(
                    job.job_id,
                    job.request,
                    priority=job.priority + deferrals,
                    owner=job.owner,
                )
            )
        for _ in range(self.config.arrivals_per_cycle):
            job = self.job_generator.generate_job(
                job_id=f"c{cycle}-{self.job_generator._counter}"
            )
            batch.add(job)
            self._arrival_cycle[job.job_id] = cycle
        return batch

    def run_cycle(self, cycle: int, result: FlowResult) -> CycleStats:
        """Run one cycle: build the batch, schedule, account, churn."""
        batch = self._build_batch(cycle)
        deferral_count = {job.job_id: count for job, count in self._backlog}
        report = self.scheduler.run_cycle(batch, self.environment)

        dropped = 0
        new_backlog: list[tuple[Job, int]] = []
        for job in batch.jobs:
            window = report.scheduled.get(job.job_id)
            result.fairness.record(job, window)
            if window is not None:
                result.scheduled_total += 1
                result.cost.add(window.total_cost)
                result.waiting_cycles.add(
                    float(cycle - self._arrival_cycle.get(job.job_id, cycle))
                )
                if self.trace is not None:
                    self.trace.record(cycle, job, SCHEDULED, window)
                continue
            deferrals = deferral_count.get(job.job_id, 0) + 1
            if deferrals > self.config.max_deferrals:
                dropped += 1
                result.dropped_total += 1
                if self.trace is not None:
                    self.trace.record(cycle, job, DROPPED)
            else:
                new_backlog.append((job, deferrals))
                if self.trace is not None:
                    self.trace.record(cycle, job, DEFERRED)
        self._backlog = new_backlog

        if self.config.updates is not None:
            apply_updates(self.environment, self.config.updates, self._rng)

        stats = CycleStats(
            cycle=cycle,
            submitted=len(batch),
            scheduled=report.choice.scheduled_count,
            deferred=len(new_backlog),
            dropped=dropped,
            total_cost=report.choice.total_cost(),
            makespan=report.choice.makespan(),
            free_time_after=self.environment.slot_pool().total_free_time(),
        )
        result.cycles.append(stats)
        return stats

    def run(self) -> FlowResult:
        """Run the configured number of cycles and return the aggregates."""
        result = FlowResult()
        for cycle in range(self.config.cycles):
            self.run_cycle(cycle, result)
        return result
