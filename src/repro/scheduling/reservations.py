"""Advance-reservation ledger over an environment.

The grid systems the paper positions itself against (its refs [10-12])
co-allocate via *advance reservations*: a window is not just selected but
booked, and bookings can later be cancelled (user withdraws, better offer
found, co-allocation partner failed).  The ledger tracks the window each
job booked, commits it onto the node timelines, and can release it again —
returning the spans to the published slots for subsequent cycles.

This closes the loop the paper leaves open between "selecting an
alternative" and "holding the resources": the metascheduler books phase-2
winners, and a deferred-then-rescheduled job can atomically swap its
booking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.environment.generator import Environment
from repro.model.errors import SchedulingError
from repro.model.window import Window


@dataclass(frozen=True)
class Reservation:
    """One booked co-allocation."""

    reservation_id: str
    job_id: str
    window: Window

    @property
    def spans(self) -> list[tuple[int, float, float]]:
        """(node_id, start, end) triples this reservation holds."""
        return [
            (
                ws.slot.node.node_id,
                self.window.start,
                self.window.start + ws.required_time,
            )
            for ws in self.window.slots
        ]


@dataclass
class ReservationLedger:
    """Book, query and cancel window reservations on one environment."""

    environment: Environment
    _active: dict[str, Reservation] = field(default_factory=dict)
    _counter: int = 0

    def book(self, job_id: str, window: Window) -> Reservation:
        """Commit ``window`` onto the timelines and record the booking.

        Raises :class:`SchedulingError` if any span is no longer free
        (e.g. local load arrived since selection) — in that case nothing
        is committed (all-or-nothing).
        """
        for node_id, start, end in (
            (ws.slot.node.node_id, window.start, window.start + ws.required_time)
            for ws in window.slots
        ):
            timeline = self.environment.timelines.get(node_id)
            if timeline is None:
                raise SchedulingError(f"unknown node {node_id} in window for {job_id}")
            if not timeline.is_free(start, end):
                raise SchedulingError(
                    f"cannot book job {job_id}: [{start:g}, {end:g}) on node "
                    f"{node_id} is no longer free"
                )
        self.environment.commit_window(window)
        self._counter += 1
        reservation = Reservation(
            reservation_id=f"rsv-{self._counter}", job_id=job_id, window=window
        )
        self._active[reservation.reservation_id] = reservation
        return reservation

    def cancel(self, reservation_id: str) -> None:
        """Release a booking; its spans return to the free pool."""
        reservation = self._active.pop(reservation_id, None)
        if reservation is None:
            raise SchedulingError(f"unknown reservation {reservation_id!r}")
        for node_id, start, end in reservation.spans:
            self.environment.timelines[node_id].remove_busy(start, end)

    def rebook(self, reservation_id: str, window: Window) -> Reservation:
        """Atomically replace a booking with a new window.

        Cancels the old booking first (so the new window may reuse its
        spans); if booking the new window fails, the old booking is
        restored and the error propagates.
        """
        old = self._active.get(reservation_id)
        if old is None:
            raise SchedulingError(f"unknown reservation {reservation_id!r}")
        self.cancel(reservation_id)
        try:
            return self.book(old.job_id, window)
        except SchedulingError:
            restored = self.book(old.job_id, old.window)
            self._active[reservation_id] = Reservation(
                reservation_id=reservation_id,
                job_id=old.job_id,
                window=old.window,
            )
            del self._active[restored.reservation_id]
            raise

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, reservation_id: str) -> Optional[Reservation]:
        """The active reservation with this id, or ``None``."""
        return self._active.get(reservation_id)

    def for_job(self, job_id: str) -> list[Reservation]:
        """Active reservations held by one job."""
        return [r for r in self._active.values() if r.job_id == job_id]

    def active(self) -> list[Reservation]:
        """All active reservations."""
        return list(self._active.values())

    def booked_time(self) -> float:
        """Total node-time currently held by active reservations."""
        return sum(
            reservation.window.processor_time for reservation in self._active.values()
        )
