"""Domain model: nodes, slots, jobs, windows, timelines and slot pools."""

from repro.model.errors import (
    AllocationError,
    ConfigurationError,
    InvalidIntervalError,
    InvalidRequestError,
    ModelError,
    ReproError,
    SchedulingError,
    WindowValidationError,
)
from repro.model.job import Job, JobBatch, ResourceRequest
from repro.model.resource import CpuNode, NodeSpec, matches_spec
from repro.model.slot import TIME_EPSILON, Slot
from repro.model.slotpool import SlotPool
from repro.model.timeline import Timeline
from repro.model.window import COST_EPSILON, Window, WindowSlot

__all__ = [
    "AllocationError",
    "ConfigurationError",
    "COST_EPSILON",
    "CpuNode",
    "InvalidIntervalError",
    "InvalidRequestError",
    "Job",
    "JobBatch",
    "matches_spec",
    "ModelError",
    "NodeSpec",
    "ReproError",
    "ResourceRequest",
    "SchedulingError",
    "Slot",
    "SlotPool",
    "TIME_EPSILON",
    "Timeline",
    "Window",
    "WindowSlot",
    "WindowValidationError",
]
