"""Columnar (structure-of-arrays) snapshots of a slot pool.

The vectorized AEP kernel (:mod:`repro.core.vectorized`) does not walk
``Slot`` objects — it precomputes eligibility, task runtime, cost and
expiry for a whole scan with numpy column arithmetic and only
materializes objects for the winning window.  This module owns that
column layout:

* :class:`SlotArrays` — per-slot columns (``start``, ``end``,
  ``node_row``) plus a *node table* of the distinct nodes behind the
  slots (performance, price, hardware spec, precomputed power draw),
  ordered by ascending ``node_id``.  Per-request quantities are
  per-*node*, so the table keeps the derived columns O(nodes) and a
  single ``take`` broadcasts them per slot.
* :class:`SlotColumnStore` — the *incremental* maintenance engine
  behind :meth:`repro.model.SlotPool.as_arrays`: mutations append or
  tombstone storage rows in O(1), dead rows are compacted periodically,
  and each snapshot is assembled from the live rows with numpy sorts
  instead of a per-slot Python rebuild.  Snapshots are byte-equal to
  :meth:`SlotArrays.from_slots` over the same slots (property-tested),
  so the vectorized kernel cannot tell the difference.
* :data:`STRUCTURED_DTYPE` / :meth:`SlotArrays.structured` — the
  flattened one-record-per-slot view (``node_id``, ``start``, ``end``,
  ``cost`` — the node's price per unit time — and ``performance``),
  used as the interchange format of shared-memory snapshots and by
  tests that cross-check columns against the object pool.
* :meth:`SlotArrays.to_shared` / :meth:`SlotArrays.from_shared` — one
  writer publishes a snapshot into a ``multiprocessing.shared_memory``
  block; N readers attach zero-copy.  Object state that numpy cannot
  carry (OS names) travels in a small pickled header inside the same
  block.

The arrays are a *snapshot*: building one from a :class:`SlotPool`
captures the pool at that instant; the pool serves one snapshot object
per mutation generation (see :meth:`repro.model.SlotPool.as_arrays`),
assembling fresh generations from the incremental store rather than
re-walking objects.
Readers that need objects back — e.g. worker processes returning
:class:`~repro.model.Window` results — rebuild value-equal ``Slot`` /
``CpuNode`` instances from the columns via :meth:`slot_objects`.
"""

from __future__ import annotations

import pickle
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.model.job import ResourceRequest
from repro.model.resource import CpuNode, NodeSpec
from repro.model.slot import Slot

#: The flat per-slot record layout named in the array API.  ``cost`` is
#: the node's price per occupied time unit (the request-independent cost
#: rate); per-request leg costs are ``cost * task_runtime`` and are
#: derived per scan, never stored.
STRUCTURED_DTYPE = np.dtype(
    [
        ("node_id", np.int64),
        ("start", np.float64),
        ("end", np.float64),
        ("cost", np.float64),
        ("performance", np.float64),
    ]
)

#: Numeric node-table columns shipped through shared memory, in order.
_NODE_COLUMNS = ("node_id", "performance", "price", "clock", "ram", "disk", "power")


@dataclass
class SlotArrays:
    """Immutable columnar snapshot of an ordered slot list.

    Per-slot columns are parallel to the start-ordered slot list; the
    node table is ordered by ascending ``node_id`` (a total order that
    incremental maintenance can keep without inspecting the slot list),
    and ``node_row[i]`` indexes slot ``i``'s node within it.
    """

    # Per-slot columns (length = slot count).
    start: np.ndarray
    end: np.ndarray
    node_row: np.ndarray
    # Node-table columns (length = distinct node count).
    node_id: np.ndarray
    performance: np.ndarray
    price: np.ndarray
    clock: np.ndarray
    ram: np.ndarray
    disk: np.ndarray
    power: np.ndarray
    os_names: list[str]
    #: Original ``Slot`` objects when built locally; rebuilt lazily from
    #: the columns after a shared-memory attach.
    _slots: Optional[list[Slot]] = None
    _nodes: Optional[list[CpuNode]] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_slots(cls, slots: Sequence[Slot]) -> "SlotArrays":
        """Snapshot a start-ordered slot sequence into columns."""
        slots = list(slots)
        count = len(slots)
        start = np.empty(count, dtype=np.float64)
        end = np.empty(count, dtype=np.float64)
        node_row = np.empty(count, dtype=np.int64)
        rows: dict[int, int] = {}
        seen: list[CpuNode] = []
        for index, slot in enumerate(slots):
            start[index] = slot.start
            end[index] = slot.end
            node = slot.node
            row = rows.get(node.node_id)
            if row is None:
                row = len(seen)
                rows[node.node_id] = row
                seen.append(node)
            node_row[index] = row
        # Table order is ascending node id — the one total order the
        # incremental store (SlotColumnStore) can maintain under
        # arbitrary node arrival/departure, so full rebuilds and
        # delta-maintained snapshots agree byte for byte.
        order = sorted(range(len(seen)), key=lambda r: seen[r].node_id)
        nodes = [seen[r] for r in order]
        remap = np.empty(len(seen), dtype=np.int64)
        remap[np.array(order, dtype=np.int64)] = np.arange(len(seen), dtype=np.int64)
        node_row = remap[node_row] if count else node_row
        return cls(
            start=start,
            end=end,
            node_row=node_row,
            node_id=np.array([n.node_id for n in nodes], dtype=np.int64),
            performance=np.array([n.performance for n in nodes], dtype=np.float64),
            price=np.array([n.price_per_unit for n in nodes], dtype=np.float64),
            clock=np.array([n.spec.clock_speed for n in nodes], dtype=np.float64),
            ram=np.array([n.spec.ram for n in nodes], dtype=np.int64),
            disk=np.array([n.spec.disk for n in nodes], dtype=np.int64),
            # power() squares the performance in Python; precomputing it
            # per node keeps the energy column byte-identical to the
            # object path (numpy's ``**`` lowers to a different libm call).
            power=np.array([n.power() for n in nodes], dtype=np.float64),
            os_names=[n.spec.os for n in nodes],
            _slots=slots,
            _nodes=nodes,
        )

    # ------------------------------------------------------------------
    # Shape and views
    # ------------------------------------------------------------------
    @property
    def slot_count(self) -> int:
        return int(self.start.shape[0])

    @property
    def node_count(self) -> int:
        return int(self.node_id.shape[0])

    def structured(self) -> np.ndarray:
        """The flat :data:`STRUCTURED_DTYPE` record array (one per slot)."""
        records = np.empty(self.slot_count, dtype=STRUCTURED_DTYPE)
        records["node_id"] = self.node_id[self.node_row]
        records["start"] = self.start
        records["end"] = self.end
        records["cost"] = self.price[self.node_row]
        records["performance"] = self.performance[self.node_row]
        return records

    def nodes(self) -> list[CpuNode]:
        """The distinct nodes, rebuilt from the table when attached remotely."""
        if self._nodes is None:
            self._nodes = [
                CpuNode(
                    node_id=int(self.node_id[row]),
                    performance=float(self.performance[row]),
                    price_per_unit=float(self.price[row]),
                    spec=NodeSpec(
                        clock_speed=float(self.clock[row]),
                        ram=int(self.ram[row]),
                        disk=int(self.disk[row]),
                        os=self.os_names[row],
                    ),
                )
                for row in range(self.node_count)
            ]
        return self._nodes

    def slot_objects(self) -> list[Slot]:
        """The slots as objects (value-equal to the snapshot's source)."""
        if self._slots is None:
            nodes = self.nodes()
            rows = self.node_row.tolist()
            starts = self.start.tolist()
            ends = self.end.tolist()
            self._slots = [
                Slot(nodes[rows[i]], starts[i], ends[i])
                for i in range(self.slot_count)
            ]
        return self._slots

    # ------------------------------------------------------------------
    # Request-derived columns
    # ------------------------------------------------------------------
    def match_mask(self, request: ResourceRequest) -> np.ndarray:
        """Per-node ``properHardwareAndSoftware`` verdicts (bool array).

        Same comparisons as :func:`repro.model.resource.matches_spec`,
        evaluated once per node instead of once per scanned slot.
        """
        mask = self.performance >= request.min_performance
        mask &= self.clock >= request.min_clock_speed
        mask &= self.ram >= request.min_ram
        mask &= self.disk >= request.min_disk
        if request.required_os is not None:
            required = request.required_os
            mask &= np.fromiter(
                (name == required for name in self.os_names),
                dtype=bool,
                count=self.node_count,
            )
        if request.max_price_per_unit is not None:
            mask &= self.price <= request.max_price_per_unit
        return mask

    # ------------------------------------------------------------------
    # Shared-memory transport
    # ------------------------------------------------------------------
    def to_shared(self, shared_memory_cls=None) -> "SharedSlotArrays":
        """Publish this snapshot into a new shared-memory block.

        The caller owns the returned handle: ``close()`` detaches,
        ``unlink()`` frees the block (writer-side, once all readers are
        done with the cycle).
        """
        if shared_memory_cls is None:
            from multiprocessing import shared_memory as _shm

            shared_memory_cls = _shm.SharedMemory
        header = pickle.dumps(
            {
                "slot_count": self.slot_count,
                "node_count": self.node_count,
                "os_names": self.os_names,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        slot_block = 3 * 8 * self.slot_count
        node_block = len(_NODE_COLUMNS) * 8 * self.node_count
        header_span = 8 + len(header)
        padding = (-header_span) % 8
        total = max(1, header_span + padding + slot_block + node_block)
        memory = shared_memory_cls(create=True, size=total)
        buffer = memory.buf
        buffer[:8] = len(header).to_bytes(8, "little")
        buffer[8 : 8 + len(header)] = header
        offset = header_span + padding
        for column in (self.start, self.end, self.node_row.astype(np.float64)):
            view = np.ndarray(self.slot_count, dtype=np.float64, buffer=buffer, offset=offset)
            view[:] = column
            offset += 8 * self.slot_count
        for name in _NODE_COLUMNS:
            column = getattr(self, name).astype(np.float64)
            view = np.ndarray(self.node_count, dtype=np.float64, buffer=buffer, offset=offset)
            view[:] = column
            offset += 8 * self.node_count
        return SharedSlotArrays(memory=memory, owner=True)

    @classmethod
    def _from_buffer(cls, buffer) -> "SlotArrays":
        """Rebuild a snapshot from a shared block's buffer (copying out)."""
        header_length = int.from_bytes(bytes(buffer[:8]), "little")
        header = pickle.loads(bytes(buffer[8 : 8 + header_length]))
        slot_count = header["slot_count"]
        node_count = header["node_count"]
        offset = 8 + header_length
        offset += (-offset) % 8

        def take(count: int, dtype) -> np.ndarray:
            nonlocal offset
            view = np.ndarray(count, dtype=np.float64, buffer=buffer, offset=offset)
            offset += 8 * count
            # Copy out so the arrays outlive the mapping; readers that
            # want true zero-copy use ``attach_view`` semantics via the
            # snapshot handle instead.
            return np.array(view, dtype=dtype)

        start = take(slot_count, np.float64)
        end = take(slot_count, np.float64)
        node_row = take(slot_count, np.int64)
        columns = {name: None for name in _NODE_COLUMNS}
        for name in _NODE_COLUMNS:
            dtype = np.int64 if name in ("node_id", "ram", "disk") else np.float64
            columns[name] = take(node_count, dtype)
        return cls(
            start=start,
            end=end,
            node_row=node_row,
            node_id=columns["node_id"],
            performance=columns["performance"],
            price=columns["price"],
            clock=columns["clock"],
            ram=columns["ram"],
            disk=columns["disk"],
            power=columns["power"],
            os_names=header["os_names"],
        )


@dataclass
class SharedSlotArrays:
    """Handle on a shared-memory slot snapshot (writer or reader side)."""

    memory: object
    owner: bool = False

    @property
    def name(self) -> str:
        """The OS-level block name readers attach with."""
        return self.memory.name

    @classmethod
    def attach(cls, name: str, shared_memory_cls=None) -> "SharedSlotArrays":
        """Open an existing snapshot block read-only (reader side)."""
        if shared_memory_cls is None:
            from multiprocessing import shared_memory as _shm

            shared_memory_cls = _shm.SharedMemory
        return cls(memory=shared_memory_cls(name=name), owner=False)

    def arrays(self) -> SlotArrays:
        """Decode the snapshot into :class:`SlotArrays`."""
        return SlotArrays._from_buffer(self.memory.buf)

    def close(self) -> None:
        """Detach this process's mapping."""
        self.memory.close()

    def unlink(self) -> None:
        """Free the block (writer side, after the cycle completes)."""
        if self.owner:
            self.memory.unlink()

    def __enter__(self) -> "SharedSlotArrays":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
        self.unlink()


class SlotColumnStore:
    """Incrementally maintained columnar state of a mutating slot pool.

    The pool's old snapshot discipline rebuilt :class:`SlotArrays` from
    scratch — a per-slot Python loop — after *any* mutation.  A
    long-running broker mutates the pool every cycle (commits, releases,
    trims, horizon extensions), so the rebuild made per-cycle snapshot
    cost O(pool) in interpreted code regardless of how small the delta
    was.  This store keeps the columns alive across mutations:

    * ``add`` appends one storage row — O(1) amortized.
    * ``discard`` tombstones the slot's row — O(1) (the row is found
      through a sort-key lookup table, not a scan).
    * dead rows are **compacted** away once they outnumber half the
      storage (and at least ``compact_min``), so storage stays
      proportional to the live pool — the flat-memory requirement of
      soak serving.
    * the start-time sort order is maintained *incrementally*: a
      permutation array (``_order``) lists the live storage rows in
      ``Slot.sort_key`` order, updated per mutation with one bisect on
      a parallel key list and one ``memmove``-style shift.  ``snapshot``
      is therefore sort-free — three fancy-index gathers plus one
      ``searchsorted`` for the node rows.  The result is byte-equal to
      ``SlotArrays.from_slots`` over the pool's ordered slots: equal
      sort keys can only order value-identical rows differently, which
      no column can observe.

    The *node table* is maintained as a reference-counted registry in
    ascending ``node_id`` order: a node enters when its first slot
    arrives and leaves when its last slot is tombstoned, so fully
    trimmed nodes never linger in snapshots.  ``generation`` increments
    on every mutation; callers cache snapshots per generation.
    """

    __slots__ = (
        "_start",
        "_end",
        "_nid",
        "_alive",
        "_size",
        "_dead",
        "_order",
        "_keys",
        "_lookup",
        "_node_objs",
        "_node_refs",
        "_sorted_ids",
        "_table",
        "generation",
        "compact_min",
    )

    #: Storage growth factor headroom for the append path.
    _INITIAL_CAPACITY = 32

    def __init__(self, compact_min: int = 64):
        self._start = np.empty(self._INITIAL_CAPACITY, dtype=np.float64)
        self._end = np.empty(self._INITIAL_CAPACITY, dtype=np.float64)
        self._nid = np.empty(self._INITIAL_CAPACITY, dtype=np.int64)
        self._alive = np.zeros(self._INITIAL_CAPACITY, dtype=bool)
        self._size = 0
        self._dead = 0
        #: Live storage rows in ``Slot.sort_key`` order (the snapshot
        #: permutation, maintained incrementally); ``_keys`` is the
        #: parallel sorted list of sort keys used to bisect positions.
        self._order = np.empty(self._INITIAL_CAPACITY, dtype=np.int64)
        self._keys: list[tuple[float, float, int]] = []
        #: sort_key -> storage rows holding that key (a list only to
        #: tolerate value-identical duplicates; popping either is
        #: correct because their column bytes are indistinguishable).
        self._lookup: dict[tuple[float, float, int], list[int]] = {}
        self._node_objs: dict[int, CpuNode] = {}
        self._node_refs: dict[int, int] = {}
        self._sorted_ids: list[int] = []
        self._table: Optional[tuple] = None
        self.generation = 0
        self.compact_min = compact_min

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def live_count(self) -> int:
        """Number of live (non-tombstoned) rows."""
        return self._size - self._dead

    @property
    def dead_count(self) -> int:
        """Number of tombstoned rows awaiting compaction."""
        return self._dead

    @property
    def storage_rows(self) -> int:
        """Rows currently occupied in storage (live + dead)."""
        return self._size

    @property
    def node_count(self) -> int:
        """Distinct nodes with at least one live slot."""
        return len(self._sorted_ids)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _ensure_capacity(self) -> None:
        if self._size < self._start.shape[0]:
            return
        capacity = max(self._INITIAL_CAPACITY, 2 * self._start.shape[0])
        for name in ("_start", "_end", "_nid", "_alive"):
            old = getattr(self, name)
            grown = np.zeros(capacity, dtype=old.dtype)
            grown[: self._size] = old[: self._size]
            setattr(self, name, grown)

    def add(self, slot: Slot) -> None:
        """Append one slot's storage row and splice it into the order.

        The column append is O(1) amortized; keeping the permutation
        sorted costs one bisect plus a contiguous shift (a single
        ``memmove``, not a numpy sort) — microseconds at soak-scale
        pools, repaid every snapshot.
        """
        self._ensure_capacity()
        row = self._size
        self._start[row] = slot.start
        self._end[row] = slot.end
        node = slot.node
        self._nid[row] = node.node_id
        self._alive[row] = True
        self._size = row + 1
        key = slot.sort_key()
        live = len(self._keys)
        if live >= self._order.shape[0]:
            grown = np.empty(max(self._INITIAL_CAPACITY, 2 * live), dtype=np.int64)
            grown[:live] = self._order[:live]
            self._order = grown
        position = bisect_right(self._keys, key)
        self._keys.insert(position, key)
        self._order[position + 1 : live + 1] = self._order[position:live]
        self._order[position] = row
        self._lookup.setdefault(key, []).append(row)
        refs = self._node_refs.get(node.node_id)
        if refs is None:
            self._node_refs[node.node_id] = 1
            self._node_objs[node.node_id] = node
            insort(self._sorted_ids, node.node_id)
            self._table = None
        else:
            self._node_refs[node.node_id] = refs + 1
        self.generation += 1

    def discard(self, slot: Slot) -> None:
        """Tombstone one slot's row and splice it out of the order."""
        key = slot.sort_key()
        rows = self._lookup[key]
        row = rows.pop()
        if not rows:
            del self._lookup[key]
        # Equal keys sit contiguously in the permutation; scan the short
        # duplicate run for the exact row the lookup table released.
        position = bisect_left(self._keys, key)
        while self._order[position] != row:  # pragma: no branch - present
            position += 1
        live = len(self._keys)
        del self._keys[position]
        self._order[position : live - 1] = self._order[position + 1 : live]
        self._alive[row] = False
        self._dead += 1
        node_id = slot.node.node_id
        refs = self._node_refs[node_id] - 1
        if refs == 0:
            # The node's last slot is gone: compact it out of the table
            # immediately so node_count/snapshots track live nodes only.
            del self._node_refs[node_id]
            del self._node_objs[node_id]
            self._sorted_ids.remove(node_id)
            self._table = None
        else:
            self._node_refs[node_id] = refs
        self.generation += 1
        if self._dead >= self.compact_min and 2 * self._dead >= self._size:
            self._compact()

    def _compact(self) -> None:
        """Drop tombstoned rows, renumbering the lookup and order tables."""
        if self._dead == 0:
            return
        live = np.flatnonzero(self._alive[: self._size])
        count = int(live.size)
        new_row = np.empty(self._size, dtype=np.int64)
        new_row[live] = np.arange(count, dtype=np.int64)
        self._start[:count] = self._start[: self._size][live]
        self._end[:count] = self._end[: self._size][live]
        self._nid[:count] = self._nid[: self._size][live]
        self._alive[:count] = True
        self._alive[count : self._size] = False
        self._size = count
        self._dead = 0
        self._order[:count] = new_row[self._order[:count]]
        renumber = new_row.tolist()
        for rows in self._lookup.values():
            rows[:] = [renumber[row] for row in rows]

    # ------------------------------------------------------------------
    # Snapshot assembly
    # ------------------------------------------------------------------
    def _table_arrays(self) -> tuple:
        """The node-table columns (cached until node arrival/departure)."""
        if self._table is None:
            nodes = [self._node_objs[node_id] for node_id in self._sorted_ids]
            self._table = (
                np.array(self._sorted_ids, dtype=np.int64),
                np.array([n.performance for n in nodes], dtype=np.float64),
                np.array([n.price_per_unit for n in nodes], dtype=np.float64),
                np.array([n.spec.clock_speed for n in nodes], dtype=np.float64),
                np.array([n.spec.ram for n in nodes], dtype=np.int64),
                np.array([n.spec.disk for n in nodes], dtype=np.int64),
                np.array([n.power() for n in nodes], dtype=np.float64),
                [n.spec.os for n in nodes],
                nodes,
            )
        return self._table

    def snapshot(self, ordered_slots: Optional[list[Slot]] = None) -> SlotArrays:
        """Assemble the live rows into a fresh :class:`SlotArrays`.

        ``ordered_slots`` optionally supplies the pool's object list so
        the snapshot's ``slot_objects()`` returns the pool's own
        instances (matching :meth:`SlotArrays.from_slots`); without it
        objects are rebuilt lazily from the columns on first use.
        """
        # The permutation is maintained per mutation, so assembly is
        # three gathers — no sort, no tombstone filtering (dead rows are
        # simply absent from the order).
        order = self._order[: len(self._keys)]
        start = self._start[order]
        end = self._end[order]
        nid = self._nid[order]
        (
            node_id,
            performance,
            price,
            clock,
            ram,
            disk,
            power,
            os_names,
            nodes,
        ) = self._table_arrays()
        node_row = np.searchsorted(node_id, nid).astype(np.int64, copy=False)
        return SlotArrays(
            start=start,
            end=end,
            node_row=node_row,
            node_id=node_id,
            performance=performance,
            price=price,
            clock=clock,
            ram=ram,
            disk=disk,
            power=power,
            os_names=list(os_names),
            _slots=ordered_slots,
            _nodes=list(nodes),
        )

    def copy(self) -> "SlotColumnStore":
        """An independent twin (numpy buffers and registries copied)."""
        twin = SlotColumnStore.__new__(SlotColumnStore)
        twin._start = self._start[: self._size].copy()
        twin._end = self._end[: self._size].copy()
        twin._nid = self._nid[: self._size].copy()
        twin._alive = self._alive[: self._size].copy()
        twin._size = self._size
        twin._dead = self._dead
        twin._order = self._order[: len(self._keys)].copy()
        twin._keys = list(self._keys)
        twin._lookup = {key: list(rows) for key, rows in self._lookup.items()}
        twin._node_objs = dict(self._node_objs)
        twin._node_refs = dict(self._node_refs)
        twin._sorted_ids = list(self._sorted_ids)
        # The table cache is immutable once built (rebuilt, never written
        # in place), so the twin may share it.
        twin._table = self._table
        twin.generation = self.generation
        twin.compact_min = self.compact_min
        return twin
