"""Columnar (structure-of-arrays) snapshots of a slot pool.

The vectorized AEP kernel (:mod:`repro.core.vectorized`) does not walk
``Slot`` objects — it precomputes eligibility, task runtime, cost and
expiry for a whole scan with numpy column arithmetic and only
materializes objects for the winning window.  This module owns that
column layout:

* :class:`SlotArrays` — per-slot columns (``start``, ``end``,
  ``node_row``) plus a *node table* of the distinct nodes behind the
  slots (performance, price, hardware spec, precomputed power draw).
  Per-request quantities are per-*node*, so the table keeps the derived
  columns O(nodes) and a single ``take`` broadcasts them per slot.
* :data:`STRUCTURED_DTYPE` / :meth:`SlotArrays.structured` — the
  flattened one-record-per-slot view (``node_id``, ``start``, ``end``,
  ``cost`` — the node's price per unit time — and ``performance``),
  used as the interchange format of shared-memory snapshots and by
  tests that cross-check columns against the object pool.
* :meth:`SlotArrays.to_shared` / :meth:`SlotArrays.from_shared` — one
  writer publishes a snapshot into a ``multiprocessing.shared_memory``
  block; N readers attach zero-copy.  Object state that numpy cannot
  carry (OS names) travels in a small pickled header inside the same
  block.

The arrays are a *snapshot*: building one from a :class:`SlotPool`
captures the pool at that instant and the pool invalidates its cached
snapshot on every mutation (see :meth:`repro.model.SlotPool.as_arrays`).
Readers that need objects back — e.g. worker processes returning
:class:`~repro.model.Window` results — rebuild value-equal ``Slot`` /
``CpuNode`` instances from the columns via :meth:`slot_objects`.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.model.job import ResourceRequest
from repro.model.resource import CpuNode, NodeSpec
from repro.model.slot import Slot

#: The flat per-slot record layout named in the array API.  ``cost`` is
#: the node's price per occupied time unit (the request-independent cost
#: rate); per-request leg costs are ``cost * task_runtime`` and are
#: derived per scan, never stored.
STRUCTURED_DTYPE = np.dtype(
    [
        ("node_id", np.int64),
        ("start", np.float64),
        ("end", np.float64),
        ("cost", np.float64),
        ("performance", np.float64),
    ]
)

#: Numeric node-table columns shipped through shared memory, in order.
_NODE_COLUMNS = ("node_id", "performance", "price", "clock", "ram", "disk", "power")


@dataclass
class SlotArrays:
    """Immutable columnar snapshot of an ordered slot list.

    Per-slot columns are parallel to the start-ordered slot list; the
    node table is ordered by first appearance in that list, and
    ``node_row[i]`` indexes slot ``i``'s node within it.
    """

    # Per-slot columns (length = slot count).
    start: np.ndarray
    end: np.ndarray
    node_row: np.ndarray
    # Node-table columns (length = distinct node count).
    node_id: np.ndarray
    performance: np.ndarray
    price: np.ndarray
    clock: np.ndarray
    ram: np.ndarray
    disk: np.ndarray
    power: np.ndarray
    os_names: list[str]
    #: Original ``Slot`` objects when built locally; rebuilt lazily from
    #: the columns after a shared-memory attach.
    _slots: Optional[list[Slot]] = None
    _nodes: Optional[list[CpuNode]] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_slots(cls, slots: Sequence[Slot]) -> "SlotArrays":
        """Snapshot a start-ordered slot sequence into columns."""
        slots = list(slots)
        count = len(slots)
        start = np.empty(count, dtype=np.float64)
        end = np.empty(count, dtype=np.float64)
        node_row = np.empty(count, dtype=np.int64)
        rows: dict[int, int] = {}
        nodes: list[CpuNode] = []
        for index, slot in enumerate(slots):
            start[index] = slot.start
            end[index] = slot.end
            node = slot.node
            row = rows.get(node.node_id)
            if row is None:
                row = len(nodes)
                rows[node.node_id] = row
                nodes.append(node)
            node_row[index] = row
        return cls(
            start=start,
            end=end,
            node_row=node_row,
            node_id=np.array([n.node_id for n in nodes], dtype=np.int64),
            performance=np.array([n.performance for n in nodes], dtype=np.float64),
            price=np.array([n.price_per_unit for n in nodes], dtype=np.float64),
            clock=np.array([n.spec.clock_speed for n in nodes], dtype=np.float64),
            ram=np.array([n.spec.ram for n in nodes], dtype=np.int64),
            disk=np.array([n.spec.disk for n in nodes], dtype=np.int64),
            # power() squares the performance in Python; precomputing it
            # per node keeps the energy column byte-identical to the
            # object path (numpy's ``**`` lowers to a different libm call).
            power=np.array([n.power() for n in nodes], dtype=np.float64),
            os_names=[n.spec.os for n in nodes],
            _slots=slots,
            _nodes=nodes,
        )

    # ------------------------------------------------------------------
    # Shape and views
    # ------------------------------------------------------------------
    @property
    def slot_count(self) -> int:
        return int(self.start.shape[0])

    @property
    def node_count(self) -> int:
        return int(self.node_id.shape[0])

    def structured(self) -> np.ndarray:
        """The flat :data:`STRUCTURED_DTYPE` record array (one per slot)."""
        records = np.empty(self.slot_count, dtype=STRUCTURED_DTYPE)
        records["node_id"] = self.node_id[self.node_row]
        records["start"] = self.start
        records["end"] = self.end
        records["cost"] = self.price[self.node_row]
        records["performance"] = self.performance[self.node_row]
        return records

    def nodes(self) -> list[CpuNode]:
        """The distinct nodes, rebuilt from the table when attached remotely."""
        if self._nodes is None:
            self._nodes = [
                CpuNode(
                    node_id=int(self.node_id[row]),
                    performance=float(self.performance[row]),
                    price_per_unit=float(self.price[row]),
                    spec=NodeSpec(
                        clock_speed=float(self.clock[row]),
                        ram=int(self.ram[row]),
                        disk=int(self.disk[row]),
                        os=self.os_names[row],
                    ),
                )
                for row in range(self.node_count)
            ]
        return self._nodes

    def slot_objects(self) -> list[Slot]:
        """The slots as objects (value-equal to the snapshot's source)."""
        if self._slots is None:
            nodes = self.nodes()
            rows = self.node_row.tolist()
            starts = self.start.tolist()
            ends = self.end.tolist()
            self._slots = [
                Slot(nodes[rows[i]], starts[i], ends[i])
                for i in range(self.slot_count)
            ]
        return self._slots

    # ------------------------------------------------------------------
    # Request-derived columns
    # ------------------------------------------------------------------
    def match_mask(self, request: ResourceRequest) -> np.ndarray:
        """Per-node ``properHardwareAndSoftware`` verdicts (bool array).

        Same comparisons as :func:`repro.model.resource.matches_spec`,
        evaluated once per node instead of once per scanned slot.
        """
        mask = self.performance >= request.min_performance
        mask &= self.clock >= request.min_clock_speed
        mask &= self.ram >= request.min_ram
        mask &= self.disk >= request.min_disk
        if request.required_os is not None:
            required = request.required_os
            mask &= np.fromiter(
                (name == required for name in self.os_names),
                dtype=bool,
                count=self.node_count,
            )
        if request.max_price_per_unit is not None:
            mask &= self.price <= request.max_price_per_unit
        return mask

    # ------------------------------------------------------------------
    # Shared-memory transport
    # ------------------------------------------------------------------
    def to_shared(self, shared_memory_cls=None) -> "SharedSlotArrays":
        """Publish this snapshot into a new shared-memory block.

        The caller owns the returned handle: ``close()`` detaches,
        ``unlink()`` frees the block (writer-side, once all readers are
        done with the cycle).
        """
        if shared_memory_cls is None:
            from multiprocessing import shared_memory as _shm

            shared_memory_cls = _shm.SharedMemory
        header = pickle.dumps(
            {
                "slot_count": self.slot_count,
                "node_count": self.node_count,
                "os_names": self.os_names,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        slot_block = 3 * 8 * self.slot_count
        node_block = len(_NODE_COLUMNS) * 8 * self.node_count
        header_span = 8 + len(header)
        padding = (-header_span) % 8
        total = max(1, header_span + padding + slot_block + node_block)
        memory = shared_memory_cls(create=True, size=total)
        buffer = memory.buf
        buffer[:8] = len(header).to_bytes(8, "little")
        buffer[8 : 8 + len(header)] = header
        offset = header_span + padding
        for column in (self.start, self.end, self.node_row.astype(np.float64)):
            view = np.ndarray(self.slot_count, dtype=np.float64, buffer=buffer, offset=offset)
            view[:] = column
            offset += 8 * self.slot_count
        for name in _NODE_COLUMNS:
            column = getattr(self, name).astype(np.float64)
            view = np.ndarray(self.node_count, dtype=np.float64, buffer=buffer, offset=offset)
            view[:] = column
            offset += 8 * self.node_count
        return SharedSlotArrays(memory=memory, owner=True)

    @classmethod
    def _from_buffer(cls, buffer) -> "SlotArrays":
        """Rebuild a snapshot from a shared block's buffer (copying out)."""
        header_length = int.from_bytes(bytes(buffer[:8]), "little")
        header = pickle.loads(bytes(buffer[8 : 8 + header_length]))
        slot_count = header["slot_count"]
        node_count = header["node_count"]
        offset = 8 + header_length
        offset += (-offset) % 8

        def take(count: int, dtype) -> np.ndarray:
            nonlocal offset
            view = np.ndarray(count, dtype=np.float64, buffer=buffer, offset=offset)
            offset += 8 * count
            # Copy out so the arrays outlive the mapping; readers that
            # want true zero-copy use ``attach_view`` semantics via the
            # snapshot handle instead.
            return np.array(view, dtype=dtype)

        start = take(slot_count, np.float64)
        end = take(slot_count, np.float64)
        node_row = take(slot_count, np.int64)
        columns = {name: None for name in _NODE_COLUMNS}
        for name in _NODE_COLUMNS:
            dtype = np.int64 if name in ("node_id", "ram", "disk") else np.float64
            columns[name] = take(node_count, dtype)
        return cls(
            start=start,
            end=end,
            node_row=node_row,
            node_id=columns["node_id"],
            performance=columns["performance"],
            price=columns["price"],
            clock=columns["clock"],
            ram=columns["ram"],
            disk=columns["disk"],
            power=columns["power"],
            os_names=header["os_names"],
        )


@dataclass
class SharedSlotArrays:
    """Handle on a shared-memory slot snapshot (writer or reader side)."""

    memory: object
    owner: bool = False

    @property
    def name(self) -> str:
        """The OS-level block name readers attach with."""
        return self.memory.name

    @classmethod
    def attach(cls, name: str, shared_memory_cls=None) -> "SharedSlotArrays":
        """Open an existing snapshot block read-only (reader side)."""
        if shared_memory_cls is None:
            from multiprocessing import shared_memory as _shm

            shared_memory_cls = _shm.SharedMemory
        return cls(memory=shared_memory_cls(name=name), owner=False)

    def arrays(self) -> SlotArrays:
        """Decode the snapshot into :class:`SlotArrays`."""
        return SlotArrays._from_buffer(self.memory.buf)

    def close(self) -> None:
        """Detach this process's mapping."""
        self.memory.close()

    def unlink(self) -> None:
        """Free the block (writer side, after the cycle completes)."""
        if self.owner:
            self.memory.unlink()

    def __enter__(self) -> "SharedSlotArrays":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
        self.unlink()
