"""Computational resources: heterogeneous, non-dedicated CPU nodes.

The paper's environment is a set of CPU nodes that differ in *performance*
(an abstract speed factor: the same task runs ``reference/performance``
times the nominal duration) and in *price per unit of occupied time*
(formed by a free-market pricing model, roughly proportional to
performance).  Nodes are non-dedicated: local, higher-priority jobs occupy
parts of the scheduling interval, and only the remaining gaps are offered
to the broker as slots.

Besides speed and price every node carries a small set of hardware /
software characteristics (clock speed, RAM, disk, operating system) because
the AEP scan first filters slots through a ``properHardwareAndSoftware``
predicate (Section 2.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.model.errors import ModelError

#: Power-model constants used by :meth:`CpuNode.power`.  The quadratic term
#: reflects the usual CMOS rule of thumb that dynamic power grows roughly
#: quadratically with the clock/performance level; the constant term is the
#: idle floor.  The paper only mentions "minimum energy consumption" as an
#: example criterion, so the exact constants are free parameters.
DEFAULT_IDLE_POWER = 1.0
DEFAULT_DYNAMIC_POWER_FACTOR = 0.05


@dataclass(frozen=True)
class NodeSpec:
    """Static hardware/software description of a node.

    These fields exist so that resource requests can express the
    characteristics mentioned in the paper's resource-request description
    ("clock speed, RAM volume, disk space, operating system etc.").
    """

    clock_speed: float = 1.0  # GHz
    ram: int = 4096  # MiB
    disk: int = 100  # GiB
    os: str = "linux"

    def __post_init__(self) -> None:
        if self.clock_speed <= 0:
            raise ModelError(f"clock_speed must be positive, got {self.clock_speed}")
        if self.ram < 0 or self.disk < 0:
            raise ModelError("ram and disk must be non-negative")


@dataclass(frozen=True)
class CpuNode:
    """A single heterogeneous CPU node offered to the virtual organization.

    Parameters
    ----------
    node_id:
        Unique identifier within one environment.
    performance:
        Relative speed factor ``p > 0``.  A task whose nominal duration is
        ``t`` at reference performance ``r`` runs for ``t * r / p`` on this
        node (see :meth:`task_runtime`).
    price_per_unit:
        Cost charged per unit of reserved time on this node.
    spec:
        Hardware/software characteristics used for request matching.
    """

    node_id: int
    performance: float
    price_per_unit: float
    spec: NodeSpec = field(default_factory=NodeSpec)

    def __post_init__(self) -> None:
        if self.performance <= 0:
            raise ModelError(f"performance must be positive, got {self.performance}")
        if self.price_per_unit < 0:
            raise ModelError(f"price_per_unit must be >= 0, got {self.price_per_unit}")

    def task_runtime(self, reservation_time: float, reference_performance: float = 1.0) -> float:
        """Duration of a task on this node.

        ``reservation_time`` is the task duration measured on a node of
        ``reference_performance``; heterogeneity scales it by the
        performance ratio.  This is the quantity the paper calls "the length
        of each slot in the window is determined by the performance rate of
        the node on which it is allocated".
        """
        if reservation_time < 0:
            raise ModelError(f"reservation_time must be >= 0, got {reservation_time}")
        if reference_performance <= 0:
            raise ModelError(
                f"reference_performance must be positive, got {reference_performance}"
            )
        return reservation_time * reference_performance / self.performance

    def usage_cost(self, duration: float) -> float:
        """Cost of reserving this node for ``duration`` time units."""
        if duration < 0:
            raise ModelError(f"duration must be >= 0, got {duration}")
        return self.price_per_unit * duration

    def power(
        self,
        idle_power: float = DEFAULT_IDLE_POWER,
        dynamic_factor: float = DEFAULT_DYNAMIC_POWER_FACTOR,
    ) -> float:
        """Electrical power drawn while busy (arbitrary units).

        Used by the ``MinEnergy`` criterion.  Energy of a task equals
        ``power() * task_runtime(...)``, which is U-shaped in performance:
        slow nodes take long, fast nodes burn more per unit of time.
        """
        return idle_power + dynamic_factor * self.performance**2

    def energy_cost(self, reservation_time: float, reference_performance: float = 1.0) -> float:
        """Energy consumed by one task of the given nominal duration."""
        return self.power() * self.task_runtime(reservation_time, reference_performance)


def matches_spec(
    node: CpuNode,
    *,
    min_performance: float = 0.0,
    min_clock_speed: float = 0.0,
    min_ram: int = 0,
    min_disk: int = 0,
    required_os: Optional[str] = None,
    max_price_per_unit: Optional[float] = None,
) -> bool:
    """Check a node against hardware/software requirements.

    This is the ``properHardwareAndSoftware`` predicate of the AEP pseudo
    code.  ``max_price_per_unit`` implements the "maximal resource price per
    time unit F" of the resource request; ``None`` disables the check.
    """
    if node.performance < min_performance:
        return False
    if node.spec.clock_speed < min_clock_speed:
        return False
    if node.spec.ram < min_ram:
        return False
    if node.spec.disk < min_disk:
        return False
    if required_os is not None and node.spec.os != required_os:
        return False
    if max_price_per_unit is not None and node.price_per_unit > max_price_per_unit:
        return False
    return True
