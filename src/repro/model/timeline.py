"""Per-node busy/free timelines.

A non-dedicated node is described by the set of busy intervals already
claimed by local and higher-priority jobs.  The timeline turns those busy
intervals into the *free* gaps that the local resource manager publishes to
the metascheduler as slots.  It is also the allocation ledger: committing a
window marks the reserved spans busy, so subsequent scheduling cycles see a
consistent picture.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field

from repro.model.errors import InvalidIntervalError, ModelError
from repro.model.resource import CpuNode
from repro.model.slot import TIME_EPSILON, Slot


@dataclass
class Timeline:
    """Busy-interval ledger for one node over a scheduling interval."""

    node: CpuNode
    interval_start: float
    interval_end: float
    _busy: list[tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.interval_end - self.interval_start <= TIME_EPSILON:
            raise InvalidIntervalError(self.interval_start, self.interval_end)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_busy(self, start: float, end: float, *, allow_overlap: bool = False) -> None:
        """Mark ``[start, end)`` busy.

        Adjacent or overlapping busy intervals are merged.  With
        ``allow_overlap=False`` (the default) a genuine overlap with an
        existing busy interval raises :class:`ModelError` — committing a
        window twice is a scheduling bug we want to surface, not hide.
        """
        if end - start <= TIME_EPSILON:
            raise InvalidIntervalError(start, end)
        if start < self.interval_start - TIME_EPSILON or end > self.interval_end + TIME_EPSILON:
            raise ModelError(
                f"busy interval [{start}, {end}) outside the scheduling interval "
                f"[{self.interval_start}, {self.interval_end})"
            )
        if not allow_overlap:
            for busy_start, busy_end in self._busy:
                if busy_start < end - TIME_EPSILON and start < busy_end - TIME_EPSILON:
                    raise ModelError(
                        f"busy interval [{start}, {end}) overlaps existing "
                        f"[{busy_start}, {busy_end}) on node {self.node.node_id}"
                    )
        insort(self._busy, (start, end))
        self._merge()

    def remove_busy(self, start: float, end: float) -> None:
        """Release ``[start, end)``: the span becomes free again.

        The span must currently be entirely busy (releasing free time is a
        bookkeeping bug we surface).  Used by reservation cancellation —
        an advance reservation that is withdrawn returns its span to the
        published slots.
        """
        if end - start <= TIME_EPSILON:
            raise InvalidIntervalError(start, end)
        covering = None
        for index, (busy_start, busy_end) in enumerate(self._busy):
            if busy_start - TIME_EPSILON <= start and end <= busy_end + TIME_EPSILON:
                covering = index
                break
        if covering is None:
            raise ModelError(
                f"cannot release [{start}, {end}) on node {self.node.node_id}: "
                "the span is not entirely busy"
            )
        busy_start, busy_end = self._busy.pop(covering)
        if start - busy_start > TIME_EPSILON:
            insort(self._busy, (busy_start, start))
        if busy_end - end > TIME_EPSILON:
            insort(self._busy, (end, busy_end))

    def _merge(self) -> None:
        merged: list[tuple[float, float]] = []
        for start, end in self._busy:
            if merged and start <= merged[-1][1] + TIME_EPSILON:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        self._busy = merged

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def busy_intervals(self) -> list[tuple[float, float]]:
        """Sorted, merged busy intervals (copies; mutation-safe)."""
        return list(self._busy)

    def busy_time(self) -> float:
        """Total busy duration inside the scheduling interval."""
        return sum(end - start for start, end in self._busy)

    def utilization(self) -> float:
        """Fraction of the scheduling interval that is busy."""
        return self.busy_time() / (self.interval_end - self.interval_start)

    def free_intervals(self, min_length: float = TIME_EPSILON) -> list[tuple[float, float]]:
        """Free gaps of at least ``min_length`` inside the interval."""
        gaps: list[tuple[float, float]] = []
        cursor = self.interval_start
        for start, end in self._busy:
            if start - cursor >= min_length:
                gaps.append((cursor, start))
            cursor = max(cursor, end)
        if self.interval_end - cursor >= min_length:
            gaps.append((cursor, self.interval_end))
        return gaps

    def free_slots(self, min_length: float = TIME_EPSILON) -> list[Slot]:
        """The free gaps as :class:`Slot` objects on this node."""
        return [Slot(self.node, start, end) for start, end in self.free_intervals(min_length)]

    def is_free(self, start: float, end: float) -> bool:
        """Whether ``[start, end)`` is entirely free."""
        if end - start <= TIME_EPSILON:
            return True
        if start < self.interval_start - TIME_EPSILON or end > self.interval_end + TIME_EPSILON:
            return False
        for busy_start, busy_end in self._busy:
            if busy_start < end - TIME_EPSILON and start < busy_end - TIME_EPSILON:
                return False
        return True
