"""Co-allocation windows — the object the slot-selection algorithms return.

A *window* is a set of ``n`` slots on distinct nodes reserved from a common
(synchronous) start time.  Because nodes are heterogeneous, each task
occupies its node for a different duration, so the window has the "rough
right edge" of the paper's Fig. 1.  The window's aggregate characteristics
(start, finish, runtime, processor time, cost, energy) are exactly the
criteria the evaluated algorithms optimize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.model.errors import WindowValidationError
from repro.model.job import ResourceRequest
from repro.model.slot import TIME_EPSILON, Slot

#: Relative slack admitted when comparing costs against the budget, to keep
#: float summation order from flipping feasibility decisions.
COST_EPSILON = 1e-6


@dataclass(frozen=True)
class WindowSlot:
    """One leg of a window: a slot plus the reservation carved out of it.

    ``required_time`` is the task duration on the slot's node and ``cost``
    the usage cost of that duration; both are precomputed once when the slot
    enters the AEP extended window, so criterion extractors work on plain
    numbers.
    """

    slot: Slot
    required_time: float
    cost: float

    @classmethod
    def for_request(cls, slot: Slot, request: ResourceRequest) -> "WindowSlot":
        """Build the window leg for ``slot`` under ``request``."""
        duration = request.task_runtime_on(slot.node)
        return cls(slot=slot, required_time=duration, cost=slot.node.usage_cost(duration))

    def fits_from(self, start: float) -> bool:
        """Whether the reservation fits into the slot when started at ``start``."""
        return self.slot.remaining_from(start) >= self.required_time - TIME_EPSILON

    def energy(self) -> float:
        """Energy drawn by the task on this leg (see :meth:`CpuNode.power`)."""
        return self.slot.node.power() * self.required_time


@dataclass(frozen=True)
class Window:
    """A co-allocation of ``len(slots)`` tasks starting at ``start``."""

    start: float
    slots: tuple[WindowSlot, ...]

    def __post_init__(self) -> None:
        if not self.slots:
            raise WindowValidationError("a window must contain at least one slot")

    # ------------------------------------------------------------------
    # Aggregate characteristics (the optimization criteria of Section 3).
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of co-allocated slots ``n``."""
        return len(self.slots)

    @property
    def runtime(self) -> float:
        """Execution time: the length of the longest composing reservation.

        "The time length of an allocated window W is defined by the
        execution time of the task that is using the slowest CPU node."
        """
        return max(ws.required_time for ws in self.slots)

    @property
    def finish(self) -> float:
        """Completion time of the window: ``start + runtime``."""
        return self.start + self.runtime

    @property
    def processor_time(self) -> float:
        """Total node (CPU) time: the sum of the reservations' lengths."""
        return sum(ws.required_time for ws in self.slots)

    @property
    def total_cost(self) -> float:
        """Total allocation cost: the sum of the individual slot costs."""
        return sum(ws.cost for ws in self.slots)

    @property
    def total_energy(self) -> float:
        """Total energy consumption of the co-allocation."""
        return sum(ws.energy() for ws in self.slots)

    @property
    def idle_time(self) -> float:
        """Co-allocation waste: node-time reserved but idle.

        In a tightly coupled parallel job every task effectively occupies
        its allocation until the *longest* task finishes (early tasks
        block on the stragglers), so a leg of duration ``t`` wastes
        ``runtime - t`` node-time units — the area above the "rough right
        edge" of the paper's Fig. 1.  Zero iff all legs run equally long.
        """
        runtime = self.runtime
        return sum(runtime - ws.required_time for ws in self.slots)

    def nodes(self) -> list[int]:
        """Identifiers of the nodes used, in slot order."""
        return [ws.slot.node.node_id for ws in self.slots]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, request: Optional[ResourceRequest] = None) -> None:
        """Check the structural invariants of a co-allocation window.

        Raises :class:`WindowValidationError` naming the violated invariant.
        When ``request`` is given, also checks the request-level constraints
        (size, budget, per-node durations and hardware matching, deadline).
        """
        node_ids = self.nodes()
        if len(set(node_ids)) != len(node_ids):
            raise WindowValidationError(f"window reuses nodes: {sorted(node_ids)}")
        for ws in self.slots:
            if ws.required_time < 0:
                raise WindowValidationError(
                    f"negative required_time {ws.required_time} on node "
                    f"{ws.slot.node.node_id}"
                )
            if not ws.slot.can_host(max(self.start, ws.slot.start), 0.0) or not ws.fits_from(
                self.start
            ):
                raise WindowValidationError(
                    f"slot on node {ws.slot.node.node_id} cannot host "
                    f"[{self.start}, {self.start + ws.required_time}): slot is "
                    f"[{ws.slot.start}, {ws.slot.end})"
                )
            if self.start < ws.slot.start - TIME_EPSILON:
                raise WindowValidationError(
                    f"window start {self.start} precedes slot start {ws.slot.start} "
                    f"on node {ws.slot.node.node_id}"
                )
        if request is not None:
            if self.size != request.node_count:
                raise WindowValidationError(
                    f"window has {self.size} slots, request needs {request.node_count}"
                )
            budget = request.effective_budget
            if self.total_cost > budget * (1.0 + COST_EPSILON) + COST_EPSILON:
                raise WindowValidationError(
                    f"window cost {self.total_cost} exceeds budget {budget}"
                )
            for ws in self.slots:
                expected = request.task_runtime_on(ws.slot.node)
                if abs(ws.required_time - expected) > TIME_EPSILON:
                    raise WindowValidationError(
                        f"required_time {ws.required_time} on node "
                        f"{ws.slot.node.node_id} does not match request "
                        f"({expected})"
                    )
                if not request.node_matches(ws.slot.node):
                    raise WindowValidationError(
                        f"node {ws.slot.node.node_id} fails the hardware/software "
                        "requirements of the request"
                    )
            if request.deadline is not None and self.finish > request.deadline + TIME_EPSILON:
                raise WindowValidationError(
                    f"window finishes at {self.finish}, after the deadline "
                    f"{request.deadline}"
                )

    def is_valid(self, request: Optional[ResourceRequest] = None) -> bool:
        """Boolean twin of :meth:`validate`."""
        try:
            self.validate(request)
        except WindowValidationError:
            return False
        return True

    def conflicts_with(self, other: "Window") -> bool:
        """Whether two windows claim overlapping time on a common node.

        Used by the batch combination selector to reject slot combinations
        that reuse the same physical time span.
        """
        mine = {
            ws.slot.node.node_id: (self.start, self.start + ws.required_time)
            for ws in self.slots
        }
        for ws in other.slots:
            span = mine.get(ws.slot.node.node_id)
            if span is None:
                continue
            other_start, other_end = other.start, other.start + ws.required_time
            if span[0] < other_end - TIME_EPSILON and other_start < span[1] - TIME_EPSILON:
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Window(start={self.start:g}, n={self.size}, runtime={self.runtime:g}, "
            f"cost={self.total_cost:g}, nodes={self.nodes()})"
        )
