"""The ordered slot list ("slot pool") the selection algorithms scan.

The AEP family requires the list of all available slots *ordered by
non-decreasing start time* — that ordering is what makes a single linear
scan sufficient.  The pool maintains that order, and implements the
"cutting" operation of the CSA scheme: once a window is allocated, the
reserved spans are removed from the affected slots and the usable
remainders are re-inserted, so the next search sees only genuinely free
time.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.model.errors import AllocationError
from repro.model.slot import TIME_EPSILON, Slot
from repro.model.window import Window


@dataclass
class SlotPool:
    """A mutable, start-time-ordered collection of free slots.

    Parameters
    ----------
    min_usable_length:
        Remainders shorter than this are dropped when a window is cut out.
        The paper's environment has local jobs of length >= 10, so by
        default any positive remainder is kept; raising the threshold is the
        "cutting policy" ablation discussed in DESIGN.md.
    """

    min_usable_length: float = TIME_EPSILON
    _slots: list[tuple[tuple[float, float, int], Slot]] = field(default_factory=list)

    @classmethod
    def from_slots(cls, slots: Iterable[Slot], min_usable_length: float = TIME_EPSILON) -> "SlotPool":
        """Build a pool from an iterable of slots."""
        pool = cls(min_usable_length=min_usable_length)
        for slot in slots:
            pool.add(slot)
        return pool

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[Slot]:
        """Iterate slots by non-decreasing start time."""
        return (slot for _, slot in self._slots)

    def ordered(self) -> list[Slot]:
        """The slots as a list, ordered by non-decreasing start time."""
        return [slot for _, slot in self._slots]

    def __contains__(self, slot: Slot) -> bool:
        return any(existing == slot for _, existing in self._slots)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, slot: Slot, coalesce: bool = True) -> None:
        """Insert a slot, keeping the start-time order.

        By default the new slot is *coalesced* with touching slots of the
        same node already in the pool (identical node, hence identical
        price and performance; gap within :data:`TIME_EPSILON`), so
        repeated cut/release cycles do not fragment the pool into ever
        shorter spans.  Pass ``coalesce=False`` to insert verbatim.
        """
        if slot.length < self.min_usable_length - TIME_EPSILON:
            return
        if coalesce:
            slot = self._coalesce(slot)
        insort(self._slots, (slot.sort_key(), slot))

    def _coalesce(self, slot: Slot) -> Slot:
        """Absorb same-node neighbours touching ``slot`` and return the union.

        In a per-node-disjoint pool at most one slot can end at ``slot.start``
        and at most one can start at ``slot.end``; both are removed from the
        pool and the merged span is returned for insertion.
        """
        left_index: Optional[int] = None
        right_index: Optional[int] = None
        for index, (_, other) in enumerate(self._slots):
            if other.node != slot.node:
                continue
            if abs(other.end - slot.start) <= TIME_EPSILON:
                left_index = index
            elif abs(slot.end - other.start) <= TIME_EPSILON:
                right_index = index
        if left_index is None and right_index is None:
            return slot
        start = slot.start if left_index is None else self._slots[left_index][1].start
        end = slot.end if right_index is None else self._slots[right_index][1].end
        for index in sorted(
            (i for i in (left_index, right_index) if i is not None), reverse=True
        ):
            del self._slots[index]
        return Slot(slot.node, start, end)

    def remove(self, slot: Slot) -> None:
        """Remove one slot; raises :class:`AllocationError` if absent."""
        entry = (slot.sort_key(), slot)
        index = self._find(entry)
        if index is None:
            raise AllocationError(f"slot not in pool: {slot!r}")
        del self._slots[index]

    def _find(self, entry: tuple[tuple[float, float, int], Slot]) -> Optional[int]:
        from bisect import bisect_left

        index = bisect_left(self._slots, entry)
        while index < len(self._slots) and self._slots[index][0] == entry[0]:
            if self._slots[index][1] == entry[1]:
                return index
            index += 1
        return None

    def cut_window(self, window: Window, mode: str = "split") -> None:
        """Remove a window's reservations from the pool.

        This is the operation the CSA scheme performs between consecutive
        AMP runs so that the alternatives it accumulates are disjoint (the
        "cutting" of reference [17]).  Two policies:

        * ``mode="split"`` — carve the span ``[window.start, window.start +
          required_time)`` out of each used slot and re-insert remainders
          of at least ``min_usable_length``.  Maximizes slot reuse; this is
          what a final allocation does.
        * ``mode="consume"`` — drop each used slot entirely.  This is the
          coarser policy whose alternative counts match the paper's CSA
          statistics (~57 alternatives from ~470 slots in the base
          environment); see DESIGN.md's cutting-policy ablation.
        """
        if mode not in ("split", "consume"):
            raise ValueError(f"unknown cut mode {mode!r}")
        for ws in window.slots:
            if not ws.fits_from(window.start):
                raise AllocationError(
                    f"window leg on node {ws.slot.node.node_id} does not fit its slot"
                )
            self.remove(ws.slot)
            if mode == "consume":
                continue
            reservation_start = window.start
            reservation_end = window.start + ws.required_time
            for remainder in ws.slot.split(
                reservation_start, reservation_end, self.min_usable_length
            ):
                self.add(remainder)

    def commit_window(self, window: Window, mode: str = "split") -> None:
        """Cut a window out of the pool by *span containment*.

        :meth:`cut_window` removes the exact slot objects a window
        references, which is right when the window was just searched on
        this very pool state.  A broker-service cycle instead commits
        several windows chosen on a common snapshot: an earlier commit may
        already have replaced a leg's slot with its remainders, so each
        leg is located by finding the current pool slot that contains its
        reserved span (phase two guarantees the spans themselves are
        disjoint).  Raises :class:`AllocationError` when no containing
        slot exists — e.g. the span was lost to a sub-threshold remainder
        drop on a pool with a raised ``min_usable_length``.
        """
        if mode not in ("split", "consume"):
            raise ValueError(f"unknown cut mode {mode!r}")
        for ws in window.slots:
            span_start = window.start
            span_end = window.start + ws.required_time
            host: Optional[Slot] = None
            for _, slot in self._slots:
                if slot.node.node_id == ws.slot.node.node_id and slot.contains(
                    span_start, span_end
                ):
                    host = slot
                    break
            if host is None:
                raise AllocationError(
                    f"no free slot on node {ws.slot.node.node_id} contains the "
                    f"reserved span [{span_start:g}, {span_end:g})"
                )
            self.remove(host)
            if mode == "consume":
                continue
            for remainder in host.split(span_start, span_end, self.min_usable_length):
                self.add(remainder)

    def release(self, window: Window) -> None:
        """Return a committed window's reservations to the pool.

        The inverse of :meth:`cut_window`: each leg's reserved span
        ``[window.start, window.start + required_time)`` is re-inserted and
        coalesced with adjacent same-node slots, so a cut followed by a
        release leaves the pool as it started (up to sub-threshold
        remainders dropped by the cut).  The slot lifecycle of the broker
        service relies on this to retire finished jobs without leaking or
        fragmenting capacity.

        Raises :class:`AllocationError` when any released span overlaps
        free time already in the pool (the signature of a double release);
        the pool is left unchanged in that case.
        """
        spans = [
            (ws.slot.node, window.start, window.start + ws.required_time)
            for ws in window.slots
        ]
        for node, span_start, span_end in spans:
            for slot in self:
                if slot.node.node_id != node.node_id:
                    continue
                if (
                    slot.start < span_end - TIME_EPSILON
                    and span_start < slot.end - TIME_EPSILON
                ):
                    raise AllocationError(
                        f"released span [{span_start:g}, {span_end:g}) on node "
                        f"{node.node_id} overlaps free slot "
                        f"[{slot.start:g}, {slot.end:g}) — double release?"
                    )
        for node, span_start, span_end in spans:
            self.add(Slot(node, span_start, span_end))

    def trim_before(self, time: float) -> int:
        """Drop free time earlier than ``time`` (virtual-clock advance).

        Slots ending at or before ``time`` are removed; slots straddling it
        are truncated to ``[time, end)`` (dropped entirely when the usable
        tail falls below ``min_usable_length``).  Returns the number of
        slots removed or truncated.  The broker service calls this at the
        start of every cycle so searches only ever see future time.
        """
        changed = 0
        rebuilt: list[tuple[tuple[float, float, int], Slot]] = []
        for entry in self._slots:
            slot = entry[1]
            if slot.end <= time + TIME_EPSILON:
                changed += 1
                continue
            if slot.start < time - TIME_EPSILON:
                changed += 1
                tail = slot.end - time
                if tail > TIME_EPSILON and tail >= self.min_usable_length - TIME_EPSILON:
                    trimmed = Slot(slot.node, time, slot.end)
                    rebuilt.append((trimmed.sort_key(), trimmed))
                continue
            rebuilt.append(entry)
        if changed:
            rebuilt.sort()
            self._slots = rebuilt
        return changed

    def copy(self) -> "SlotPool":
        """A shallow copy (slots are immutable, so this is fully safe)."""
        twin = SlotPool(min_usable_length=self.min_usable_length)
        twin._slots = list(self._slots)
        return twin

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def total_free_time(self) -> float:
        """Sum of all slot lengths in the pool."""
        return sum(slot.length for slot in self)

    def by_node(self) -> dict[int, list[Slot]]:
        """Slots grouped by node id (each group start-ordered)."""
        groups: dict[int, list[Slot]] = {}
        for slot in self:
            groups.setdefault(slot.node.node_id, []).append(slot)
        return groups

    def node_count(self) -> int:
        """Number of distinct nodes contributing at least one slot."""
        return len({slot.node.node_id for slot in self})

    def assert_disjoint_per_node(self) -> None:
        """Invariant check: slots of one node never overlap.

        Primarily used by the test suite and by debugging sessions; a pool
        produced by the environment generator and mutated only through
        :meth:`cut_window` always satisfies it.
        """
        for node_id, slots in self.by_node().items():
            for left, right in zip(slots, slots[1:]):
                if left.overlaps(right):
                    raise AllocationError(
                        f"overlapping slots on node {node_id}: {left!r} / {right!r}"
                    )
