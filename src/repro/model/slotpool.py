"""The ordered slot list ("slot pool") the selection algorithms scan.

The AEP family requires the list of all available slots *ordered by
non-decreasing start time* — that ordering is what makes a single linear
scan sufficient.  The pool maintains that order, and implements the
"cutting" operation of the CSA scheme: once a window is allocated, the
reserved spans are removed from the affected slots and the usable
remainders are re-inserted, so the next search sees only genuinely free
time.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.model.errors import AllocationError
from repro.model.slot import TIME_EPSILON, Slot
from repro.model.slotarrays import SlotArrays, SlotColumnStore
from repro.model.window import Window

#: Tolerance for coalescing two same-node slots across a gap: spans whose
#: endpoints are within one :data:`TIME_EPSILON` are considered touching.
#: This is the *same* single-epsilon rule the usable-length admission
#: check applies — one epsilon of slack on the time axis, never two.
COALESCE_GAP = TIME_EPSILON


def _find_entry(
    entries: list[tuple[tuple[float, float, int], Slot]],
    entry: tuple[tuple[float, float, int], Slot],
) -> Optional[int]:
    """Index of ``entry`` in a sorted entry list, or ``None`` if absent.

    Bisects to the first equal sort key, then compares slots by equality
    (several distinct slots may share a key only through float collisions,
    so the scan is almost always a single comparison).
    """
    index = bisect_left(entries, entry)
    while index < len(entries) and entries[index][0] == entry[0]:
        if entries[index][1] == entry[1]:
            return index
        index += 1
    return None


@dataclass
class SlotPool:
    """A mutable, start-time-ordered collection of free slots.

    Parameters
    ----------
    min_usable_length:
        Remainders shorter than this are dropped when a window is cut out.
        The paper's environment has local jobs of length >= 10, so by
        default any positive remainder is kept; raising the threshold is the
        "cutting policy" ablation discussed in DESIGN.md.
    """

    min_usable_length: float = TIME_EPSILON
    _slots: list[tuple[tuple[float, float, int], Slot]] = field(default_factory=list)
    #: Per-node index: node_id -> the node's entries, same tuples as
    #: ``_slots`` and kept in the same (total) order.  Node-scoped
    #: operations — coalescing, host lookup, overlap checks — walk one
    #: short bucket instead of the whole pool, and ``node_count`` is O(1)
    #: (empty buckets are deleted eagerly).
    _by_node: dict[int, list[tuple[tuple[float, float, int], Slot]]] = field(
        default_factory=dict
    )
    #: Incrementally maintained columnar state: every mutation appends
    #: or tombstones storage rows in O(1) instead of invalidating a
    #: cached snapshot, so :meth:`as_arrays` never pays a per-slot
    #: Python rebuild (see :class:`~repro.model.slotarrays.SlotColumnStore`).
    _store: SlotColumnStore = field(
        default_factory=SlotColumnStore, repr=False, compare=False
    )
    #: The snapshot served at ``_cache_generation`` (reused until the
    #: next mutation, so unchanged pools keep their scan-plan caches).
    _cache: Optional[SlotArrays] = field(default=None, repr=False, compare=False)
    _cache_generation: int = field(default=-1, repr=False, compare=False)

    @classmethod
    def from_slots(cls, slots: Iterable[Slot], min_usable_length: float = TIME_EPSILON) -> "SlotPool":
        """Build a pool from an iterable of slots."""
        pool = cls(min_usable_length=min_usable_length)
        for slot in slots:
            pool.add(slot)
        return pool

    @classmethod
    def from_arrays(
        cls, arrays: SlotArrays, min_usable_length: float = TIME_EPSILON
    ) -> "SlotPool":
        """Rebuild a pool from a columnar snapshot (shared-memory readers).

        Slots are inserted verbatim (no coalescing): the snapshot was
        taken from a pool whose :meth:`add` already coalesced, so
        re-coalescing could only merge spans the source kept apart.  The
        snapshot itself is installed as the rebuilt pool's columnar
        cache — its row order is exactly the pool's slot order — so the
        vectorized scan path never re-columnarizes what the writer
        already published.
        """
        pool = cls(min_usable_length=min_usable_length)
        for slot in arrays.slot_objects():
            pool.add(slot, coalesce=False)
        pool._cache = arrays
        pool._cache_generation = pool._store.generation
        return pool

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[Slot]:
        """Iterate slots by non-decreasing start time."""
        return (slot for _, slot in self._slots)

    def ordered(self) -> list[Slot]:
        """The slots as a list, ordered by non-decreasing start time."""
        return [slot for _, slot in self._slots]

    def __contains__(self, slot: Slot) -> bool:
        bucket = self._by_node.get(slot.node.node_id)
        if not bucket:
            return False
        return _find_entry(bucket, (slot.sort_key(), slot)) is not None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, slot: Slot, coalesce: bool = True) -> None:
        """Insert a slot, keeping the start-time order.

        By default the new slot is *coalesced* with touching slots of the
        same node already in the pool (identical node, hence identical
        price and performance; gap within :data:`COALESCE_GAP`), so
        repeated cut/release cycles do not fragment the pool into ever
        shorter spans.  Pass ``coalesce=False`` to insert verbatim.

        Slots shorter than ``min_usable_length`` are dropped — the same
        strict threshold :meth:`repro.model.Slot.split` applies to cut
        remainders.  (An earlier revision subtracted a further
        :data:`TIME_EPSILON` here, quietly admitting slots up to one
        epsilon *shorter* than the configured cutting threshold.)
        """
        if slot.length < self.min_usable_length:
            return
        if coalesce:
            slot = self._coalesce(slot)
        entry = (slot.sort_key(), slot)
        insort(self._slots, entry)
        insort(self._by_node.setdefault(slot.node.node_id, []), entry)
        self._store.add(slot)

    def _coalesce(self, slot: Slot) -> Slot:
        """Absorb same-node neighbours touching ``slot`` and return the union.

        In a per-node-disjoint pool at most one slot can end at ``slot.start``
        and at most one can start at ``slot.end``; both are removed from the
        pool and the merged span is returned for insertion.  Only the
        node's own index bucket is inspected.
        """
        bucket = self._by_node.get(slot.node.node_id)
        if not bucket:
            return slot
        left: Optional[Slot] = None
        right: Optional[Slot] = None
        for _, other in bucket:
            if abs(other.end - slot.start) <= COALESCE_GAP:
                left = other
            elif abs(slot.end - other.start) <= COALESCE_GAP:
                right = other
        if left is None and right is None:
            return slot
        start = slot.start if left is None else left.start
        end = slot.end if right is None else right.end
        for neighbour in (left, right):
            if neighbour is not None:
                self.remove(neighbour)
        return Slot(slot.node, start, end)

    def remove(self, slot: Slot) -> None:
        """Remove one slot; raises :class:`AllocationError` if absent."""
        entry = (slot.sort_key(), slot)
        index = _find_entry(self._slots, entry)
        if index is None:
            raise AllocationError(f"slot not in pool: {slot!r}")
        del self._slots[index]
        self._bucket_discard(entry)
        self._store.discard(slot)

    def _bucket_discard(self, entry: tuple[tuple[float, float, int], Slot]) -> None:
        """Drop ``entry`` (known present) from its node's index bucket."""
        node_id = entry[1].node.node_id
        bucket = self._by_node[node_id]
        index = _find_entry(bucket, entry)
        if index is not None:  # pragma: no branch - present by invariant
            del bucket[index]
        if not bucket:
            del self._by_node[node_id]

    def cut_window(self, window: Window, mode: str = "split") -> None:
        """Remove a window's reservations from the pool.

        This is the operation the CSA scheme performs between consecutive
        AMP runs so that the alternatives it accumulates are disjoint (the
        "cutting" of reference [17]).  Two policies:

        * ``mode="split"`` — carve the span ``[window.start, window.start +
          required_time)`` out of each used slot and re-insert remainders
          of at least ``min_usable_length``.  Maximizes slot reuse; this is
          what a final allocation does.
        * ``mode="consume"`` — drop each used slot entirely.  This is the
          coarser policy whose alternative counts match the paper's CSA
          statistics (~57 alternatives from ~470 slots in the base
          environment); see DESIGN.md's cutting-policy ablation.
        """
        if mode not in ("split", "consume"):
            raise ValueError(f"unknown cut mode {mode!r}")
        for ws in window.slots:
            if not ws.fits_from(window.start):
                raise AllocationError(
                    f"window leg on node {ws.slot.node.node_id} does not fit its slot"
                )
            self.remove(ws.slot)
            if mode == "consume":
                continue
            reservation_start = window.start
            reservation_end = window.start + ws.required_time
            for remainder in ws.slot.split(
                reservation_start, reservation_end, self.min_usable_length
            ):
                self.add(remainder)

    def commit_window(self, window: Window, mode: str = "split") -> None:
        """Cut a window out of the pool by *span containment*.

        :meth:`cut_window` removes the exact slot objects a window
        references, which is right when the window was just searched on
        this very pool state.  A broker-service cycle instead commits
        several windows chosen on a common snapshot: an earlier commit may
        already have replaced a leg's slot with its remainders, so each
        leg is located by finding the current pool slot that contains its
        reserved span (phase two guarantees the spans themselves are
        disjoint).  Raises :class:`AllocationError` when no containing
        slot exists — e.g. the span was lost to a sub-threshold remainder
        drop on a pool with a raised ``min_usable_length``.
        """
        if mode not in ("split", "consume"):
            raise ValueError(f"unknown cut mode {mode!r}")
        for ws in window.slots:
            span_start = window.start
            span_end = window.start + ws.required_time
            host: Optional[Slot] = None
            for _, slot in self._by_node.get(ws.slot.node.node_id, ()):
                if slot.contains(span_start, span_end):
                    host = slot
                    break
            if host is None:
                raise AllocationError(
                    f"no free slot on node {ws.slot.node.node_id} contains the "
                    f"reserved span [{span_start:g}, {span_end:g})"
                )
            self.remove(host)
            if mode == "consume":
                continue
            for remainder in host.split(span_start, span_end, self.min_usable_length):
                self.add(remainder)

    def release(self, window: Window) -> None:
        """Return a committed window's reservations to the pool.

        The inverse of :meth:`cut_window`: each leg's reserved span
        ``[window.start, window.start + required_time)`` is re-inserted and
        coalesced with adjacent same-node slots, so a cut followed by a
        release leaves the pool as it started (up to sub-threshold
        remainders dropped by the cut).  The slot lifecycle of the broker
        service relies on this to retire finished jobs without leaking or
        fragmenting capacity.

        Raises :class:`AllocationError` when any released span overlaps
        free time already in the pool (the signature of a double release);
        the pool is left unchanged in that case.
        """
        spans = [
            (ws.slot.node, window.start, window.start + ws.required_time)
            for ws in window.slots
        ]
        for node, span_start, span_end in spans:
            for _, slot in self._by_node.get(node.node_id, ()):
                if (
                    slot.start < span_end - TIME_EPSILON
                    and span_start < slot.end - TIME_EPSILON
                ):
                    raise AllocationError(
                        f"released span [{span_start:g}, {span_end:g}) on node "
                        f"{node.node_id} overlaps free slot "
                        f"[{slot.start:g}, {slot.end:g}) — double release?"
                    )
        for node, span_start, span_end in spans:
            self.add(Slot(node, span_start, span_end))

    def trim_before(self, time: float) -> int:
        """Drop free time earlier than ``time`` (virtual-clock advance).

        Slots ending at or before ``time`` are removed; slots straddling it
        are truncated to ``[time, end)`` (dropped entirely when the usable
        tail falls below ``min_usable_length``).  Returns the number of
        slots removed or truncated.  The broker service calls this at the
        start of every cycle so searches only ever see future time.
        """
        # Every slot starting at or after ``time + TIME_EPSILON`` is kept
        # untouched (its end exceeds its start, hence the cutoff too), so
        # only the prefix up to that point needs per-slot inspection.
        cutoff = bisect_left(self._slots, ((time + TIME_EPSILON,),))
        if cutoff == 0:
            return 0
        changed = 0
        rebuilt: list[tuple[tuple[float, float, int], Slot]] = []
        for entry in self._slots[:cutoff]:
            slot = entry[1]
            if slot.end <= time + TIME_EPSILON:
                changed += 1
                self._bucket_discard(entry)
                self._store.discard(slot)
                continue
            if slot.start < time - TIME_EPSILON:
                changed += 1
                self._bucket_discard(entry)
                self._store.discard(slot)
                tail = slot.end - time
                if tail > TIME_EPSILON and tail >= self.min_usable_length:
                    trimmed = Slot(slot.node, time, slot.end)
                    trimmed_entry = (trimmed.sort_key(), trimmed)
                    rebuilt.append(trimmed_entry)
                    insort(self._by_node.setdefault(trimmed.node.node_id, []), trimmed_entry)
                    self._store.add(trimmed)
                continue
            rebuilt.append(entry)
        if changed:
            rebuilt.sort()
            self._slots[:cutoff] = rebuilt
        return changed

    def copy(self) -> "SlotPool":
        """A shallow copy (slots are immutable, so this is fully safe)."""
        twin = SlotPool(min_usable_length=self.min_usable_length)
        twin._slots = list(self._slots)
        twin._by_node = {
            node_id: list(bucket) for node_id, bucket in self._by_node.items()
        }
        twin._store = self._store.copy()
        # The cached snapshot describes identical contents, so the twin
        # shares it until either side mutates (snapshots are never
        # written in place; each pool tracks its own generation).
        twin._cache = self._cache
        twin._cache_generation = self._cache_generation
        return twin

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Mutation counter: increments on every add/remove/trim.

        Two reads with equal generations saw identical contents, so
        callers key snapshot and scan-plan caches on it.
        """
        return self._store.generation

    def as_arrays(self) -> SlotArrays:
        """The pool as a columnar snapshot (cached per generation).

        Served from the incrementally maintained column store: the
        *same* snapshot object is returned until the pool mutates — so
        repeated scans of an unchanged pool (the broker's phase-one
        fan-out, admission between cycles, benchmark repeats) reuse
        both the columns and any scan plans cached on them — and a
        mutated pool assembles a fresh snapshot by gathering the live
        storage rows through the incrementally maintained sort
        permutation, never a per-slot Python rebuild or a numpy sort.
        """
        if self._cache is None or self._cache_generation != self._store.generation:
            self._cache = self._store.snapshot(self.ordered())
            self._cache_generation = self._store.generation
        return self._cache

    def total_free_time(self) -> float:
        """Sum of all slot lengths in the pool."""
        return sum(slot.length for slot in self)

    def by_node(self) -> dict[int, list[Slot]]:
        """Slots grouped by node id (each group start-ordered).

        Served from the per-node index; the returned lists are fresh
        copies, so callers may mutate them freely.
        """
        return {
            node_id: [slot for _, slot in bucket]
            for node_id, bucket in self._by_node.items()
        }

    def node_count(self) -> int:
        """Number of distinct nodes contributing at least one slot (O(1))."""
        return len(self._by_node)

    def assert_disjoint_per_node(self) -> None:
        """Invariant check: slots of one node never overlap.

        Primarily used by the test suite and by debugging sessions; a pool
        produced by the environment generator and mutated only through
        :meth:`cut_window` always satisfies it.
        """
        for node_id, slots in self.by_node().items():
            for left, right in zip(slots, slots[1:]):
                if left.overlaps(right):
                    raise AllocationError(
                        f"overlapping slots on node {node_id}: {left!r} / {right!r}"
                    )
