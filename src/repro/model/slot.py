"""Time slots: free spans on CPU nodes offered for reservation.

A slot is the elementary unit the whole paper operates on: a contiguous
span of free time on one node, published to the metascheduler by the local
resource manager.  Slots on different nodes have arbitrary, non-matching
start and finish points — this is exactly what makes synchronous
co-allocation non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.errors import InvalidIntervalError, ModelError
from repro.model.resource import CpuNode

#: Tolerance for floating-point comparisons on the time axis.  Two events
#: closer than this are considered simultaneous.
TIME_EPSILON = 1e-9


@dataclass(frozen=True)
class Slot:
    """A contiguous free time span ``[start, end)`` on one CPU node.

    Slots are immutable value objects; cutting a reservation out of a slot
    produces *new* slots (see :meth:`split`).
    """

    node: CpuNode
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end - self.start <= TIME_EPSILON:
            raise InvalidIntervalError(self.start, self.end)

    @property
    def length(self) -> float:
        """Duration of the slot."""
        return self.end - self.start

    def contains(self, start: float, end: float) -> bool:
        """Whether ``[start, end)`` fits entirely inside this slot."""
        return (
            self.start - TIME_EPSILON <= start
            and end <= self.end + TIME_EPSILON
            and start <= end + TIME_EPSILON
        )

    def remaining_from(self, time: float) -> float:
        """Free time left in the slot from ``time`` to its end.

        This is the quantity the AEP scan compares against the per-node task
        duration when pruning the extended window
        (``wSlot.EndTime - windowStart < minLength`` in the pseudo code).
        """
        return self.end - max(self.start, time)

    def can_host(self, start: float, duration: float) -> bool:
        """Whether a task of ``duration`` starting at ``start`` fits."""
        if duration < 0:
            raise ModelError(f"duration must be >= 0, got {duration}")
        return self.contains(start, start + duration)

    def overlaps(self, other: "Slot") -> bool:
        """Whether two slots intersect in time (regardless of node)."""
        return self.start < other.end - TIME_EPSILON and other.start < self.end - TIME_EPSILON

    def split(self, start: float, end: float, min_length: float = TIME_EPSILON) -> list["Slot"]:
        """Remove the reservation ``[start, end)`` and return the remainders.

        The left remainder ``[self.start, start)`` and the right remainder
        ``[end, self.end)`` are returned when they are at least
        ``min_length`` long; shorter fragments are considered unusable and
        dropped (mirrors the "cutting" step of the CSA scheme, reference
        [17] of the paper).
        """
        if not self.contains(start, end):
            raise ModelError(
                f"reservation [{start}, {end}) does not fit in slot "
                f"[{self.start}, {self.end}) on node {self.node.node_id}"
            )
        remainders: list[Slot] = []
        left_length = start - self.start
        if left_length >= min_length and left_length > TIME_EPSILON:
            remainders.append(Slot(self.node, self.start, start))
        right_length = self.end - end
        if right_length >= min_length and right_length > TIME_EPSILON:
            remainders.append(Slot(self.node, end, self.end))
        return remainders

    def sort_key(self) -> tuple[float, float, int]:
        """Deterministic ordering key: by start time, then end, then node.

        The AEP family requires the slot list ordered by *non-decreasing
        start time*; the extra components only make the order total and
        reproducible.
        """
        return (self.start, self.end, self.node.node_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Slot(node={self.node.node_id}, start={self.start:g}, end={self.end:g}, "
            f"perf={self.node.performance:g}, price={self.node.price_per_unit:g})"
        )
