"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch every domain failure with a single ``except`` clause while still
being able to distinguish model-validation problems from scheduling
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """An entity of the domain model was constructed with invalid data."""


class InvalidIntervalError(ModelError):
    """A time interval was given with ``end`` not after ``start``."""

    def __init__(self, start: float, end: float) -> None:
        super().__init__(f"invalid interval: start={start!r} must be < end={end!r}")
        self.start = start
        self.end = end


class InvalidRequestError(ModelError):
    """A :class:`~repro.model.job.ResourceRequest` field is out of range."""


class WindowValidationError(ModelError):
    """A co-allocation window violates one of its structural invariants.

    Raised by :meth:`repro.model.window.Window.validate` with a message that
    names the violated invariant (synchronous start, distinct nodes, budget,
    slot containment, ...).
    """


class AllocationError(ReproError):
    """A window could not be carved out of the slot pool it refers to."""


class SchedulingError(ReproError):
    """The batch scheduling scheme could not complete a cycle."""


class ConfigurationError(ReproError):
    """A simulation or environment configuration value is inconsistent."""
