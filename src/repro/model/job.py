"""Jobs, resource requests and job batches.

A *job* consists of ``node_count`` parallel tasks that must start
synchronously; its *resource request* carries everything the broker needs
to select slots: the reservation time (nominal task duration at reference
performance), hardware requirements, the maximal price per time unit ``F``
and the budget ``S``.  Following the paper, when the budget is not given
explicitly it is derived as ``S = F * t_s * n``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.model.errors import InvalidRequestError
from repro.model.resource import CpuNode, matches_spec


@dataclass(frozen=True)
class ResourceRequest:
    """User requirements for one parallel job.

    Parameters
    ----------
    node_count:
        Number ``n`` of parallel slots (tasks) to co-allocate.
    reservation_time:
        Nominal task duration ``t_s`` measured on a node of
        ``reference_performance``.  On a node of performance ``p`` the task
        occupies ``t_s * reference_performance / p`` time units.
    budget:
        Maximum total window cost ``S``.  If ``None`` it is derived from
        ``max_price_per_unit`` as ``S = F * t_s * n``; if both are ``None``
        the budget is unlimited.
    max_price_per_unit:
        Maximal acceptable price per time unit ``F`` for an individual node,
        also used to derive the default budget.  ``None`` disables the
        per-node price filter.
    reference_performance:
        Performance level at which ``reservation_time`` is measured.
    min_performance, min_clock_speed, min_ram, min_disk, required_os:
        Hardware/software constraints checked by the
        ``properHardwareAndSoftware`` filter of the AEP scan.
    deadline:
        Optional latest allowed window finish time (an "additional
        restriction" in the paper's 0-1 programming formulation).
    """

    node_count: int
    reservation_time: float
    budget: Optional[float] = None
    max_price_per_unit: Optional[float] = None
    reference_performance: float = 1.0
    min_performance: float = 0.0
    min_clock_speed: float = 0.0
    min_ram: int = 0
    min_disk: int = 0
    required_os: Optional[str] = None
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise InvalidRequestError(f"node_count must be >= 1, got {self.node_count}")
        if self.reservation_time <= 0:
            raise InvalidRequestError(
                f"reservation_time must be positive, got {self.reservation_time}"
            )
        if self.reference_performance <= 0:
            raise InvalidRequestError(
                f"reference_performance must be positive, got {self.reference_performance}"
            )
        if self.budget is not None and self.budget < 0:
            raise InvalidRequestError(f"budget must be >= 0, got {self.budget}")
        if self.max_price_per_unit is not None and self.max_price_per_unit < 0:
            raise InvalidRequestError(
                f"max_price_per_unit must be >= 0, got {self.max_price_per_unit}"
            )
        if self.min_performance < 0:
            raise InvalidRequestError(
                f"min_performance must be >= 0, got {self.min_performance}"
            )
        if self.deadline is not None and self.deadline < 0:
            raise InvalidRequestError(f"deadline must be >= 0, got {self.deadline}")

    @property
    def effective_budget(self) -> float:
        """The budget ``S``; ``inf`` when unconstrained.

        Derived as ``S = F * t_s * n`` when only ``max_price_per_unit`` is
        given, matching the paper's "maximal job budget is counted as
        S = F t_s n".
        """
        if self.budget is not None:
            return self.budget
        if self.max_price_per_unit is not None:
            return self.max_price_per_unit * self.reservation_time * self.node_count
        return float("inf")

    def task_runtime_on(self, node: CpuNode) -> float:
        """Duration of one task of this request on ``node``."""
        return node.task_runtime(self.reservation_time, self.reference_performance)

    def node_matches(self, node: CpuNode) -> bool:
        """The ``properHardwareAndSoftware`` predicate for this request."""
        return matches_spec(
            node,
            min_performance=self.min_performance,
            min_clock_speed=self.min_clock_speed,
            min_ram=self.min_ram,
            min_disk=self.min_disk,
            required_os=self.required_os,
            max_price_per_unit=self.max_price_per_unit,
        )


@dataclass(frozen=True)
class Job:
    """A batch job: an identifier, a resource request and a priority.

    Higher ``priority`` jobs are processed earlier by the batch scheduling
    scheme ("higher priority jobs are processed first", Section 2.1).
    """

    job_id: str
    request: ResourceRequest
    priority: int = 0
    owner: str = "anonymous"

    def __post_init__(self) -> None:
        if not self.job_id:
            raise InvalidRequestError("job_id must be a non-empty string")


@dataclass
class JobBatch:
    """An ordered batch of jobs scheduled within one cycle.

    Iteration yields jobs by descending priority with the submission order
    as a stable tie-break, which is the processing order of the paper's
    scheduling scheme.
    """

    jobs: list[Job] = field(default_factory=list)

    def add(self, job: Job) -> None:
        """Add a job; duplicate ids are rejected."""
        if any(existing.job_id == job.job_id for existing in self.jobs):
            raise InvalidRequestError(f"duplicate job_id {job.job_id!r} in batch")
        self.jobs.append(job)

    def by_priority(self) -> list[Job]:
        """Jobs sorted by descending priority (stable)."""
        return sorted(self.jobs, key=lambda job: -job.priority)

    def __iter__(self):
        return iter(self.by_priority())

    def __len__(self) -> int:
        return len(self.jobs)
