"""repro — slot selection and co-allocation for economic grid scheduling.

A production-quality reproduction of

    V. Toporkov, A. Toporkova, A. Tselishchev, D. Yemelyanov,
    "Slot Selection Algorithms in Distributed Computing with Non-dedicated
    and Heterogeneous Resources", PaCT 2013, LNCS 7979, pp. 120-134.

Quickstart::

    from repro import (
        EnvironmentConfig, EnvironmentGenerator, Job, ResourceRequest, MinCost,
    )

    env = EnvironmentGenerator(EnvironmentConfig(node_count=100, seed=42)).generate()
    job = Job("demo", ResourceRequest(node_count=5, reservation_time=150.0,
                                      budget=1500.0))
    window = MinCost().select(job, env.slot_pool())
    print(window.start, window.runtime, window.total_cost)

Package layout
--------------
``repro.model``
    Nodes, slots, jobs, windows, timelines, slot pools.
``repro.environment``
    Synthetic environments (Section 3.1 generative model).
``repro.core``
    The AEP scan, criterion extractors and all selection algorithms.
``repro.scheduling``
    The two-phase batch scheduling scheme (reference [6]).
``repro.simulation``
    Experiment harness for the paper's studies.
``repro.analysis``
    Tables, shape checks, and the paper's reference numbers.
"""

from repro.core import (
    AMP,
    CSA,
    Criterion,
    Exhaustive,
    FirstFit,
    MinCost,
    MinEnergy,
    MinFinish,
    MinIdle,
    MinProcTime,
    MinRunTime,
    RigidBackfill,
    SlotSelectionAlgorithm,
    aep_scan,
    best_window,
)
from repro.environment import (
    Environment,
    EnvironmentConfig,
    EnvironmentGenerator,
    LoadModel,
    MarketPricing,
)
from repro.model import (
    CpuNode,
    Job,
    JobBatch,
    NodeSpec,
    ReproError,
    ResourceRequest,
    Slot,
    SlotPool,
    Timeline,
    Window,
    WindowSlot,
)
from repro.execution import (
    ExecutionReport,
    PoissonDisturbances,
    replay_execution,
)
from repro.scheduling import BatchScheduler, CycleReport
from repro.service import BrokerService, ServiceConfig, ServiceStats
from repro.simulation import (
    ExperimentConfig,
    paper_algorithm_suite,
    paper_base_config,
    run_comparison,
)

__version__ = "1.0.0"

__all__ = [
    "aep_scan",
    "AMP",
    "BatchScheduler",
    "best_window",
    "BrokerService",
    "CpuNode",
    "Criterion",
    "CSA",
    "CycleReport",
    "Environment",
    "ExecutionReport",
    "EnvironmentConfig",
    "EnvironmentGenerator",
    "Exhaustive",
    "ExperimentConfig",
    "FirstFit",
    "Job",
    "JobBatch",
    "LoadModel",
    "MarketPricing",
    "MinCost",
    "MinEnergy",
    "MinFinish",
    "MinIdle",
    "MinProcTime",
    "MinRunTime",
    "NodeSpec",
    "paper_algorithm_suite",
    "PoissonDisturbances",
    "replay_execution",
    "paper_base_config",
    "ReproError",
    "ResourceRequest",
    "RigidBackfill",
    "run_comparison",
    "ServiceConfig",
    "ServiceStats",
    "Slot",
    "SlotPool",
    "SlotSelectionAlgorithm",
    "Timeline",
    "Window",
    "WindowSlot",
    "__version__",
]
