"""Result analysis: tables, shape checks and the paper's reference numbers."""

from repro.analysis import paper_reference
from repro.analysis.fairness import (
    FairnessReport,
    OwnerReport,
    fairness_of_assignments,
    jain_index,
)
from repro.analysis.gantt import render_gantt, render_window
from repro.analysis.histogram import Summary, histogram, quantile, summarize
from repro.analysis.latex import latex_comparison, latex_table
from repro.analysis.shape import (
    CRITERION_OWNERS,
    ShapeVerdict,
    advantage_over_amp,
    check_best_on_own_criterion,
    check_budget_usage,
    check_early_starters,
    check_late_algorithms,
)
from repro.analysis.stats import WelchResult, relative_difference_ci, welch_t_test
from repro.analysis.tables import comparison_table, format_cell, render_table

__all__ = [
    "advantage_over_amp",
    "relative_difference_ci",
    "render_gantt",
    "render_window",
    "WelchResult",
    "welch_t_test",
    "check_best_on_own_criterion",
    "check_budget_usage",
    "check_early_starters",
    "check_late_algorithms",
    "comparison_table",
    "fairness_of_assignments",
    "FairnessReport",
    "jain_index",
    "latex_comparison",
    "latex_table",
    "histogram",
    "quantile",
    "summarize",
    "Summary",
    "OwnerReport",
    "CRITERION_OWNERS",
    "format_cell",
    "paper_reference",
    "render_table",
    "ShapeVerdict",
]
