"""ASCII Gantt rendering of timelines and co-allocation windows.

The paper's Fig. 1 ("window with a rough right edge") is the picture every
discussion of the algorithms comes back to; this module draws that picture
in a terminal, for real environments and real windows.  Used by the
examples and invaluable when debugging window selection by eye.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.environment.generator import Environment
from repro.model.window import Window

#: Glyphs: '#' busy (local load), '=' reserved by a rendered window,
#: '.' free.
BUSY, RESERVED, FREE = "#", "=", "."


def _paint(
    line: list[str], start: float, end: float, t0: float, t1: float, width: int, glyph: str
) -> None:
    if t1 <= t0:
        return
    scale = width / (t1 - t0)
    begin = max(0, int((start - t0) * scale))
    finish = min(width, max(begin + 1, int(round((end - t0) * scale))))
    for position in range(begin, finish):
        line[position] = glyph


def render_gantt(
    environment: Environment,
    windows: Sequence[Window] = (),
    *,
    width: int = 72,
    node_ids: Optional[Sequence[int]] = None,
    legend: bool = True,
) -> str:
    """One text row per node: local load, reservations and free time.

    Parameters
    ----------
    environment:
        The environment whose timelines are drawn.
    windows:
        Windows to overlay as reservations (they need not be committed).
    width:
        Characters per row (the whole scheduling interval is scaled in).
    node_ids:
        Restrict to these nodes; by default, every node that is busy or
        referenced by a window (capped at 30 rows to stay readable).
    """
    t0 = environment.config.interval_start
    t1 = environment.config.interval_end

    reservations: dict[int, list[tuple[float, float]]] = {}
    for window in windows:
        for ws in window.slots:
            reservations.setdefault(ws.slot.node.node_id, []).append(
                (window.start, window.start + ws.required_time)
            )

    if node_ids is None:
        interesting = [
            node.node_id
            for node in environment.nodes
            if environment.timelines[node.node_id].busy_intervals
            or node.node_id in reservations
        ]
        node_ids = interesting[:30]

    lines = []
    header = f"{'node':>6} {'perf':>4} {'price':>6} |{'-' * width}|"
    lines.append(header)
    by_id = {node.node_id: node for node in environment.nodes}
    for node_id in node_ids:
        node = by_id[node_id]
        row = [FREE] * width
        for start, end in environment.timelines[node_id].busy_intervals:
            _paint(row, start, end, t0, t1, width, BUSY)
        for start, end in reservations.get(node_id, ()):
            _paint(row, start, end, t0, t1, width, RESERVED)
        lines.append(
            f"{node_id:>6} {node.performance:>4.0f} {node.price_per_unit:>6.2f} "
            f"|{''.join(row)}|"
        )
    if legend:
        lines.append(
            f"legend: '{BUSY}' local load   '{RESERVED}' window reservation   "
            f"'{FREE}' free   span [{t0:g}, {t1:g})"
        )
    return "\n".join(lines)


def render_window(window: Window, *, width: int = 60) -> str:
    """Draw one window's rough right edge (the paper's Fig. 1).

    Rows are the window's legs, scaled from the window start to the
    longest task's end.
    """
    t0 = window.start
    t1 = window.finish
    lines = [
        f"window: start {window.start:g}, runtime {window.runtime:g}, "
        f"finish {window.finish:g}, cost {window.total_cost:g}"
    ]
    for ws in sorted(window.slots, key=lambda leg: -leg.required_time):
        row = [FREE] * width
        _paint(row, t0, t0 + ws.required_time, t0, t1, width, RESERVED)
        lines.append(
            f"  node {ws.slot.node.node_id:>4} (perf {ws.slot.node.performance:>4.0f})"
            f" |{''.join(row)}| {ws.required_time:g}"
        )
    return "\n".join(lines)
