"""Text histograms and distribution summaries for window metrics.

The paper reports only means; distributions tell the fuller story (is
MinFinish's finish time tight or heavy-tailed?).  This module bins sample
lists into terminal-friendly histograms and five-number summaries, used by
examples and ad-hoc analysis sessions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number summary plus mean of a sample."""

    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @property
    def iqr(self) -> float:
        """Interquartile range (q3 - q1)."""
        return self.q3 - self.q1


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of pre-sorted values (q in [0, 1])."""
    if not sorted_values:
        raise ValueError("quantile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    position = q * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return float(sorted_values[low])
    weight = position - low
    return float(sorted_values[low] * (1 - weight) + sorted_values[high] * weight)


def summarize(values: Sequence[float]) -> Summary:
    """Five-number summary + mean."""
    if not values:
        raise ValueError("summarize() of an empty sample")
    ordered = sorted(values)
    return Summary(
        count=len(ordered),
        minimum=ordered[0],
        q1=quantile(ordered, 0.25),
        median=quantile(ordered, 0.5),
        q3=quantile(ordered, 0.75),
        maximum=ordered[-1],
        mean=sum(ordered) / len(ordered),
    )


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    title: str = "",
) -> str:
    """An ASCII histogram with counts per bin.

    Bins split [min, max] evenly; the top bin is closed on both sides.
    """
    if not values:
        raise ValueError("histogram() of an empty sample")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    low, high = min(values), max(values)
    if high == low:
        high = low + 1.0
    counts = [0] * bins
    span = (high - low) / bins
    for value in values:
        index = min(int((value - low) / span), bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines = []
    if title:
        lines.append(title)
    for index, count in enumerate(counts):
        left = low + index * span
        right = left + span
        bar = "#" * (round(width * count / peak) if peak else 0)
        lines.append(f"  [{left:10.2f}, {right:10.2f}) {count:>5} |{bar}")
    summary = summarize(values)
    lines.append(
        f"  n={summary.count} min={summary.minimum:.2f} "
        f"median={summary.median:.2f} mean={summary.mean:.2f} "
        f"max={summary.maximum:.2f}"
    )
    return "\n".join(lines)
