"""Statistical comparison utilities for experiment results.

The paper reports plain means over 5000 cycles; when reproducing with
fewer cycles, the question "is MinRunTime *really* faster than MinFinish
here, or is that noise?" needs an actual test.  This module provides the
two tools the benchmarks and reports use:

* Welch's t-test for the difference of two means with unequal variances
  (computed from the streaming :class:`~repro.simulation.RunningStat`
  aggregates, no raw samples needed);
* bootstrap-free normal-approximation confidence intervals for means and
  for relative differences.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simulation.metrics import RunningStat


@dataclass(frozen=True)
class WelchResult:
    """Outcome of a two-sample Welch test."""

    statistic: float
    degrees_of_freedom: float
    p_value: float
    mean_difference: float

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the difference is significant at level ``alpha``."""
        return self.p_value < alpha


def _student_t_sf(t: float, df: float) -> float:
    """Survival function of Student's t via the incomplete beta function.

    Uses the continued-fraction evaluation of the regularized incomplete
    beta function (Numerical Recipes style) — accurate to ~1e-10, no scipy
    needed.
    """
    if df <= 0:
        raise ValueError(f"degrees of freedom must be positive, got {df}")
    x = df / (df + t * t)
    probability = 0.5 * _reg_incomplete_beta(df / 2.0, 0.5, x)
    if t < 0:
        return 1.0 - probability
    return probability


def _reg_incomplete_beta(a: float, b: float, x: float) -> float:
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    log_beta = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log(1.0 - x)
    )
    front = math.exp(log_beta)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_cf(a, b, x) / a
    return 1.0 - front * _beta_cf(b, a, 1.0 - x) / b


def _beta_cf(a: float, b: float, x: float, max_iterations: int = 200) -> float:
    tiny = 1e-30
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iterations + 1):
        m2 = 2 * m
        numerator = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        numerator = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h


def welch_t_test(a: RunningStat, b: RunningStat) -> WelchResult:
    """Two-sided Welch's t-test for ``mean(a) != mean(b)``.

    Operates on the streaming aggregates directly; requires at least two
    samples on each side.
    """
    if a.count < 2 or b.count < 2:
        raise ValueError("welch_t_test requires at least two samples per side")
    var_a = a.variance / a.count
    var_b = b.variance / b.count
    pooled = var_a + var_b
    difference = a.mean - b.mean
    if pooled == 0:
        # Identical constants: difference is exact.
        p = 0.0 if abs(difference) > 0 else 1.0
        return WelchResult(
            statistic=math.inf if difference else 0.0,
            degrees_of_freedom=float(a.count + b.count - 2),
            p_value=p,
            mean_difference=difference,
        )
    t = difference / math.sqrt(pooled)
    df = pooled**2 / (
        var_a**2 / (a.count - 1) + var_b**2 / (b.count - 1)
    )
    p = 2.0 * _student_t_sf(abs(t), df)
    return WelchResult(
        statistic=t, degrees_of_freedom=df, p_value=min(1.0, p), mean_difference=difference
    )


def relative_difference_ci(
    a: RunningStat, b: RunningStat, z: float = 1.96
) -> tuple[float, float, float]:
    """Relative difference ``(a - b) / b`` with a delta-method interval.

    Returns ``(estimate, low, high)``.  Requires a nonzero reference mean.
    """
    if b.mean == 0:
        raise ValueError("reference mean must be nonzero for a relative difference")
    estimate = (a.mean - b.mean) / abs(b.mean)
    variance = (a.sem**2 + b.sem**2) / b.mean**2
    half = z * math.sqrt(variance)
    return estimate, estimate - half, estimate + half
