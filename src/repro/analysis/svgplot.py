"""Minimal SVG charting — regenerate the paper's figures as images.

Zero-dependency SVG line and bar charts, enough to draw Figs. 2-6: bar
charts for the per-algorithm averages (Figs. 2-4) and line charts for the
working-time scaling curves (Figs. 5-6).  The output is plain SVG 1.1
text, viewable in any browser and diffable in git.

This is intentionally a small, special-purpose renderer, not a plotting
library: fixed layout, numeric axes, one categorical or numeric x-axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence
from xml.sax.saxutils import escape

#: A small, color-blind-friendly categorical palette.
PALETTE = (
    "#4477AA",
    "#EE6677",
    "#228833",
    "#CCBB44",
    "#66CCEE",
    "#AA3377",
    "#BBBBBB",
)

WIDTH, HEIGHT = 640, 400
MARGIN_LEFT, MARGIN_RIGHT, MARGIN_TOP, MARGIN_BOTTOM = 70, 20, 40, 60


def _ticks(low: float, high: float, count: int = 5) -> list[float]:
    """Round-ish axis ticks covering [low, high]."""
    if high <= low:
        high = low + 1.0
    span = high - low
    raw_step = span / max(count - 1, 1)
    magnitude = 10 ** int(f"{raw_step:e}".split("e")[1])
    for factor in (1, 2, 2.5, 5, 10):
        step = factor * magnitude
        if step >= raw_step:
            break
    first = step * int(low / step)
    if first > low:
        first -= step
    ticks = []
    value = first
    while value <= high + step * 0.5:
        ticks.append(round(value, 10))
        value += step
    return ticks


@dataclass
class _Canvas:
    title: str
    x_label: str
    y_label: str
    elements: list[str] = field(default_factory=list)

    def add(self, element: str) -> None:
        """Add one element/value to the structure."""
        self.elements.append(element)

    def text(self, x, y, content, *, size=12, anchor="middle", rotate=None, color="#333"):
        """Place a text element."""
        transform = f' transform="rotate({rotate} {x} {y})"' if rotate else ""
        self.add(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" fill="{color}" '
            f'text-anchor="{anchor}" font-family="sans-serif"{transform}>'
            f"{escape(str(content))}</text>"
        )

    def render(self) -> str:
        """Serialize to the output text."""
        header = (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
            f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">'
        )
        frame = (
            f'<rect x="0" y="0" width="{WIDTH}" height="{HEIGHT}" fill="white"/>'
            f'<rect x="{MARGIN_LEFT}" y="{MARGIN_TOP}" '
            f'width="{WIDTH - MARGIN_LEFT - MARGIN_RIGHT}" '
            f'height="{HEIGHT - MARGIN_TOP - MARGIN_BOTTOM}" fill="none" '
            f'stroke="#999"/>'
        )
        self.text(WIDTH / 2, 22, self.title, size=15)
        self.text(WIDTH / 2, HEIGHT - 12, self.x_label)
        self.text(16, HEIGHT / 2, self.y_label, rotate=-90)
        return "\n".join([header, frame, *self.elements, "</svg>"])


def _y_scale(values: Sequence[float]) -> tuple[float, float, float]:
    high = max(values) if values else 1.0
    low = 0.0
    plot_height = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM
    return low, max(high, 1e-9), plot_height


def bar_chart(
    title: str,
    values: dict[str, float],
    *,
    y_label: str = "",
    reference: Optional[dict[str, float]] = None,
) -> str:
    """A categorical bar chart; optional paper-reference markers.

    ``reference`` values (the paper's numbers) are drawn as horizontal
    dashes over the corresponding bars, making the paper-vs-measured gap
    visible at a glance.
    """
    canvas = _Canvas(title=title, x_label="", y_label=y_label)
    names = list(values)
    all_values = list(values.values()) + [
        v for v in (reference or {}).values() if v is not None
    ]
    low, high, plot_height = _y_scale(all_values)
    plot_width = WIDTH - MARGIN_LEFT - MARGIN_RIGHT
    slot_width = plot_width / max(len(names), 1)
    bar_width = slot_width * 0.6

    for tick in _ticks(low, high):
        y = MARGIN_TOP + plot_height * (1 - (tick - low) / (high - low))
        if MARGIN_TOP - 1 <= y <= HEIGHT - MARGIN_BOTTOM + 1:
            canvas.add(
                f'<line x1="{MARGIN_LEFT}" y1="{y:.1f}" '
                f'x2="{WIDTH - MARGIN_RIGHT}" y2="{y:.1f}" stroke="#eee"/>'
            )
            canvas.text(MARGIN_LEFT - 8, y + 4, f"{tick:g}", anchor="end", size=11)

    for index, name in enumerate(names):
        x = MARGIN_LEFT + slot_width * index + (slot_width - bar_width) / 2
        value = values[name]
        bar_height = plot_height * (value - low) / (high - low)
        y = MARGIN_TOP + plot_height - bar_height
        color = PALETTE[index % len(PALETTE)]
        canvas.add(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_width:.1f}" '
            f'height="{bar_height:.1f}" fill="{color}"/>'
        )
        canvas.text(x + bar_width / 2, y - 5, f"{value:g}", size=10)
        canvas.text(
            x + bar_width / 2,
            HEIGHT - MARGIN_BOTTOM + 16,
            name,
            size=10,
            rotate=20,
        )
        paper_value = (reference or {}).get(name)
        if paper_value is not None:
            ref_y = MARGIN_TOP + plot_height * (1 - (paper_value - low) / (high - low))
            canvas.add(
                f'<line x1="{x - 4:.1f}" y1="{ref_y:.1f}" '
                f'x2="{x + bar_width + 4:.1f}" y2="{ref_y:.1f}" '
                f'stroke="#000" stroke-width="2" stroke-dasharray="5,3"/>'
            )
    if reference:
        canvas.text(
            WIDTH - MARGIN_RIGHT,
            MARGIN_TOP - 8,
            "dashed = paper",
            anchor="end",
            size=11,
        )
    return canvas.render()


def line_chart(
    title: str,
    series: dict[str, Sequence[tuple[float, float]]],
    *,
    x_label: str = "",
    y_label: str = "",
    log_y: bool = False,
) -> str:
    """A multi-series line chart over a numeric x-axis."""
    import math

    canvas = _Canvas(title=title, x_label=x_label, y_label=y_label)
    points = [point for values in series.values() for point in values]
    if not points:
        return canvas.render()
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    if x_high == x_low:
        x_high = x_low + 1.0

    def transform_y(value: float) -> float:
        """Apply the (optional) log transform."""
        return math.log10(max(value, 1e-12)) if log_y else value

    t_ys = [transform_y(y) for y in ys]
    y_low, y_high = min(t_ys), max(t_ys)
    if y_high == y_low:
        y_high = y_low + 1.0
    plot_width = WIDTH - MARGIN_LEFT - MARGIN_RIGHT
    plot_height = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM

    def to_xy(x: float, y: float) -> tuple[float, float]:
        """Data coordinates -> pixel coordinates."""
        px = MARGIN_LEFT + plot_width * (x - x_low) / (x_high - x_low)
        py = MARGIN_TOP + plot_height * (1 - (transform_y(y) - y_low) / (y_high - y_low))
        return px, py

    for tick in _ticks(x_low, x_high):
        px = MARGIN_LEFT + plot_width * (tick - x_low) / (x_high - x_low)
        if MARGIN_LEFT - 1 <= px <= WIDTH - MARGIN_RIGHT + 1:
            canvas.text(px, HEIGHT - MARGIN_BOTTOM + 18, f"{tick:g}", size=11)

    tick_values = (
        [10**t for t in _ticks(y_low, y_high)] if log_y else _ticks(y_low, y_high)
    )
    for tick in tick_values:
        py = MARGIN_TOP + plot_height * (
            1 - (transform_y(tick) - y_low) / (y_high - y_low)
        )
        if MARGIN_TOP - 1 <= py <= HEIGHT - MARGIN_BOTTOM + 1:
            canvas.add(
                f'<line x1="{MARGIN_LEFT}" y1="{py:.1f}" '
                f'x2="{WIDTH - MARGIN_RIGHT}" y2="{py:.1f}" stroke="#eee"/>'
            )
            canvas.text(MARGIN_LEFT - 8, py + 4, f"{tick:g}", anchor="end", size=11)

    for index, (name, values) in enumerate(series.items()):
        color = PALETTE[index % len(PALETTE)]
        path_points = " ".join(
            f"{to_xy(x, y)[0]:.1f},{to_xy(x, y)[1]:.1f}" for x, y in values
        )
        canvas.add(
            f'<polyline points="{path_points}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        for x, y in values:
            px, py = to_xy(x, y)
            canvas.add(f'<circle cx="{px:.1f}" cy="{py:.1f}" r="3" fill="{color}"/>')
        canvas.text(
            WIDTH - MARGIN_RIGHT - 6,
            MARGIN_TOP + 16 + 16 * index,
            name,
            anchor="end",
            size=11,
            color=color,
        )
    return canvas.render()


def save_svg(svg: str, path: str) -> None:
    """Write an SVG document to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg)
        handle.write("\n")
