"""Fairness metrics for economic scheduling.

The VO model exists to balance "contradictory interests of different
participants" (Section 1); whether a policy treats job owners evenly is a
first-class question for the administrator.  This module provides the
standard measures over per-owner aggregates:

* Jain's fairness index over owner shares (1 = perfectly even,
  1/k = one owner takes everything among k owners);
* per-owner service reports (scheduled fraction, spend, waiting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.model.job import Job
from repro.model.window import Window


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index of non-negative allocations.

    ``(sum x)^2 / (k * sum x^2)``; 1.0 for equal shares, ``1/k`` when one
    participant receives everything.  An empty or all-zero vector counts
    as perfectly fair (nobody got anything, evenly).
    """
    if not values:
        return 1.0
    if any(value < 0 for value in values):
        raise ValueError("jain_index requires non-negative values")
    total = sum(values)
    if total == 0:
        return 1.0
    squares = sum(value * value for value in values)
    return total * total / (len(values) * squares)


@dataclass
class OwnerReport:
    """Service received by one job owner."""

    owner: str
    submitted: int = 0
    scheduled: int = 0
    total_cost: float = 0.0
    total_processor_time: float = 0.0

    @property
    def service_rate(self) -> float:
        """Scheduled jobs / submitted jobs for this owner."""
        if self.submitted == 0:
            return 0.0
        return self.scheduled / self.submitted


@dataclass
class FairnessReport:
    """Per-owner service plus aggregate fairness indices."""

    owners: dict[str, OwnerReport] = field(default_factory=dict)

    def record(self, job: Job, window: Optional[Window]) -> None:
        """Account one job outcome for its owner."""
        report = self.owners.setdefault(job.owner, OwnerReport(owner=job.owner))
        report.submitted += 1
        if window is not None:
            report.scheduled += 1
            report.total_cost += window.total_cost
            report.total_processor_time += window.processor_time

    @property
    def service_fairness(self) -> float:
        """Jain index over per-owner service rates."""
        return jain_index([r.service_rate for r in self.owners.values()])

    @property
    def resource_fairness(self) -> float:
        """Jain index over per-owner CPU-time shares."""
        return jain_index(
            [r.total_processor_time for r in self.owners.values()]
        )

    def as_rows(self) -> list[list]:
        """Table rows (owner, submitted, scheduled, rate, cost, CPU time)."""
        rows = []
        for owner in sorted(self.owners):
            report = self.owners[owner]
            rows.append(
                [
                    owner,
                    report.submitted,
                    report.scheduled,
                    report.service_rate,
                    report.total_cost,
                    report.total_processor_time,
                ]
            )
        return rows


def fairness_of_assignments(
    jobs: Sequence[Job], assignments: Mapping[str, Window]
) -> FairnessReport:
    """Build a fairness report from one cycle's outcome."""
    report = FairnessReport()
    for job in jobs:
        report.record(job, assignments.get(job.job_id))
    return report
