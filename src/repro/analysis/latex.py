"""LaTeX export of experiment tables.

A reproduction repository's tables end up in papers and reports; this
module renders the same data structures the text tables use
(`headers` + `rows`, or a measured-vs-paper mapping) as LaTeX ``tabular``
environments, with booktabs-style rules and proper escaping.  No LaTeX
dependency — the output is plain text for ``\\input{}``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.tables import Cell, format_cell

#: Characters that must be escaped in LaTeX text cells.
_ESCAPES = {
    "&": r"\&",
    "%": r"\%",
    "$": r"\$",
    "#": r"\#",
    "_": r"\_",
    "{": r"\{",
    "}": r"\}",
    "~": r"\textasciitilde{}",
    "^": r"\textasciicircum{}",
    "\\": r"\textbackslash{}",
}


def escape(text: str) -> str:
    """Escape LaTeX special characters in a text cell."""
    return "".join(_ESCAPES.get(char, char) for char in text)


def latex_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    *,
    caption: Optional[str] = None,
    label: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render a ``table`` + ``tabular`` environment (booktabs rules).

    The first column is left-aligned (labels), the rest right-aligned
    (numbers), matching :func:`repro.analysis.render_table`'s layout.
    """
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
    column_spec = "l" + "r" * (len(headers) - 1)
    lines = [
        r"\begin{table}[ht]",
        r"  \centering",
        rf"  \begin{{tabular}}{{{column_spec}}}",
        r"    \toprule",
        "    " + " & ".join(escape(str(header)) for header in headers) + r" \\",
        r"    \midrule",
    ]
    for row in rows:
        cells = [escape(format_cell(cell, precision)) for cell in row]
        lines.append("    " + " & ".join(cells) + r" \\")
    lines.append(r"    \bottomrule")
    lines.append(r"  \end{tabular}")
    if caption:
        lines.append(rf"  \caption{{{escape(caption)}}}")
    if label:
        lines.append(rf"  \label{{{label}}}")
    lines.append(r"\end{table}")
    return "\n".join(lines)


def latex_comparison(
    measured: dict[str, float],
    reference: dict[str, float],
    *,
    caption: Optional[str] = None,
    label: Optional[str] = None,
    measured_label: str = "measured",
    reference_label: str = "paper",
) -> str:
    """Measured-vs-paper table, rows sorted by the measured value.

    The LaTeX twin of :func:`repro.analysis.comparison_table`.
    """
    names = sorted(measured, key=measured.__getitem__)
    rows: list[list[Cell]] = []
    for name in names:
        paper_value = reference.get(name)
        ratio: Cell = None
        if paper_value not in (None, 0):
            ratio = measured[name] / paper_value
        rows.append([name, measured[name], paper_value, ratio])
    return latex_table(
        ["algorithm", measured_label, reference_label, "ratio"],
        rows,
        caption=caption,
        label=label,
    )
