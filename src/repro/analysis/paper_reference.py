"""The paper's published numbers, transcribed for side-by-side reporting.

Every figure and table of Section 3 is recorded here verbatim so the
benchmark harness can print "paper vs measured" rows.  Absolute working
times (Tables 1-2) are hardware- and runtime-specific (Java on a 2010-era
Intel Core i3); only their growth trends are expected to transfer.
"""

from __future__ import annotations

from repro.core.criteria import Criterion

#: Fig. 2 (a) — average start time.  AMP/MinFinish/CSA are reported at the
#: very beginning of the interval (t = 0).
FIG2A_START_TIME = {
    "AMP": 0.0,
    "MinFinish": 0.0,
    "CSA": 0.0,
    "MinRunTime": 53.0,
    "MinCost": 193.0,
    "MinProcTime": 514.9,
}

#: Fig. 2 (b) — average runtime.  AMP and MinCost are described only as
#: "relatively long"; no number is printed for them in the text.
FIG2B_RUNTIME = {
    "MinRunTime": 33.0,
    "MinFinish": 34.4,
    "MinProcTime": 37.7,
    "CSA": 38.0,
}

#: Fig. 3 (a) — average finish time.
FIG3A_FINISH_TIME = {
    "MinFinish": 34.4,
    "CSA": 52.6,
    "MinCost": 307.7,
}

#: Fig. 3 (b) — average used processor time.
FIG3B_PROC_TIME = {
    "MinRunTime": 158.0,
    "MinFinish": 161.9,
    "CSA": 168.6,
    "MinProcTime": 171.6,
}

#: Fig. 4 — average total job execution cost (budget 1500).
FIG4_COST = {
    "MinCost": 1027.3,
    "CSA": 1352.0,
    "MinRunTime": 1464.0,
}

#: Average number of alternatives CSA finds per cycle in the base
#: environment (100 nodes, interval 600).
CSA_BASE_ALTERNATIVES = 57.0

#: Table 1 — working time (ms) vs CPU node count, and CSA statistics.
TABLE1_NODE_COUNTS = (50, 100, 200, 300, 400)
TABLE1_MS = {
    "CSA": (8.5, 56.5, 405.2, 1271.0, 2980.9),
    "AMP": (0.3, 0.5, 1.1, 1.6, 2.2),
    "MinRunTime": (3.2, 12.0, 45.5, 97.2, 169.2),
    "MinFinish": (3.2, 12.0, 45.1, 96.9, 169.0),
    "MinProcTime": (1.5, 5.2, 19.4, 42.1, 74.1),
    "MinCost": (1.7, 6.3, 23.6, 52.3, 91.5),
}
TABLE1_CSA_ALTERNATIVES = (25.9, 57.0, 128.4, 187.3, 252.0)

#: Table 2 — working time (ms) vs scheduling-interval length.
TABLE2_INTERVALS = (600, 1200, 1800, 2400, 3000, 3600)
TABLE2_SLOT_COUNTS = (472.6, 779.4, 1092.0, 1405.1, 1718.8, 2030.6)
TABLE2_MS = {
    "CSA": (54.2, 239.8, 565.7, 1045.7, 1650.5, 2424.4),
    "AMP": (0.5, 0.82, 1.1, 1.44, 1.79, 2.14),
    "MinRunTime": (11.7, 26.0, 40.9, 55.5, 69.4, 84.6),
    "MinFinish": (11.6, 25.7, 40.6, 55.3, 69.0, 84.1),
    "MinProcTime": (5.0, 11.1, 17.4, 23.5, 29.5, 35.8),
    "MinCost": (6.1, 13.4, 20.9, 28.5, 35.7, 43.5),
}
TABLE2_CSA_ALTERNATIVES = (57.0, 125.4, 196.2, 269.8, 339.7, 412.5)

#: Per-figure reference dictionaries keyed by the criterion they report.
FIGURE_REFERENCES = {
    Criterion.START_TIME: FIG2A_START_TIME,
    Criterion.RUNTIME: FIG2B_RUNTIME,
    Criterion.FINISH_TIME: FIG3A_FINISH_TIME,
    Criterion.PROCESSOR_TIME: FIG3B_PROC_TIME,
    Criterion.COST: FIG4_COST,
}
