"""Plain-text table rendering for experiment reports.

The benchmarks print paper-style tables (rows = algorithms or swept
values, columns = metrics) next to the paper's reference numbers, so that
``pytest benchmarks/ --benchmark-only`` output is directly comparable to
the publication.  No external dependency — just aligned monospace text.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

Cell = Union[str, float, int, None]


def format_cell(value: Cell, precision: int = 2) -> str:
    """Human-friendly cell formatting: trims trailing zeros on floats."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, int):
        return str(value)
    text = f"{value:.{precision}f}"
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return text if text not in ("", "-") else "0"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    *,
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render an aligned monospace table.

    The first column is left-aligned (labels), the rest right-aligned
    (numbers), matching the layout of the paper's Tables 1-2.
    """
    formatted = [[format_cell(cell, precision) for cell in row] for row in rows]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in formatted))
        if formatted
        else len(str(headers[col]))
        for col in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        """Format one table row with column padding."""
        pieces = []
        for col, cell in enumerate(cells):
            if col == 0:
                pieces.append(cell.ljust(widths[col]))
            else:
                pieces.append(cell.rjust(widths[col]))
        return "  ".join(pieces)

    out: list[str] = []
    if title:
        out.append(title)
    header_line = line([str(h) for h in headers])
    out.append(header_line)
    out.append("-" * len(header_line))
    out.extend(line(row) for row in formatted)
    return "\n".join(out)


def comparison_table(
    measured: dict[str, float],
    reference: dict[str, float],
    *,
    title: Optional[str] = None,
    measured_label: str = "measured",
    reference_label: str = "paper",
) -> str:
    """Side-by-side "paper vs measured" table for one metric.

    Rows are ordered by the measured value so the winner is on top, making
    the shape comparison (who wins, by what factor) immediate.
    """
    names = sorted(measured, key=measured.__getitem__)
    rows: list[list[Cell]] = []
    for name in names:
        paper_value = reference.get(name)
        ratio: Cell = None
        if paper_value not in (None, 0):
            ratio = measured[name] / paper_value
        rows.append([name, measured[name], paper_value, ratio])
    return render_table(
        ["algorithm", measured_label, reference_label, "ratio"],
        rows,
        title=title,
    )
