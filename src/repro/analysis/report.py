"""Markdown report generation: a fresh EXPERIMENTS record on demand.

Turns a :class:`~repro.simulation.ComparisonResult` (and, optionally, the
Table 1/2 timing studies) into a self-contained markdown document with
paper-vs-measured tables, significance annotations and the shape-check
verdicts — the machinery that produced this repository's EXPERIMENTS.md.
Exposed on the command line as ``repro report``.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.paper_reference import (
    CSA_BASE_ALTERNATIVES,
    FIGURE_REFERENCES,
)
from repro.analysis.shape import (
    advantage_over_amp,
    check_best_on_own_criterion,
    check_budget_usage,
    check_early_starters,
    check_late_algorithms,
)
from repro.core.criteria import Criterion
from repro.simulation.runner import ComparisonResult
from repro.simulation.timing import TimingStudy

FIGURE_SECTIONS = (
    ("Fig. 2 (a) — average start time", Criterion.START_TIME),
    ("Fig. 2 (b) — average runtime", Criterion.RUNTIME),
    ("Fig. 3 (a) — average finish time", Criterion.FINISH_TIME),
    ("Fig. 3 (b) — average used processor time", Criterion.PROCESSOR_TIME),
    ("Fig. 4 — average total execution cost", Criterion.COST),
)


def _figure_section(result: ComparisonResult, title: str, criterion: Criterion) -> str:
    reference = FIGURE_REFERENCES[criterion]
    means = result.all_means(criterion)
    lines = [f"## {title}", "", "| algorithm | measured | paper | ratio |",
             "|---|---|---|---|"]
    for name in sorted(means, key=means.__getitem__):
        measured = means[name]
        paper = reference.get(name)
        if paper in (None, 0):
            ratio = "—"
            paper_text = "—" if paper is None else f"{paper:g}"
        else:
            ratio = f"{measured / paper:.2f}"
            paper_text = f"{paper:g}"
        lines.append(f"| {name} | {measured:.1f} | {paper_text} | {ratio} |")
    lines.append("")
    return "\n".join(lines)


def _timing_section(study: TimingStudy, title: str, paper_note: str) -> str:
    lines = [f"## {title}", "", paper_note, ""]
    header = (
        "| " + study.parameter_name + " | slots | CSA alts | CSA (ms) | AMP (ms) "
        "| MinRunTime (ms) | MinFinish (ms) | MinProcTime (ms) | MinCost (ms) |"
    )
    lines.append(header)
    lines.append("|" + "---|" * 9)
    for row in study.rows:
        lines.append(
            f"| {row.parameter:g} | {row.slot_count.mean:.1f} "
            f"| {row.csa_alternatives.mean:.1f} "
            f"| {row.csa_seconds.mean * 1e3:.2f} "
            f"| {row.mean_ms('AMP'):.3f} "
            f"| {row.mean_ms('MinRunTime'):.2f} "
            f"| {row.mean_ms('MinFinish'):.2f} "
            f"| {row.mean_ms('MinProcTime'):.2f} "
            f"| {row.mean_ms('MinCost'):.2f} |"
        )
    lines.append("")
    return "\n".join(lines)


def build_report(
    result: ComparisonResult,
    node_study: Optional[TimingStudy] = None,
    interval_study: Optional[TimingStudy] = None,
    title: str = "Reproduction report",
) -> str:
    """A complete markdown report for one comparison run."""
    config = result.config
    lines = [
        f"# {title}",
        "",
        f"*{result.cycles_run} scheduling cycles (paper: 5000), "
        f"{config.environment.node_count} nodes, interval "
        f"[{config.environment.interval_start:g}, {config.environment.interval_end:g}), "
        f"job {config.node_count_requested} x {config.reservation_time:g}, "
        f"budget {config.budget:g}, seed {config.seed}.*",
        "",
        f"- slots per cycle: **{result.slot_count.mean:.1f}** (paper 472.6)",
        f"- CSA alternatives per cycle: **{result.csa.alternatives.mean:.1f}** "
        f"(paper {CSA_BASE_ALTERNATIVES:g})",
        "",
    ]
    for section_title, criterion in FIGURE_SECTIONS:
        lines.append(_figure_section(result, section_title, criterion))

    lines.append("## Shape checks (Section 3.2-3.3 claims)")
    lines.append("")
    verdicts = []
    verdicts.extend(check_best_on_own_criterion(result))
    if config.budget is not None:
        verdicts.extend(check_budget_usage(result, config.budget))
    verdicts.append(check_early_starters(result))
    verdicts.append(check_late_algorithms(result))
    for verdict in verdicts:
        marker = "x" if verdict.holds else " "
        lines.append(f"- [{marker}] {verdict.claim} — {verdict.detail}")
    lines.append("")

    lines.append("## Advantage of single AEP runs over AMP (paper: 10-50%)")
    lines.append("")
    for criterion, improvement in advantage_over_amp(result).items():
        lines.append(f"- {criterion.label}: {improvement:+.1%}")
    lines.append("")

    if node_study is not None:
        lines.append(
            _timing_section(
                node_study,
                "Table 1 — working time vs CPU node count",
                "Paper trend: AMP near-linear, single-window AEP at most "
                "quadratic, CSA super-linear with linearly growing "
                "alternative count.",
            )
        )
    if interval_study is not None:
        lines.append(
            _timing_section(
                interval_study,
                "Table 2 — working time vs scheduling-interval length",
                "Paper trend: every single-window AEP algorithm linear in "
                "the interval length / slot count.",
            )
        )
    return "\n".join(lines)
