"""Shape checks: the qualitative claims of Section 3.2-3.3.

We do not chase the paper's absolute numbers (different language, runtime
and hardware); we verify the *shape* of its results:

* each full AEP scheme is the best on its own criterion;
* a single AEP run beats the best alternative AMP would have produced by a
  clear margin on the target criterion (the paper reports 10-50%);
* MinCost leaves a large fraction of the budget unspent while MinFinish
  spends almost all of it;
* AMP / MinFinish / CSA start at the very beginning of the interval.

These functions return structured verdicts so the benchmarks can both
print them and assert on them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.criteria import Criterion
from repro.simulation.runner import ComparisonResult

#: Map from each reported criterion to the algorithm designed for it.
CRITERION_OWNERS = {
    Criterion.START_TIME: "AMP",
    Criterion.FINISH_TIME: "MinFinish",
    Criterion.RUNTIME: "MinRunTime",
    Criterion.PROCESSOR_TIME: "MinProcTime",
    Criterion.COST: "MinCost",
}


@dataclass(frozen=True)
class ShapeVerdict:
    """One qualitative claim, checked."""

    claim: str
    holds: bool
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        marker = "OK " if self.holds else "FAIL"
        return f"[{marker}] {self.claim}: {self.detail}"


def check_best_on_own_criterion(
    result: ComparisonResult, proc_time_tolerance: float = 0.10
) -> list[ShapeVerdict]:
    """Each full AEP scheme obtains the best value on its own criterion.

    The paper's MinProcTime is deliberately simplified ("does not guarantee
    an optimal result, ... a random window is selected") and the paper
    itself measures it *behind* MinRunTime/MinFinish/CSA on processor time
    (171.6 vs 158-168.6), claiming only that it is "on the average only 2%
    less effective than the CSA scheme".  So for processor time the check
    is against CSA within ``proc_time_tolerance``; the full AEP schemes
    must be exactly best (up to float noise) on their own criteria.
    """
    verdicts = []
    for criterion, owner in CRITERION_OWNERS.items():
        means = result.all_means(criterion)
        own = means[owner]
        if criterion is Criterion.PROCESSOR_TIME:
            csa = means["CSA"]
            holds = own <= csa * (1.0 + proc_time_tolerance) + 1e-9
            detail = f"{owner}={own:.2f}, CSA={csa:.2f}"
            claim = f"{owner} within {proc_time_tolerance:.0%} of CSA on {criterion.label}"
        else:
            best = min(means.values())
            holds = own <= best * (1.0 + 1e-6) + 1e-9
            detail = f"{owner}={own:.2f}, best={best:.2f}"
            claim = f"{owner} best on {criterion.label}"
        verdicts.append(ShapeVerdict(claim=claim, holds=holds, detail=detail))
    return verdicts


def advantage_over_amp(result: ComparisonResult) -> dict[Criterion, float]:
    """Relative improvement of each AEP scheme over AMP on its criterion.

    The paper: "a single run of the AEP-like algorithm had an advantage of
    10%-50% over suitable alternatives found with AMP with respect to the
    specified criterion."  Start time is excluded (AMP *is* the start-time
    optimizer).
    """
    improvements: dict[Criterion, float] = {}
    for criterion, owner in CRITERION_OWNERS.items():
        if criterion is Criterion.START_TIME:
            continue
        amp_value = result.mean_of("AMP", criterion)
        own_value = result.mean_of(owner, criterion)
        if amp_value == 0:
            improvements[criterion] = 0.0
        else:
            improvements[criterion] = (amp_value - own_value) / amp_value
    return improvements


def check_budget_usage(
    result: ComparisonResult, budget: float
) -> list[ShapeVerdict]:
    """MinCost leaves a large unspent margin; MinFinish spends nearly all.

    Paper values: MinFinish 1464/1500 (97.6%), MinCost 1027/1500 (68.5%) —
    a 43% advantage of MinCost over MinFinish on cost.
    """
    min_cost = result.mean_of("MinCost", Criterion.COST)
    min_finish = result.mean_of("MinFinish", Criterion.COST)
    verdicts = [
        ShapeVerdict(
            claim="MinCost spends well under the budget",
            holds=min_cost < 0.85 * budget,
            detail=f"MinCost={min_cost:.1f} of budget {budget:.0f}",
        ),
        ShapeVerdict(
            claim="MinFinish spends most of the budget",
            holds=min_finish > 0.85 * budget,
            detail=f"MinFinish={min_finish:.1f} of budget {budget:.0f}",
        ),
        ShapeVerdict(
            claim="MinCost clearly cheaper than MinFinish",
            holds=min_cost < 0.85 * min_finish,
            detail=f"MinCost={min_cost:.1f} vs MinFinish={min_finish:.1f}",
        ),
    ]
    return verdicts


def check_early_starters(result: ComparisonResult, threshold: float = 5.0) -> ShapeVerdict:
    """AMP, MinFinish and CSA all start near the beginning of the interval."""
    amp = result.mean_of("AMP", Criterion.START_TIME)
    fin = result.mean_of("MinFinish", Criterion.START_TIME)
    csa = result.csa_mean_of(Criterion.START_TIME)
    holds = max(amp, fin, csa) <= threshold
    return ShapeVerdict(
        claim="AMP/MinFinish/CSA start at the beginning of the interval",
        holds=holds,
        detail=f"AMP={amp:.2f}, MinFinish={fin:.2f}, CSA={csa:.2f}",
    )


def check_late_algorithms(result: ComparisonResult) -> ShapeVerdict:
    """MinProcTime starts latest; MinCost both late and slow (Fig. 2-3)."""
    proc_start = result.mean_of("MinProcTime", Criterion.START_TIME)
    cost_start = result.mean_of("MinCost", Criterion.START_TIME)
    runtime_start = result.mean_of("MinRunTime", Criterion.START_TIME)
    amp_start = result.mean_of("AMP", Criterion.START_TIME)
    holds = proc_start > cost_start > amp_start and runtime_start > amp_start
    return ShapeVerdict(
        claim="start-time ordering AMP < MinCost < MinProcTime holds",
        holds=holds,
        detail=(
            f"AMP={amp_start:.1f}, MinRunTime={runtime_start:.1f}, "
            f"MinCost={cost_start:.1f}, MinProcTime={proc_start:.1f}"
        ),
    )
