"""Command-line interface: experiments, sweeps and scheduling from a shell.

Installed as the ``repro`` console script (also runnable as
``python -m repro.cli``).  Subcommands:

``repro compare``
    Run the Section 3.1 base comparison and print every figure's table,
    measured next to the paper's published values.
``repro sweep-nodes`` / ``repro sweep-interval``
    The Table 1 / Table 2 working-time sweeps.
``repro generate``
    Generate an environment and write it to JSON (archival input).
``repro schedule``
    Run one two-phase batch scheduling cycle on a generated or loaded
    environment and print the assignments plus an ASCII Gantt chart.
``repro serve``
    Stream a scripted Poisson arrival trace through the on-line broker
    service and print its stats block.  ``--disturbance-rate`` /
    ``--recovery-policy`` switch on live fault injection and recovery.
``repro bench-resilience``
    Sweep disturbance rates x recovery policies through the broker's
    live resilience layer and archive the goodput baseline
    (``BENCH_resilience.json``).
``repro bench-service``
    Time the broker service across pool sizes and archive the JSON
    throughput baseline (``BENCH_service.json``).
``repro bench-core``
    Time one window search per criterion through the incremental scan
    kernel and the frozen pre-change kernel, and archive the JSON
    baseline (``BENCH_core.json``).
``repro bench-experiments``
    Time the process-parallel Monte-Carlo experiment engine across worker
    counts, verify worker-count-invariant aggregates, and archive the
    JSON baseline (``BENCH_experiments.json``).
``repro serve-federation``
    Serve a sharded multi-broker federation over loopback TCP — either
    listening until shutdown/SIGTERM or self-driving a scripted arrival
    stream through a real socket client.
``repro bench-federation``
    Drive the federation front door over real loopback sockets across
    shard counts and archive submit-to-schedule latency and throughput
    (``BENCH_federation.json``).
``repro bench-soak``
    Drive a 10^5-job Poisson stream through a rolling-horizon broker
    across hundreds of horizon segments, gate on flat RSS / stable p99
    cycle latency / incremental-snapshot speedup, and archive the JSON
    baseline (``BENCH_soak.json``).
``repro bench-tenancy``
    Run the hog-vs-small-tenants mix through FIFO and DRF cycle
    ordering with credits and utilization pricing live, gate on credit
    conservation + contention + DRF strictly beating FIFO on Jain's
    fairness index, and archive the baseline (``BENCH_tenancy.json``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis import comparison_table, render_table
from repro.analysis.gantt import render_gantt
from repro.analysis.paper_reference import FIGURE_REFERENCES
from repro.core import CSA, Criterion
from repro.environment import EnvironmentConfig, EnvironmentGenerator
from repro.federation.config import POLICY_NAMES as _FEDERATION_POLICIES
from repro.io import load_environment, save_environment
from repro.scheduling import BatchScheduler
from repro.simulation import (
    DEFAULT_CHUNK_SIZE,
    ExperimentConfig,
    run_comparison,
    sweep_interval_lengths,
    sweep_node_counts,
)
from repro.simulation.jobgen import JobGenerator

def _package_version() -> str:
    """The installed distribution version, else the in-tree fallback."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from repro import __version__

        return __version__


FIGURE_TITLES = {
    Criterion.START_TIME: "Fig. 2(a) average start time",
    Criterion.RUNTIME: "Fig. 2(b) average runtime",
    Criterion.FINISH_TIME: "Fig. 3(a) average finish time",
    Criterion.PROCESSOR_TIME: "Fig. 3(b) average CPU usage time",
    Criterion.COST: "Fig. 4 average execution cost",
}


def _experiment_config(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        environment=EnvironmentConfig(node_count=args.nodes),
        cycles=args.cycles,
        seed=args.seed,
        stream_mode=getattr(args, "stream_mode", "spawned"),
    )


def cmd_compare(args: argparse.Namespace) -> int:
    """Handler of the ``repro compare`` subcommand."""
    config = _experiment_config(args)
    print(
        f"running {config.cycles} cycles on {args.nodes} nodes "
        f"(seed {args.seed}, {config.stream_mode} streams, "
        f"{args.workers or 'in-process'} worker(s)) ..."
    )
    result = run_comparison(config, workers=args.workers or None)
    print(
        f"slots/cycle {result.slot_count.mean:.1f} (paper 472.6); "
        f"CSA alternatives/cycle {result.csa.alternatives.mean:.1f} (paper 57)"
    )
    for criterion, title in FIGURE_TITLES.items():
        means = result.all_means(criterion)
        print()
        print(comparison_table(means, FIGURE_REFERENCES[criterion], title=title))
    if args.latex:
        from repro.analysis.latex import latex_comparison

        blocks = []
        for criterion, title in FIGURE_TITLES.items():
            blocks.append(
                latex_comparison(
                    result.all_means(criterion),
                    FIGURE_REFERENCES[criterion],
                    caption=title,
                    label=f"tab:{criterion.value}",
                )
            )
        with open(args.latex, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(blocks))
            handle.write("\n")
        print(f"wrote LaTeX tables to {args.latex}")
    return 0


def _print_timing_study(study, parameter_label: str) -> None:
    headers = [parameter_label] + [str(int(row.parameter)) for row in study.rows]
    rows = [
        ["slots"] + [round(row.slot_count.mean, 1) for row in study.rows],
        ["CSA alternatives"]
        + [round(row.csa_alternatives.mean, 1) for row in study.rows],
        ["CSA (ms)"] + [round(row.csa_seconds.mean * 1e3, 2) for row in study.rows],
    ]
    for name in ("AMP", "MinRunTime", "MinFinish", "MinProcTime", "MinCost"):
        rows.append([f"{name} (ms)"] + [round(row.mean_ms(name), 3) for row in study.rows])
    print(render_table(headers, rows))


def cmd_sweep_nodes(args: argparse.Namespace) -> int:
    """Handler of the ``repro sweep-nodes`` subcommand."""
    config = _experiment_config(args)
    counts = [int(value) for value in args.counts.split(",")]
    study = sweep_node_counts(config, counts, args.reps)
    _print_timing_study(study, "CPU nodes")
    return 0


def cmd_sweep_interval(args: argparse.Namespace) -> int:
    """Handler of the ``repro sweep-interval`` subcommand."""
    config = _experiment_config(args)
    lengths = [float(value) for value in args.lengths.split(",")]
    study = sweep_interval_lengths(config, lengths, args.reps)
    _print_timing_study(study, "interval")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    """Handler of the ``repro generate`` subcommand."""
    config = EnvironmentConfig(node_count=args.nodes, seed=args.seed)
    environment = EnvironmentGenerator(config).generate()
    save_environment(environment, args.output)
    print(
        f"wrote {args.output}: {args.nodes} nodes, "
        f"{len(environment.slots())} slots, "
        f"load {environment.utilization():.0%}"
    )
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    """Handler of the ``repro schedule`` subcommand."""
    if args.env:
        environment = load_environment(args.env)
    else:
        environment = EnvironmentGenerator(
            EnvironmentConfig(node_count=args.nodes, seed=args.seed)
        ).generate()
    generator = JobGenerator(seed=args.seed)
    batch = generator.generate_batch(args.jobs)
    scheduler = BatchScheduler(
        search=CSA(max_alternatives=args.alternatives),
        criterion=Criterion[args.criterion.upper()],
    )
    report = scheduler.run_cycle(batch, environment)
    summary = report.summary()
    if args.json:
        from repro.io import window_to_dict

        payload = {
            "jobs": len(batch),
            "summary": summary,
            "assignments": {
                job_id: window_to_dict(window)
                for job_id, window in report.scheduled.items()
            },
            "unscheduled": sorted(report.unscheduled),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"scheduled {summary['scheduled_jobs']:.0f}/{len(batch)} jobs, "
        f"cost {summary['total_cost']:.1f}, makespan {summary['makespan']:.1f}"
    )
    for job in batch:
        window = report.scheduled.get(job.job_id)
        if window is None:
            print(f"  {job.job_id:<10} prio {job.priority} -> deferred")
        else:
            print(
                f"  {job.job_id:<10} prio {job.priority} -> start {window.start:7.1f} "
                f"finish {window.finish:7.1f} cost {window.total_cost:8.1f}"
            )
    if args.gantt:
        print()
        print(render_gantt(environment, list(report.scheduled.values())))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Handler of the ``repro serve`` subcommand."""
    from repro.service import (
        ResilienceConfig,
        ServiceConfig,
        TraceConfig,
        graceful_interrupt,
        run_service_trace,
    )
    from repro.service.tracing import TraceInvariantError

    resilience = None
    if args.disturbance_rate > 0:
        resilience = ResilienceConfig(
            rate=args.disturbance_rate,
            seed=args.disturbance_seed,
            policy=args.recovery_policy,
        )
    config = TraceConfig(
        jobs=args.jobs,
        rate=args.rate,
        node_count=args.nodes,
        seed=args.seed,
        service=ServiceConfig(
            batch_size=args.batch_size,
            max_wait=args.max_wait,
            workers=args.workers,
            worker_mode=args.worker_mode,
            alternatives_per_job=args.alternatives,
            criterion=Criterion[args.criterion.upper()],
            completion_factor=args.completion_factor,
            resilience=resilience,
        ),
        trace_path=args.trace,
        validate_trace=args.validate_trace,
    )
    if not args.json:
        print(
            f"streaming {args.jobs} jobs (rate {args.rate:g}/time unit) through "
            f"a {args.nodes}-node broker, batch {args.batch_size} / "
            f"max wait {args.max_wait:g}, {args.workers} worker(s) ..."
        )
    try:
        with graceful_interrupt():
            outcome = run_service_trace(config)
    except KeyboardInterrupt:
        print("interrupted — broker closed, trace flushed", file=sys.stderr)
        return 130
    except TraceInvariantError as error:
        print(f"TRACE INVARIANT VIOLATION\n{error}", file=sys.stderr)
        if args.trace:
            print(f"offending event trace: {args.trace}", file=sys.stderr)
        return 1
    snapshot = outcome.snapshot()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    stats = outcome.service.stats
    print(
        f"submitted {stats.submitted}, admitted {stats.admitted}, "
        f"rejected {stats.rejected}, scheduled {stats.scheduled}, "
        f"deferred {stats.deferred}, dropped {stats.dropped}, "
        f"retired {stats.retired}"
    )
    print(
        f"{stats.cycles} cycles in {outcome.elapsed_seconds:.2f}s wall "
        f"(virtual time {outcome.final_virtual_time:.1f}); "
        f"cycle latency p50 {stats.cycle_latency.p50 * 1e3:.2f}ms "
        f"p95 {stats.cycle_latency.p95 * 1e3:.2f}ms; "
        f"{stats.windows_per_second:.0f} windows/s"
    )
    if stats.revocations:
        print(
            f"resilience ({args.recovery_policy}): {stats.revocations} "
            f"revocations, {stats.repaired} repaired, "
            f"{stats.replanned} replanned, {stats.abandoned} abandoned; "
            f"forfeited {stats.forfeited_node_seconds:.1f} node-s, "
            f"delivered {stats.delivered_node_seconds:.1f} node-s"
        )
    if args.trace:
        print(f"wrote event trace to {args.trace}")
    if outcome.validator is not None:
        summary = outcome.validator.summary()
        kept = (
            summary["scheduled"] - summary["replanned"] - summary["abandoned"]
        )
        print(
            f"trace invariants OK: {summary['events']} events, "
            f"{kept} kept + {summary['dropped']} dropped "
            f"+ {summary['abandoned']} abandoned + {summary['pending']} pending "
            f"= {summary['admitted']} admitted"
        )
    return 0


def cmd_bench_service(args: argparse.Namespace) -> int:
    """Handler of the ``repro bench-service`` subcommand."""
    from repro.io import save_json
    from repro.service import bench_service

    node_counts = [int(value) for value in args.nodes.split(",")]
    print(
        f"benchmarking the broker service: {args.jobs} jobs at "
        f"{node_counts} nodes, {args.workers} worker(s) ..."
    )
    payload = bench_service(
        node_counts=node_counts,
        jobs=args.jobs,
        rate=args.rate,
        workers=args.workers,
        seed=args.seed,
        trace_path=args.trace,
    )
    for row in payload["results"]:
        print(
            f"  {row['nodes']:>4} nodes: {row['jobs_per_second']:8.1f} jobs/s "
            f"offered, {row['scheduled_per_second']:8.1f} scheduled/s, "
            f"cycle p50 {row['cycle_latency_ms_p50']:.2f}ms "
            f"p95 {row['cycle_latency_ms_p95']:.2f}ms, "
            f"scheduled {row['scheduled']}/{row['jobs']}"
        )
    if args.output:
        save_json(payload, args.output)
        print(f"wrote {args.output}")
    return 0


def _federation_manager(args: argparse.Namespace, sinks) -> "object":
    """A ShardManager built from serve-federation CLI arguments."""
    from repro.environment import EnvironmentConfig, EnvironmentGenerator
    from repro.federation import FederationConfig, ShardManager
    from repro.service import ServiceConfig

    pool = (
        EnvironmentGenerator(
            EnvironmentConfig(node_count=args.nodes, seed=args.seed)
        )
        .generate()
        .slot_pool()
    )
    config = FederationConfig(
        shards=args.shards,
        policy=args.policy,
        coallocation=not args.no_coallocation,
        service=ServiceConfig(
            batch_size=args.batch_size,
            max_wait=args.max_wait,
            workers=args.workers,
            worker_mode=args.worker_mode,
            alternatives_per_job=args.alternatives,
            criterion=Criterion[args.criterion.upper()],
        ),
    )
    return ShardManager(pool, config=config, sinks=sinks)


def cmd_serve_federation(args: argparse.Namespace) -> int:
    """Handler of the ``repro serve-federation`` subcommand.

    With ``--jobs N`` the command self-drives a scripted arrival stream
    through a loopback client (real sockets end to end) and exits; with
    ``--jobs 0`` (the default) it listens until a ``shutdown`` frame,
    SIGTERM, or Ctrl-C, closing every shard broker and flushing JSONL
    sinks on the way out.
    """
    import asyncio

    from repro.federation import (
        FederationClient,
        FederationServer,
        FederationTraceValidator,
    )
    from repro.service import graceful_interrupt
    from repro.service.events import JsonlSink
    from repro.service.tracing import TraceInvariantError
    from repro.simulation import JobGenerator

    sinks = []
    trace_sink = None
    validator = None
    if args.trace:
        trace_sink = JsonlSink(args.trace)
        sinks.append(trace_sink)
    if args.validate_trace:
        validator = FederationTraceValidator()
        sinks.append(validator)
    manager = _federation_manager(args, sinks)

    async def _run() -> dict:
        server = FederationServer(manager, host=args.host, port=args.port)
        await server.start()
        print(
            f"federation of {args.shards} shard(s) over {args.nodes} nodes "
            f"({args.policy} routing) listening on {args.host}:{server.port}"
        )
        try:
            if not args.jobs:
                await server.serve_until_shutdown()
                return {}
            arrivals = list(
                JobGenerator(seed=args.seed).iter_arrivals(
                    args.jobs, rate=args.rate
                )
            )
            client = await FederationClient.connect(port=server.port)
            async with client:
                for arrival_time, job in arrivals:
                    await client.submit(job, at=arrival_time)
                await client.drain()
                stats = await client.stats()
                await client.shutdown()
            return stats
        finally:
            await server.stop()

    try:
        with graceful_interrupt():
            stats = asyncio.run(_run())
    except KeyboardInterrupt:
        manager.close()
        if trace_sink is not None:
            trace_sink.close()
        print("interrupted — shards closed, trace flushed", file=sys.stderr)
        return 130
    finally:
        if trace_sink is not None:
            trace_sink.close()
    if stats:
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            federation = stats["federation"]
            aggregate = stats["aggregate"]
            print(
                f"submitted {federation['submitted']}, "
                f"routed {federation['routed']}, "
                f"coallocated {federation['coallocated']}, "
                f"rejected {federation['rejected']}, "
                f"dropped {federation['dropped']}"
            )
            print(
                f"shards scheduled {aggregate['scheduled']}, "
                f"dropped {aggregate['dropped']}, "
                f"retired {aggregate['retired']} "
                f"(virtual time {stats['now']:.1f})"
            )
    if args.trace:
        print(f"wrote event trace to {args.trace}")
    if validator is not None:
        try:
            validator.check(expect_drained=bool(args.jobs))
        except TraceInvariantError as error:
            print(f"TRACE INVARIANT VIOLATION\n{error}", file=sys.stderr)
            return 1
        summary = validator.summary()
        print(
            f"federation trace invariants OK: {summary['events']} events, "
            f"{summary['routed']} routed + {summary['coallocated']} "
            f"coallocated + {summary['rejected']} rejected across "
            f"{len(summary['shards'])} shard(s)"
        )
    return 0


def cmd_bench_federation(args: argparse.Namespace) -> int:
    """Handler of the ``repro bench-federation`` subcommand."""
    from repro.federation import bench_federation
    from repro.io import save_json

    shard_counts = [int(value) for value in args.shards.split(",")]
    print(
        f"benchmarking the federation front door: {args.jobs} jobs over "
        f"loopback sockets at {shard_counts} shard(s), "
        f"{args.nodes} nodes, {args.policy} routing ..."
    )
    payload = bench_federation(
        shard_counts=shard_counts,
        jobs=args.jobs,
        rate=args.rate,
        node_count=args.nodes,
        seed=args.seed,
        policy=args.policy,
    )
    for row in payload["results"]:
        latency = row["submit_to_schedule_s"]
        print(
            f"  {row['shards']:>3} shard(s): {row['jobs_per_s']:8.1f} jobs/s, "
            f"submit→schedule p50 {latency['p50'] * 1e3:.2f}ms "
            f"p99 {latency['p99'] * 1e3:.2f}ms "
            f"({latency['samples']} placed), {row['frames']} frames"
        )
    if payload["single_shard_equivalence"]:
        print("  1-shard run matches the single broker exactly")
    if payload["host"]["cpu_limited"]:
        print("  note: single-CPU host — throughput is CPU-bound")
    if args.output:
        save_json(payload, args.output)
        print(f"wrote {args.output}")
    return 0


def cmd_bench_resilience(args: argparse.Namespace) -> int:
    """Handler of the ``repro bench-resilience`` subcommand."""
    from repro.io import save_json
    from repro.service.resilience import bench_resilience

    rates = [float(value) for value in args.rates.split(",")]
    policies = args.policies.split(",")
    print(
        f"benchmarking recovery policies: {args.jobs} jobs on {args.nodes} "
        f"nodes, rates {rates} x policies {policies} "
        f"(seed {args.seed}, disturbance seed {args.disturbance_seed}) ..."
    )
    payload = bench_resilience(
        jobs=args.jobs,
        node_count=args.nodes,
        rates=rates,
        policies=policies,
        seed=args.seed,
        disturbance_seed=args.disturbance_seed,
    )
    for row in payload["results"]:
        print(
            f"  rate {row['rate']:<6g} {row['policy']:<8} "
            f"goodput {row['goodput']:7.3f} node-s/t  "
            f"revoked {row['revocations']:>3}  repaired {row['repaired']:>3}  "
            f"replanned {row['replanned']:>3}  abandoned {row['abandoned']:>3}  "
            f"retired {row['retired']:>3}"
        )
    if args.output:
        save_json(payload, args.output)
        print(f"wrote {args.output}")
    # The headline claim: at the paper-scale disturbance rate, repairing
    # in place must deliver strictly more goodput than replanning.
    from repro.execution import PAPER_DISTURBANCE_RATE
    from repro.service.resilience import goodput_by_policy

    if PAPER_DISTURBANCE_RATE in rates:
        at_paper_rate = goodput_by_policy(payload, PAPER_DISTURBANCE_RATE)
        if {"repair", "replan"} <= set(at_paper_rate):
            repair, replan = at_paper_rate["repair"], at_paper_rate["replan"]
            if repair <= replan:
                print(
                    f"FAIL: repair goodput {repair:.4f} <= replan "
                    f"{replan:.4f} at rate {PAPER_DISTURBANCE_RATE}"
                )
                return 1
            print(
                f"ordering holds at rate {PAPER_DISTURBANCE_RATE}: "
                f"repair {repair:.4f} > replan {replan:.4f}"
            )
    return 0


def cmd_bench_core(args: argparse.Namespace) -> int:
    """Handler of the ``repro bench-core`` subcommand."""
    from repro.core.bench import bench_core
    from repro.io import save_json

    node_counts = [int(value) for value in args.nodes.split(",")]
    print(
        f"benchmarking the scan kernel at {node_counts} nodes "
        f"(best of {args.repeats}, seed {args.seed}) ..."
    )
    payload = bench_core(
        node_counts=node_counts, repeats=args.repeats, seed=args.seed
    )
    for row in payload["results"]:
        print(
            f"  {row['nodes']:>4} nodes {row['criterion']:<11} "
            f"reference {row['reference_windows_per_second']:8.1f} win/s, "
            f"incremental {row['incremental_windows_per_second']:8.1f} win/s "
            f"({row['speedup']:.2f}x); peak {row.get('candidate_peak', '-')}, "
            f"inserts {row.get('candidate_inserts', '-')}"
        )
    if args.output:
        save_json(payload, args.output)
        print(f"wrote {args.output}")
    return 0


def cmd_bench_batch(args: argparse.Namespace) -> int:
    """Handler of the ``repro bench-batch`` subcommand."""
    from repro.core.bench import bench_batch
    from repro.io import save_json

    batch_sizes = [int(value) for value in args.batch_sizes.split(",")]
    print(
        f"benchmarking whole scheduling cycles at batch sizes {batch_sizes} "
        f"on {args.nodes} nodes (best of {args.repeats}, seed {args.seed}) ..."
    )
    payload = bench_batch(
        batch_sizes=batch_sizes,
        node_count=args.nodes,
        repeats=args.repeats,
        seed=args.seed,
    )
    for row in payload["results"]:
        grouping = row["grouping"]
        print(
            f"  {row['search']:<8} batch {row['batch_size']:>4} "
            f"({row['classes']} classes): per-job "
            f"{row['per_job_jobs_per_second']:8.1f} jobs/s, grouped "
            f"{row['grouped_jobs_per_second']:8.1f} jobs/s "
            f"({row['speedup']:.2f}x); sweeps {grouping['batch_sweeps']}, "
            f"shared {grouping['grouped_shared']}"
        )
    if args.output:
        save_json(payload, args.output)
        print(f"wrote {args.output}")
    return 0


def cmd_bench_soak(args: argparse.Namespace) -> int:
    """Handler of the ``repro bench-soak`` subcommand."""
    from repro.io import save_json
    from repro.service.soak import SoakGateError, bench_soak

    print(
        f"soaking the rolling-horizon broker: {args.jobs} jobs at rate "
        f"{args.rate:g} on {args.nodes} nodes, horizon lead {args.lead:g} / "
        f"stride {args.stride:g} ({args.amp_policy} scans) ..."
    )
    try:
        payload = bench_soak(
            jobs=args.jobs,
            node_count=args.nodes,
            rate=args.rate,
            seed=args.seed,
            lead=args.lead,
            stride=args.stride,
            batch_size=args.batch_size,
            amp_policy=args.amp_policy,
            sample_every=args.sample_every,
            min_speedup=args.min_speedup,
            max_p99_ratio=args.max_p99_ratio,
            max_rss_ratio=args.max_rss_ratio,
        )
    except SoakGateError as error:
        print(f"SOAK GATE FAILED\n{error}", file=sys.stderr)
        return 1
    latency = payload["cycle_latency_ms"]
    rss = payload["rss_mb"]
    snapshot = payload["snapshot"]
    print(
        f"  {payload['counts']['cycles']} cycles over "
        f"{payload['virtual']['segments_published']} horizon segments "
        f"in {payload['elapsed_s']:.1f}s wall "
        f"({payload['jobs_per_s']:.1f} jobs/s)"
    )
    print(
        f"  p99 cycle latency {latency['p99_first_decile']:.1f}ms -> "
        f"{latency['p99_last_decile']:.1f}ms "
        f"({latency['p99_ratio']:.2f}x); RSS {rss['first_decile']:.1f}MB -> "
        f"{rss['last_decile']:.1f}MB ({rss['ratio']:.2f}x)"
    )
    print(
        f"  incremental snapshot {snapshot['incremental_us_mean']:.1f}us vs "
        f"rebuild {snapshot['rebuild_us_mean']:.1f}us = "
        f"{snapshot['speedup']:.1f}x over {snapshot['samples']} samples; "
        f"scan kernel {payload['scan_kernel']['vectorized']} vectorized / "
        f"{payload['scan_kernel']['fallback']} fallback"
    )
    if payload["host"]["cpu_limited"]:
        print("  note: single-CPU host — wall throughput is CPU-bound")
    if args.output:
        save_json(payload, args.output)
        print(f"wrote {args.output}")
    return 0


def cmd_bench_tenancy(args: argparse.Namespace) -> int:
    """Handler of the ``repro bench-tenancy`` subcommand."""
    from repro.io import save_json
    from repro.tenancy.bench import TenancyGateError, bench_tenancy

    print(
        f"benchmarking multi-tenant economics: {args.jobs} jobs "
        f"(1 hog + {args.small_tenants} small tenants) on {args.nodes} "
        f"nodes, waves of {args.wave}, batch {args.batch_size} "
        f"(seed {args.seed}) ..."
    )
    try:
        payload = bench_tenancy(
            jobs=args.jobs,
            node_count=args.nodes,
            small_tenants=args.small_tenants,
            arrival_rate=args.rate,
            wave=args.wave,
            seed=args.seed,
            credit=args.credit,
            batch_size=args.batch_size,
        )
    except TenancyGateError as error:
        print(f"TENANCY GATE FAILED\n{error}", file=sys.stderr)
        return 1
    for row in payload["results"]:
        print(
            f"  {row['ordering']:<5} Jain {row['jain_index']:.4f}  "
            f"revenue {row['revenue']:10.2f}  "
            f"multiplier {row['price_multiplier']:.3f}  "
            f"retired {row['retired']:>3}  dropped {row['dropped']:>3}  "
            f"debits {row['credits_debited']:>3} / refunds "
            f"{row['credits_refunded']:>3}"
        )
    by_ordering = {row["ordering"]: row for row in payload["results"]}
    if {"fifo", "drf"} <= set(by_ordering):
        print(
            f"fairness gate holds: DRF Jain "
            f"{by_ordering['drf']['jain_index']:.4f} > FIFO "
            f"{by_ordering['fifo']['jain_index']:.4f}"
        )
    if args.output:
        save_json(payload, args.output)
        print(f"wrote {args.output}")
    return 0


def cmd_bench_experiments(args: argparse.Namespace) -> int:
    """Handler of the ``repro bench-experiments`` subcommand."""
    from repro.io import save_json
    from repro.simulation.bench import InvarianceError, bench_experiments

    worker_counts = [int(value) for value in args.workers.split(",")]
    print(
        f"benchmarking the experiment engine: {args.cycles} cycles on "
        f"{args.nodes} nodes at worker counts {worker_counts} "
        f"(seed {args.seed}, chunk {args.chunk_size}) ..."
    )
    try:
        payload = bench_experiments(
            cycles=args.cycles,
            worker_counts=worker_counts,
            seed=args.seed,
            node_count=args.nodes,
            chunk_size=args.chunk_size,
        )
    except InvarianceError as error:
        print(f"WORKER-COUNT INVARIANCE VIOLATION\n{error}", file=sys.stderr)
        return 1
    for row in payload["results"]:
        speedup = row.get("speedup_vs_1_worker")
        print(
            f"  {row['mode']:<12} workers {row['workers']}: "
            f"{row['seconds']:8.2f}s  {row['cycles_per_second']:7.1f} cycles/s"
            + (f"  {speedup:.2f}x vs 1 worker" if speedup is not None else "")
        )
    host = payload["host"]
    print(
        f"aggregates bit-identical across all rows "
        f"(fingerprint {payload['aggregate_fingerprint'][:16]}); "
        f"{host['usable_cpus']} usable CPU(s)"
        + (" — speedup is CPU-bound on this host" if host["cpu_limited"] else "")
    )
    if args.output:
        save_json(payload, args.output)
        print(f"wrote {args.output}")
    return 0


def cmd_presets(args: argparse.Namespace) -> int:
    """Handler of the ``repro presets`` subcommand."""
    from repro.environment import PRESETS, EnvironmentGenerator, preset

    rows = []
    for name in sorted(PRESETS):
        config = preset(name, node_count=args.nodes, seed=args.seed)
        environment = EnvironmentGenerator(config).generate()
        rows.append(
            [
                name,
                f"{config.performance_range[0]}-{config.performance_range[1]}",
                f"{config.load.load_range[0]:.0%}-{config.load.load_range[1]:.0%}",
                f"{config.pricing.exponent:g}/{config.pricing.sigma:g}",
                len(environment.slots()),
                f"{environment.utilization():.0%}",
            ]
        )
    print(
        render_table(
            ["preset", "perf", "load range", "price exp/sigma", "slots", "util"],
            rows,
            title=f"environment presets ({args.nodes} nodes, seed {args.seed})",
        )
    )
    return 0


def cmd_flow(args: argparse.Namespace) -> int:
    """Handler of the ``repro flow`` subcommand."""
    from repro.scheduling import BatchScheduler, FlowConfig, JobFlowSimulation
    from repro.simulation import FlowTrace, JobGenerator

    config = FlowConfig(
        cycles=args.cycles,
        arrivals_per_cycle=args.arrivals,
        environment=EnvironmentConfig(node_count=args.nodes),
        seed=args.seed,
    )
    scheduler = BatchScheduler(
        search=CSA(max_alternatives=args.alternatives),
        criterion=Criterion[args.criterion.upper()],
    )
    trace = FlowTrace() if args.trace else None
    simulation = JobFlowSimulation(
        config,
        scheduler=scheduler,
        job_generator=JobGenerator(seed=args.seed),
        trace=trace,
    )
    result = simulation.run()
    rows = [
        [
            stats.cycle,
            stats.submitted,
            stats.scheduled,
            stats.deferred,
            stats.dropped,
            round(stats.total_cost, 1),
            round(stats.makespan, 1),
        ]
        for stats in result.cycles
    ]
    print(
        render_table(
            ["cycle", "submitted", "scheduled", "deferred", "dropped", "cost", "makespan"],
            rows,
            title=(
                f"job flow: {args.cycles} cycles x {args.arrivals} arrivals, "
                f"policy {args.criterion}"
            ),
        )
    )
    print(
        f"\nthroughput {result.throughput:.2f} jobs/cycle, "
        f"drop rate {result.drop_rate:.0%}, "
        f"mean cost {result.cost.mean:.1f}, "
        f"mean wait {result.waiting_cycles.mean:.2f} cycles, "
        f"service fairness {result.fairness.service_fairness:.2f}"
    )
    if trace is not None:
        trace.save(args.trace)
        print(f"wrote event trace to {args.trace} ({len(trace.events)} events)")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Handler of the ``repro report`` subcommand."""
    from repro.analysis.report import build_report

    config = _experiment_config(args)
    print(f"running {config.cycles} cycles for the report ...")
    result = run_comparison(config)
    node_study = interval_study = None
    if args.reps > 0:
        print("running the Table 1 / Table 2 sweeps ...")
        node_study = sweep_node_counts(config, (50, 100, 200), args.reps)
        interval_study = sweep_interval_lengths(
            config, (600.0, 1200.0, 2400.0), args.reps
        )
    text = build_report(result, node_study, interval_study)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command-line interface definition."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Slot selection & co-allocation experiments (PaCT 2013 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare", help="run the Figs. 2-4 comparison")
    compare.add_argument("--cycles", type=int, default=200)
    compare.add_argument("--nodes", type=int, default=100)
    compare.add_argument("--seed", type=int, default=2013)
    compare.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for the cycle fan-out (0 = in-process; "
             "aggregates are identical for every value)",
    )
    compare.add_argument(
        "--stream-mode", default="spawned", choices=["spawned", "sequential"],
        help="per-cycle RNG discipline: spawned = independent parallel-safe "
             "streams (default), sequential = the legacy single stream",
    )
    compare.add_argument(
        "--latex", help="also write the figure tables as LaTeX to this path"
    )
    compare.set_defaults(func=cmd_compare)

    nodes = sub.add_parser("sweep-nodes", help="the Table 1 working-time sweep")
    nodes.add_argument("--counts", default="50,100,200,300,400")
    nodes.add_argument("--reps", type=int, default=20)
    nodes.add_argument("--cycles", type=int, default=1)
    nodes.add_argument("--nodes", type=int, default=100)
    nodes.add_argument("--seed", type=int, default=2013)
    nodes.set_defaults(func=cmd_sweep_nodes)

    interval = sub.add_parser(
        "sweep-interval", help="the Table 2 working-time sweep"
    )
    interval.add_argument("--lengths", default="600,1200,1800,2400,3000,3600")
    interval.add_argument("--reps", type=int, default=20)
    interval.add_argument("--cycles", type=int, default=1)
    interval.add_argument("--nodes", type=int, default=100)
    interval.add_argument("--seed", type=int, default=2013)
    interval.set_defaults(func=cmd_sweep_interval)

    generate = sub.add_parser("generate", help="generate an environment JSON")
    generate.add_argument("--nodes", type=int, default=100)
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("-o", "--output", required=True)
    generate.set_defaults(func=cmd_generate)

    schedule = sub.add_parser("schedule", help="run one batch scheduling cycle")
    schedule.add_argument("--env", help="environment JSON (else generate fresh)")
    schedule.add_argument("--nodes", type=int, default=60)
    schedule.add_argument("--seed", type=int, default=7)
    schedule.add_argument("--jobs", type=int, default=5)
    schedule.add_argument("--alternatives", type=int, default=15)
    schedule.add_argument(
        "--criterion",
        default="finish_time",
        choices=[criterion.value for criterion in Criterion],
    )
    schedule.add_argument("--gantt", action="store_true", help="draw an ASCII Gantt")
    schedule.add_argument(
        "--json", action="store_true", help="emit the assignments as JSON"
    )
    schedule.set_defaults(func=cmd_schedule)

    serve = sub.add_parser(
        "serve", help="stream a scripted arrival trace through the broker service"
    )
    serve.add_argument("--jobs", type=int, default=100)
    serve.add_argument("--nodes", type=int, default=50)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--rate", type=float, default=2.0, help="mean arrivals per virtual time unit"
    )
    serve.add_argument("--workers", type=int, default=1,
                       help="phase-one search workers")
    serve.add_argument("--worker-mode", choices=("thread", "process"),
                       default="thread",
                       help="phase-one fan-out transport: threads over the "
                            "shared snapshot, or processes fed through a "
                            "shared-memory snapshot")
    serve.add_argument("--batch-size", type=int, default=8,
                       help="queue depth that triggers a cycle")
    serve.add_argument("--max-wait", type=float, default=25.0,
                       help="max virtual-time wait before a cycle fires")
    serve.add_argument("--alternatives", type=int, default=10)
    serve.add_argument(
        "--criterion",
        default="finish_time",
        choices=[criterion.value for criterion in Criterion],
    )
    serve.add_argument(
        "--completion-factor", type=float, default=1.0,
        help="fraction of the reservation jobs actually use (<1 = early finish)",
    )
    serve.add_argument(
        "--disturbance-rate", type=float, default=0.0,
        help="local-job arrivals per active node per virtual time unit "
             "(0 = no fault injection, the default)",
    )
    serve.add_argument(
        "--disturbance-seed", type=int, default=97,
        help="root seed of the revocation injector's spawned streams",
    )
    serve.add_argument(
        "--recovery-policy", default="repair",
        choices=["repair", "replan", "abandon"],
        help="what to do with a committed window hit by a revocation",
    )
    serve.add_argument(
        "--trace", help="write a JSONL event trace (one event per line) here"
    )
    serve.add_argument(
        "--validate-trace", action="store_true",
        help="replay the event stream through the TraceValidator; "
             "exit non-zero on any conservation violation",
    )
    serve.add_argument("--json", action="store_true", help="emit the stats as JSON")
    serve.set_defaults(func=cmd_serve)

    bench = sub.add_parser(
        "bench-service", help="broker-service throughput across pool sizes"
    )
    bench.add_argument("--nodes", default="50,200",
                       help="comma-separated node counts")
    bench.add_argument("--jobs", type=int, default=200)
    bench.add_argument("--rate", type=float, default=2.0)
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--seed", type=int, default=2013)
    bench.add_argument("--trace",
                       help="archive each run's JSONL event trace "
                            "(per-pool-size files derived from this path)")
    bench.add_argument("-o", "--output",
                       help="write the JSON payload here (BENCH_service.json)")
    bench.set_defaults(func=cmd_bench_service)

    serve_fed = sub.add_parser(
        "serve-federation",
        help="serve a sharded broker federation over loopback TCP",
    )
    serve_fed.add_argument("--shards", type=int, default=4)
    serve_fed.add_argument("--nodes", type=int, default=64)
    serve_fed.add_argument("--seed", type=int, default=7)
    serve_fed.add_argument(
        "--policy", default="hash", choices=list(_FEDERATION_POLICIES),
        help="placement policy ordering the shards per job",
    )
    serve_fed.add_argument(
        "--jobs", type=int, default=0,
        help="self-drive this many scripted arrivals through a loopback "
             "client and exit (0 = listen until shutdown/SIGTERM)",
    )
    serve_fed.add_argument(
        "--rate", type=float, default=2.0,
        help="mean arrivals per virtual time unit (self-drive mode)",
    )
    serve_fed.add_argument("--host", default="127.0.0.1")
    serve_fed.add_argument(
        "--port", type=int, default=0,
        help="TCP port to bind (0 picks a free port and prints it)",
    )
    serve_fed.add_argument("--workers", type=int, default=1,
                           help="phase-one search workers per shard")
    serve_fed.add_argument("--worker-mode", choices=("thread", "process"),
                           default="thread",
                           help="phase-one fan-out transport per shard")
    serve_fed.add_argument("--batch-size", type=int, default=8)
    serve_fed.add_argument("--max-wait", type=float, default=25.0)
    serve_fed.add_argument("--alternatives", type=int, default=10)
    serve_fed.add_argument(
        "--criterion",
        default="finish_time",
        choices=[criterion.value for criterion in Criterion],
    )
    serve_fed.add_argument(
        "--no-coallocation", action="store_true",
        help="disable the cross-shard co-allocation fallback",
    )
    serve_fed.add_argument(
        "--trace", help="write the merged JSONL event trace here"
    )
    serve_fed.add_argument(
        "--validate-trace", action="store_true",
        help="replay the merged stream through the FederationTraceValidator; "
             "exit non-zero on any conservation violation",
    )
    serve_fed.add_argument("--json", action="store_true",
                           help="emit the stats as JSON")
    serve_fed.set_defaults(func=cmd_serve_federation)

    bench_fed = sub.add_parser(
        "bench-federation",
        help="federation latency/throughput over real loopback sockets",
    )
    bench_fed.add_argument("--shards", default="1,4,16",
                           help="comma-separated shard counts")
    bench_fed.add_argument("--jobs", type=int, default=200)
    bench_fed.add_argument("--rate", type=float, default=2.0)
    bench_fed.add_argument("--nodes", type=int, default=64)
    bench_fed.add_argument("--seed", type=int, default=2013)
    bench_fed.add_argument(
        "--policy", default="hash", choices=list(_FEDERATION_POLICIES)
    )
    bench_fed.add_argument("-o", "--output",
                           help="write the JSON payload here "
                                "(BENCH_federation.json)")
    bench_fed.set_defaults(func=cmd_bench_federation)

    bench_resilience = sub.add_parser(
        "bench-resilience",
        help="recovery-policy goodput under live slot revocation",
    )
    bench_resilience.add_argument("--jobs", type=int, default=150)
    bench_resilience.add_argument("--nodes", type=int, default=50)
    bench_resilience.add_argument(
        "--rates", default="0.0,0.002,0.01",
        help="comma-separated disturbance rates (arrivals/node/time unit)",
    )
    bench_resilience.add_argument(
        "--policies", default="repair,replan,abandon",
        help="comma-separated recovery policies to sweep",
    )
    bench_resilience.add_argument("--seed", type=int, default=2013,
                                  help="job-stream / environment seed")
    bench_resilience.add_argument("--disturbance-seed", type=int, default=97,
                                  help="revocation injector seed")
    bench_resilience.add_argument(
        "-o", "--output",
        help="write the JSON payload here (BENCH_resilience.json)",
    )
    bench_resilience.set_defaults(func=cmd_bench_resilience)

    bench_core = sub.add_parser(
        "bench-core", help="scan-kernel windows/s, incremental vs reference"
    )
    bench_core.add_argument("--nodes", default="50,100,200",
                            help="comma-separated node counts")
    bench_core.add_argument("--repeats", type=int, default=3,
                            help="timing repetitions per row (best-of)")
    bench_core.add_argument("--seed", type=int, default=2013)
    bench_core.add_argument("-o", "--output",
                            help="write the JSON payload here (BENCH_core.json)")
    bench_core.set_defaults(func=cmd_bench_core)

    bench_batch = sub.add_parser(
        "bench-batch",
        help="whole-cycle jobs/s, per-job vs request-class-grouped dispatch",
    )
    bench_batch.add_argument("--batch-sizes", default="16,64,256",
                             help="comma-separated job-batch sizes")
    bench_batch.add_argument("--nodes", type=int, default=200,
                             help="pool size (nodes)")
    bench_batch.add_argument("--repeats", type=int, default=3,
                             help="timing repetitions per row (best-of)")
    bench_batch.add_argument("--seed", type=int, default=2013)
    bench_batch.add_argument("-o", "--output",
                             help="write the JSON payload here (BENCH_batch.json)")
    bench_batch.set_defaults(func=cmd_bench_batch)

    bench_experiments = sub.add_parser(
        "bench-experiments",
        help="experiment-engine wall-clock across worker counts "
             "(verifies worker-count-invariant aggregates)",
    )
    bench_experiments.add_argument("--cycles", type=int, default=250)
    bench_experiments.add_argument("--nodes", type=int, default=100)
    bench_experiments.add_argument("--seed", type=int, default=2013)
    bench_experiments.add_argument(
        "--workers", default="1,2,4,8",
        help="comma-separated worker counts (the in-process reference row "
             "always runs first)",
    )
    bench_experiments.add_argument(
        "--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
        help="cycles per worker task (fixed per run; part of the "
             "deterministic merge tree)",
    )
    bench_experiments.add_argument(
        "-o", "--output",
        help="write the JSON payload here (BENCH_experiments.json)",
    )
    bench_experiments.set_defaults(func=cmd_bench_experiments)

    bench_soak = sub.add_parser(
        "bench-soak",
        help="rolling-horizon soak: flat-memory / stable-latency gates "
             "over 10^5 jobs and hundreds of horizon segments",
    )
    bench_soak.add_argument("--jobs", type=int, default=100_000)
    bench_soak.add_argument("--nodes", type=int, default=200)
    bench_soak.add_argument("--rate", type=float, default=0.8,
                            help="mean arrivals per virtual time unit")
    bench_soak.add_argument("--seed", type=int, default=2013)
    bench_soak.add_argument("--lead", type=float, default=600.0,
                            help="rolling-horizon lead (time units ahead "
                                 "of now the pool must cover)")
    bench_soak.add_argument("--stride", type=float, default=600.0,
                            help="horizon segment length")
    bench_soak.add_argument("--batch-size", type=int, default=8)
    bench_soak.add_argument(
        "--amp-policy", default="cheapest", choices=("cheapest", "first"),
        help="phase-one AMP policy: cheapest rides the vectorized scan "
             "kernel, first is the paper-faithful object loop",
    )
    bench_soak.add_argument("--sample-every", type=int, default=64,
                            help="cycles between RSS / snapshot-cost probes")
    bench_soak.add_argument("--min-speedup", type=float, default=5.0,
                            help="refuse-to-record gate: incremental "
                                 "snapshot vs per-cycle rebuild")
    bench_soak.add_argument("--max-p99-ratio", type=float, default=1.2,
                            help="refuse-to-record gate: last-decile p99 "
                                 "over first-decile p99 (post-warmup)")
    bench_soak.add_argument("--max-rss-ratio", type=float, default=1.2,
                            help="refuse-to-record gate: last-decile RSS "
                                 "over first-decile RSS (post-warmup)")
    bench_soak.add_argument("-o", "--output",
                            help="write the JSON payload here "
                                 "(BENCH_soak.json)")
    bench_soak.set_defaults(func=cmd_bench_soak)

    bench_tenancy = sub.add_parser(
        "bench-tenancy",
        help="multi-tenant fairness and revenue: DRF vs FIFO cycle "
             "ordering under a hog-vs-small-tenants mix",
    )
    bench_tenancy.add_argument("--jobs", type=int, default=160)
    bench_tenancy.add_argument("--nodes", type=int, default=16)
    bench_tenancy.add_argument("--small-tenants", type=int, default=4,
                               help="tenants sharing the non-hog half of "
                                    "the stream")
    bench_tenancy.add_argument("--rate", type=float, default=8.0,
                               help="mean arrivals per virtual time unit")
    bench_tenancy.add_argument("--wave", type=int, default=24,
                               help="jobs per arrival burst (must exceed "
                                    "the batch size for ordering to bite)")
    bench_tenancy.add_argument("--seed", type=int, default=2013)
    bench_tenancy.add_argument("--credit", type=float, default=1_000_000.0,
                               help="initial credit per tenant account")
    bench_tenancy.add_argument("--batch-size", type=int, default=4)
    bench_tenancy.add_argument(
        "-o", "--output",
        help="write the JSON payload here (BENCH_tenancy.json)",
    )
    bench_tenancy.set_defaults(func=cmd_bench_tenancy)

    presets = sub.add_parser("presets", help="list environment presets")
    presets.add_argument("--nodes", type=int, default=100)
    presets.add_argument("--seed", type=int, default=1)
    presets.set_defaults(func=cmd_presets)

    flow = sub.add_parser("flow", help="run a multi-cycle job-flow simulation")
    flow.add_argument("--cycles", type=int, default=6)
    flow.add_argument("--arrivals", type=int, default=4)
    flow.add_argument("--nodes", type=int, default=50)
    flow.add_argument("--seed", type=int, default=7)
    flow.add_argument("--alternatives", type=int, default=10)
    flow.add_argument(
        "--criterion",
        default="finish_time",
        choices=[criterion.value for criterion in Criterion],
    )
    flow.add_argument("--trace", help="write a JSON event trace to this path")
    flow.set_defaults(func=cmd_flow)

    report = sub.add_parser(
        "report", help="write a markdown reproduction report (Figs. 2-4 + sweeps)"
    )
    report.add_argument("--cycles", type=int, default=200)
    report.add_argument("--nodes", type=int, default=100)
    report.add_argument("--seed", type=int, default=2013)
    report.add_argument("--reps", type=int, default=0,
                        help="timing-sweep repetitions (0 skips Tables 1-2)")
    report.add_argument("-o", "--output", required=True)
    report.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
