"""Configuration of the sharded broker federation.

One :class:`FederationConfig` describes the whole tier: how many shards
the node pool is split into, which placement policy the router uses, the
per-shard :class:`~repro.service.ServiceConfig` every shard broker runs
with, and whether the cross-shard co-allocation fallback is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.errors import ConfigurationError
from repro.service.config import ServiceConfig

#: Placement policies the router knows (see :mod:`repro.federation.router`).
POLICY_NAMES = ("hash", "least-loaded", "criterion")


@dataclass(frozen=True)
class FederationConfig:
    """Operational knobs of the federation tier.

    Parameters
    ----------
    shards:
        Number of per-shard brokers the node pool is partitioned across.
    policy:
        Placement policy name (one of :data:`POLICY_NAMES`): ``hash``
        (deterministic id-based spread), ``least-loaded`` (live queue
        depth + active windows), or ``criterion`` (cheapest-fit /
        earliest-fit estimate under the service's criterion).
    service:
        The configuration every shard broker runs with.  One shared
        config keeps the shards behaviourally identical, which is what
        makes the 1-shard federation bit-compatible with a single broker.
    coallocation:
        Enable the cross-shard co-allocation fallback: when every shard
        rejects a job for capacity (too few nodes) or budget, a combined
        window is searched over the union of the live shard pools and
        committed leg-by-leg with rollback on failure.
    coallocation_alternatives:
        Phase-one alternative cap of the fallback's CSA search.
    """

    shards: int = 4
    policy: str = "hash"
    service: ServiceConfig = field(default_factory=ServiceConfig)
    coallocation: bool = True
    coallocation_alternatives: int = 10

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.policy not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown placement policy {self.policy!r}; "
                f"choose one of {', '.join(POLICY_NAMES)}"
            )
        if self.coallocation_alternatives < 1:
            raise ConfigurationError(
                "coallocation_alternatives must be >= 1, got "
                f"{self.coallocation_alternatives}"
            )
