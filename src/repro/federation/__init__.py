"""Sharded multi-broker federation with an asyncio network front door.

The single :class:`~repro.service.broker.BrokerService` of the service
layer scales the *paper's* scheduling cycle; this package scales the
*deployment*: the environment's nodes are partitioned into shards, each
shard runs a full broker (admission, cycle batching, resilience) on a
shared virtual clock, and an intake tier routes jobs across them —
mirroring the master/daemon split of network-resident metascheduling
systems (Uberun-style), where a front-door master speaks a wire protocol
and autonomous per-partition daemons own their resources.

Layers, bottom up:

* :mod:`~repro.federation.sharding` — node partitioning, the per-shard
  broker wrappers, and :class:`ShardManager`, the intake tier;
* :mod:`~repro.federation.router` — pluggable placement policies
  (``hash``, ``least-loaded``, ``criterion``);
* :mod:`~repro.federation.coallocation` — cross-shard windows with
  two-phase commit/rollback;
* :mod:`~repro.federation.tracing` — conservation laws for merged
  federation traces;
* :mod:`~repro.federation.protocol` / :mod:`~repro.federation.server` /
  :mod:`~repro.federation.client` — the length-prefixed JSON frame
  protocol and its asyncio endpoints;
* :mod:`~repro.federation.bench` — socket-driven latency/throughput
  benchmark with refuse-to-record invariant checks.
"""

from repro.federation.bench import SubmitLatencyRecorder, bench_federation
from repro.federation.client import FederationClient, FederationClientError
from repro.federation.coallocation import CoAllocation, CoAllocator
from repro.federation.config import POLICY_NAMES, FederationConfig
from repro.federation.protocol import (
    MAX_FRAME,
    ProtocolError,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.federation.router import (
    CriterionAwarePolicy,
    HashPolicy,
    LeastLoadedPolicy,
    PlacementPolicy,
    earliest_fit_estimate,
    make_policy,
    stable_hash,
)
from repro.federation.server import FederationServer
from repro.federation.sharding import (
    FederationDecision,
    FederationStats,
    Shard,
    ShardManager,
    ShardTagSink,
    partition_nodes,
    partition_pool,
)
from repro.federation.tracing import (
    FederationTraceValidator,
    FedJobState,
    validate_federation_trace_file,
)

__all__ = [
    "MAX_FRAME",
    "POLICY_NAMES",
    "CoAllocation",
    "CoAllocator",
    "CriterionAwarePolicy",
    "FederationClient",
    "FederationClientError",
    "FederationConfig",
    "FederationDecision",
    "FederationServer",
    "FederationStats",
    "FederationTraceValidator",
    "FedJobState",
    "HashPolicy",
    "LeastLoadedPolicy",
    "PlacementPolicy",
    "ProtocolError",
    "Shard",
    "ShardManager",
    "ShardTagSink",
    "SubmitLatencyRecorder",
    "bench_federation",
    "earliest_fit_estimate",
    "encode_frame",
    "make_policy",
    "partition_nodes",
    "partition_pool",
    "read_frame",
    "stable_hash",
    "validate_federation_trace_file",
    "write_frame",
]
