"""Length-prefixed JSON frames for the federation front door.

One frame = a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON (one object per frame).  Requests carry an ``op``
field; responses carry ``ok`` plus op-specific payload.  The format is
deliberately dumb: self-delimiting (no sniffing for newlines inside
payloads), bounded (:data:`MAX_FRAME` caps a single allocation), and
debuggable with ``xxd``.

Supported operations (see :class:`~repro.federation.server.FederationServer`
for the authoritative dispatch):

``submit``     offer a job (``job`` payload, optional ``at`` arrival time)
``status``     locate a job id across the shards
``cancel``     withdraw a queued job
``stats``      federation + per-shard counters
``advance``    move the shared virtual clock (``to``)
``drain``      run every shard to quiescence
``ping``       liveness probe
``kill-shard`` simulate a shard death (``shard``)
``shutdown``   close the federation and stop serving
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any

#: Upper bound on a single frame's payload, bytes.  A submit frame is a
#: few hundred bytes; a 16-shard stats frame a few KiB.  1 MiB leaves
#: generous headroom while keeping a corrupt length prefix from turning
#: into a multi-gigabyte allocation.
MAX_FRAME = 1 << 20

_LENGTH = struct.Struct("!I")


class ProtocolError(Exception):
    """A malformed, oversized, or truncated frame."""


def encode_frame(message: dict[str, Any]) -> bytes:
    """Serialise one message to its on-wire representation."""
    payload = json.dumps(
        message, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict[str, Any]:
    """Parse a frame payload; the top level must be a JSON object."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame payload: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-header ({len(error.partial)} of "
            f"{_LENGTH.size} bytes)"
        ) from error
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(
            f"declared frame length {length} exceeds MAX_FRAME ({MAX_FRAME})"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            f"connection closed mid-frame ({len(error.partial)} of "
            f"{length} bytes)"
        ) from error
    return decode_payload(payload)


async def write_frame(
    writer: asyncio.StreamWriter, message: dict[str, Any]
) -> None:
    """Write one frame and wait for the transport buffer to drain.

    The ``drain()`` is the per-connection backpressure: a slow reader
    suspends its own coroutine here instead of growing an unbounded
    outbound buffer.
    """
    writer.write(encode_frame(message))
    await writer.drain()
