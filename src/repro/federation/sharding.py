"""The shard manager: N brokers, one pool partition, one shared clock.

This is the federation's control plane.  The environment's node set is
partitioned round-robin into per-shard :class:`~repro.model.SlotPool`\\ s
(whole nodes, never split slots — a node's free time belongs to exactly
one shard, so per-node disjointness survives partitioning trivially) and
each shard runs the *unchanged* :class:`~repro.service.BrokerService`
lifecycle: admission, size-or-deadline cycle batching, retirement,
optional resilience.

The manager drives every live shard on one shared virtual clock by
stepping to the minimum of the shards' ``next_event_time()``\\ s, so no
shard ever skips a due cycle, completion or retry wake-up.  Intake goes
through a :class:`~repro.federation.router.PlacementPolicy`: shards are
offered the job in policy order until one admits it; when all reject for
capacity or budget, the cross-shard
:class:`~repro.federation.coallocation.CoAllocator` gets one attempt.

Tracing: shard brokers emit through a :class:`ShardTagSink` that
re-sequences their events onto the federation emitter with a
``shard_id`` payload field, so one merged JSONL trace carries both tiers
and :class:`~repro.federation.tracing.FederationTraceValidator` can
demultiplex it back.  Federation-level events (ROUTED, COALLOCATED,
SHARD_LOST, and the intake tier's own SUBMITTED/REJECTED/...) carry no
``shard_id``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.federation.coallocation import CoAllocation, CoAllocator
from repro.federation.config import FederationConfig
from repro.federation.router import PlacementPolicy, make_policy
from repro.model.errors import ConfigurationError, SchedulingError
from repro.model.job import Job
from repro.model.slot import TIME_EPSILON
from repro.model.slotpool import SlotPool
from repro.service.admission import RejectionReason
from repro.service.broker import BrokerService
from repro.service.events import Event, EventEmitter, EventSink, EventType
from repro.service.stats import ServiceStats


def partition_nodes(node_ids: Sequence[int], shards: int) -> list[list[int]]:
    """Deal the (sorted) node ids round-robin across ``shards`` groups.

    Round-robin over the sorted ids interleaves the environment's
    performance/price spectrum across shards instead of giving shard 0
    all the low ids, so shard capacity profiles stay comparable.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    ordered = sorted(node_ids)
    if len(set(ordered)) != len(ordered):
        raise ConfigurationError("node ids must be unique")
    if len(ordered) < shards:
        raise ConfigurationError(
            f"cannot split {len(ordered)} nodes across {shards} shards"
        )
    return [list(ordered[index::shards]) for index in range(shards)]


def partition_pool(
    pool: SlotPool, assignments: Sequence[Sequence[int]]
) -> list[SlotPool]:
    """Split a pool into per-shard pools along a node assignment.

    Every slot lands verbatim (no coalescing — the source pool is
    already canonical) in the pool of the shard owning its node, so the
    shard pools are a *partition*: total node-seconds are conserved and
    each node's slots move wholly to one shard.  Property-tested in
    ``tests/federation/test_sharding.py``.
    """
    shard_of: dict[int, int] = {}
    for shard_id, node_ids in enumerate(assignments):
        for node_id in node_ids:
            if node_id in shard_of:
                raise ConfigurationError(
                    f"node {node_id} assigned to two shards"
                )
            shard_of[node_id] = shard_id
    pools = [
        SlotPool(min_usable_length=pool.min_usable_length)
        for _ in assignments
    ]
    for slot in pool:
        shard_id = shard_of.get(slot.node.node_id)
        if shard_id is None:
            raise ConfigurationError(
                f"slot on node {slot.node.node_id} has no shard assignment"
            )
        pools[shard_id].add(slot, coalesce=False)
    return pools


class ShardTagSink(EventSink):
    """Forwards a shard broker's events into the federation emitter.

    Each event is re-stamped onto the federation's shared sequence
    counter with the ``shard_id`` payload field merged in (see
    :meth:`~repro.service.events.EventEmitter.ingest`), which is what
    lets one merged trace be demultiplexed back into per-shard streams.
    """

    def __init__(self, emitter: EventEmitter, shard_id: int):
        self._emitter = emitter
        self.shard_id = shard_id

    def emit(self, event: Event) -> None:
        self._emitter.ingest(event, shard_id=self.shard_id)


@dataclass
class Shard:
    """One partition member: its broker, its nodes, and liveness."""

    shard_id: int
    broker: BrokerService
    node_ids: tuple[int, ...]
    alive: bool = True


@dataclass
class FederationStats:
    """Intake-tier counters (per-shard counters live in each broker)."""

    submitted: int = 0
    routed: int = 0
    rerouted: int = 0
    coallocated: int = 0
    coalloc_retired: int = 0
    rejected: int = 0
    dropped: int = 0
    shard_losses: int = 0
    rejected_by_reason: dict[str, int] = field(default_factory=dict)

    def record_rejection(self, reason: str) -> None:
        self.rejected += 1
        self.rejected_by_reason[reason] = (
            self.rejected_by_reason.get(reason, 0) + 1
        )


@dataclass(frozen=True)
class FederationDecision:
    """Outcome of one federation-level submission."""

    admitted: bool
    shard_id: Optional[int] = None
    shard_ids: tuple[int, ...] = ()
    coallocated: bool = False
    reason: Optional[str] = None

    def __bool__(self) -> bool:
        return self.admitted


class ShardManager:
    """Partitions the pool, routes intake, and drives the shared clock.

    Parameters
    ----------
    pool:
        The whole environment pool; it is consumed into per-shard pools
        (the manager owns the partition, callers must not keep mutating
        the original).
    config:
        Federation knobs; the embedded service config is shared by every
        shard broker.
    sinks:
        Federation-level event consumers.  When empty, shard brokers run
        entirely untraced (no tag sinks are attached), so an untraced
        federation pays nothing for the event layer.  Sinks must be
        passed at construction — shard brokers wire their tag sinks once.
    clock_start:
        Initial shared virtual time.
    """

    def __init__(
        self,
        pool: SlotPool,
        config: Optional[FederationConfig] = None,
        sinks: Sequence[EventSink] = (),
        clock_start: float = 0.0,
    ):
        self.config = config if config is not None else FederationConfig()
        self._now = clock_start
        self.events = EventEmitter(sinks, clock=lambda: self._now)
        # One tenancy manager shared by every shard broker and the
        # co-allocator: tenants hold a single federation-wide credit
        # account and DRF share, not one per shard.  Imported lazily so
        # a tenancy-free federation never loads the package.
        self._tenancy = None
        if self.config.service.tenancy is not None:
            from repro.tenancy.manager import TenancyManager

            self._tenancy = TenancyManager(self.config.service.tenancy)
        node_ids = sorted(pool.by_node())
        assignments = partition_nodes(node_ids, self.config.shards)
        pools = partition_pool(pool, assignments)
        self.shards: list[Shard] = []
        self._node_shard: dict[int, int] = {}
        for shard_id, (ids, shard_pool) in enumerate(zip(assignments, pools)):
            broker_sinks: list[EventSink] = (
                [ShardTagSink(self.events, shard_id)]
                if self.events.enabled
                else []
            )
            broker = BrokerService(
                shard_pool,
                config=self.config.service,
                clock_start=clock_start,
                sinks=broker_sinks,
                tenancy=self._tenancy,
            )
            self.shards.append(
                Shard(shard_id=shard_id, broker=broker, node_ids=tuple(ids))
            )
            for node_id in ids:
                self._node_shard[node_id] = shard_id
        self.router: PlacementPolicy = make_policy(
            self.config.policy, self.config.service.criterion
        )
        self._coalloc: Optional[CoAllocator] = (
            CoAllocator(
                self.config.service,
                alternatives=self.config.coallocation_alternatives,
                tenancy=self._tenancy,
                emitter=self.events,
            )
            if self.config.coallocation
            else None
        )
        self.stats = FederationStats()

    # ------------------------------------------------------------------
    # Resource management
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every shard broker's worker pool (idempotent)."""
        for shard in self.shards:
            shard.broker.close()

    def __enter__(self) -> "ShardManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current shared virtual time."""
        return self._now

    @property
    def coallocator(self) -> Optional[CoAllocator]:
        """The cross-shard fallback, or ``None`` when disabled."""
        return self._coalloc

    @property
    def tenancy(self):
        """The shared tenancy manager, or ``None`` when the layer is off."""
        return self._tenancy

    def live_shards(self) -> list[Shard]:
        """Shards still alive, ascending shard id."""
        return [shard for shard in self.shards if shard.alive]

    def _live_pools(self) -> dict[int, SlotPool]:
        return {
            shard.shard_id: shard.broker.pool for shard in self.live_shards()
        }

    def locate(self, job_id: str) -> Optional[dict[str, object]]:
        """Where a job currently lives, ``None`` when unknown.

        Returns ``{"state": "shard", "shard": id}`` for jobs owned by a
        shard broker (queued, active or retry-pending) and
        ``{"state": "coallocated", "shards": [...]}`` for cross-shard
        windows.
        """
        for shard in self.live_shards():
            if job_id in shard.broker.in_flight_ids():
                return {"state": "shard", "shard": shard.shard_id}
        if self._coalloc is not None:
            entry = self._coalloc.get(job_id)
            if entry is not None:
                return {"state": "coallocated", "shards": entry.shard_ids}
        return None

    def stats_snapshot(self) -> dict[str, object]:
        """Intake counters plus per-shard stats and their aggregate.

        ``scan_kernel`` carries the vectorized kernel's dispatch
        telemetry (process-wide — the shard brokers of one manager share
        the dispatch table), so ``stats`` wire-op clients can assert the
        hot path ran vectorized without shelling into the server.
        """
        from repro.core.vectorized import scan_counters

        aggregate = {
            "submitted": 0,
            "admitted": 0,
            "rejected": 0,
            "scheduled": 0,
            "dropped": 0,
            "retired": 0,
        }
        per_shard: list[dict[str, object]] = []
        for shard in self.shards:
            stats: ServiceStats = shard.broker.stats
            per_shard.append(
                {
                    "shard": shard.shard_id,
                    "alive": shard.alive,
                    "nodes": len(shard.node_ids),
                    "submitted": stats.submitted,
                    "admitted": stats.admitted,
                    "rejected": stats.rejected,
                    "scheduled": stats.scheduled,
                    "dropped": stats.dropped,
                    "retired": stats.retired,
                    "cycles": stats.cycles,
                    "queue_depth": stats.queue_depth,
                    "active_jobs": stats.active_jobs,
                }
            )
            for key in aggregate:
                aggregate[key] += int(per_shard[-1][key])
        snapshot: dict[str, object] = {
            "now": self._now,
            "policy": self.router.name,
            "federation": {
                "submitted": self.stats.submitted,
                "routed": self.stats.routed,
                "rerouted": self.stats.rerouted,
                "coallocated": self.stats.coallocated,
                "coalloc_retired": self.stats.coalloc_retired,
                "coalloc_active": (
                    self._coalloc.active_count
                    if self._coalloc is not None
                    else 0
                ),
                "rejected": self.stats.rejected,
                "rejected_by_reason": dict(self.stats.rejected_by_reason),
                "dropped": self.stats.dropped,
                "shard_losses": self.stats.shard_losses,
            },
            "scan_kernel": dict(scan_counters),
            "shards": per_shard,
            "aggregate": aggregate,
        }
        if self._tenancy is not None:
            snapshot["tenancy"] = self._tenancy.snapshot()
        return snapshot

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def _offer(
        self, job: Job, rerouted_from: Optional[int] = None
    ) -> tuple[Optional[Shard], list[RejectionReason]]:
        """Offer a job to the live shards in router order.

        Returns the admitting shard (after tracing ROUTED) or ``None``
        with the rejection reasons collected along the way.
        """
        reasons: list[RejectionReason] = []
        for shard in self.router.order(job, self.live_shards()):
            decision = shard.broker.submit(job)
            if decision.admitted:
                fields: dict[str, object] = {
                    "shard": shard.shard_id,
                    "policy": self.router.name,
                }
                if rerouted_from is not None:
                    fields["rerouted_from"] = rerouted_from
                self.events.emit(EventType.ROUTED, job_id=job.job_id, **fields)
                return shard, reasons
            assert decision.reason is not None
            reasons.append(decision.reason)
            if decision.reason is RejectionReason.DUPLICATE_ID:
                # The id is already owned by that shard; trying further
                # shards would fork the job.
                break
        return None, reasons

    _COALLOC_REASONS = frozenset(
        {RejectionReason.TOO_FEW_NODES, RejectionReason.BUDGET_INFEASIBLE}
    )

    def _try_coallocate(self, job: Job) -> Optional[CoAllocation]:
        """One cross-shard attempt; traces COALLOCATED on success."""
        if self._coalloc is None:
            return None
        entry = self._coalloc.try_place(job, self._live_pools(), self._now)
        if entry is None:
            return None
        window_legs = list(entry.legs.values())
        self.events.emit(
            EventType.COALLOCATED,
            job_id=job.job_id,
            shards=entry.shard_ids,
            node_seconds=entry.committed_node_seconds,
            window_start=window_legs[0].start,
            completes_at=entry.completes_at,
        )
        self.stats.coallocated += 1
        return entry

    def submit(self, job: Job) -> FederationDecision:
        """Route one job: shards in policy order, then the co-allocator.

        The federation runs its own duplicate check across every shard
        and the co-allocation ledger *before* offering the job anywhere,
        so an id in flight on shard A is rejected instead of forked onto
        shard B.
        """
        self.stats.submitted += 1
        self.events.emit(EventType.SUBMITTED, job_id=job.job_id)
        if self.locate(job.job_id) is not None:
            reason = RejectionReason.DUPLICATE_ID.value
            self.events.emit(
                EventType.REJECTED, job_id=job.job_id, reason=reason
            )
            self.stats.record_rejection(reason)
            return FederationDecision(admitted=False, reason=reason)
        if not self.live_shards():
            self.events.emit(
                EventType.REJECTED, job_id=job.job_id, reason="no_live_shards"
            )
            self.stats.record_rejection("no_live_shards")
            return FederationDecision(admitted=False, reason="no_live_shards")
        shard, reasons = self._offer(job)
        if shard is not None:
            self.stats.routed += 1
            return FederationDecision(admitted=True, shard_id=shard.shard_id)
        if self._COALLOC_REASONS.intersection(reasons):
            entry = self._try_coallocate(job)
            if entry is not None:
                return FederationDecision(
                    admitted=True,
                    shard_ids=tuple(entry.shard_ids),
                    coallocated=True,
                )
        reason = reasons[0].value if reasons else "no_live_shards"
        self.events.emit(EventType.REJECTED, job_id=job.job_id, reason=reason)
        self.stats.record_rejection(reason)
        return FederationDecision(admitted=False, reason=reason)

    def cancel(self, job_id: str) -> bool:
        """Withdraw a queued job from whichever shard holds it.

        Scheduled and co-allocated jobs are past cancellation — their
        windows are committed — matching the single broker's contract.
        """
        for shard in self.live_shards():
            if shard.broker.cancel(job_id):
                return True
        return False

    # ------------------------------------------------------------------
    # Shared clock
    # ------------------------------------------------------------------
    def _next_event_time(self, horizon: float) -> Optional[float]:
        """Earliest pending event across shards and co-allocations."""
        candidates: list[float] = []
        for shard in self.live_shards():
            due = shard.broker.next_event_time()
            if due is not None and due <= horizon + TIME_EPSILON:
                candidates.append(due)
        if self._coalloc is not None:
            completion = self._coalloc.next_completion()
            if completion is not None and completion <= horizon + TIME_EPSILON:
                candidates.append(completion)
        if not candidates:
            return None
        return min(candidates)

    def _retire_coallocations(self) -> None:
        """Release completed cross-shard windows back to their shards."""
        if self._coalloc is None:
            return
        for entry in self._coalloc.release_due(self._live_pools(), self._now):
            self.events.emit(
                EventType.RETIRED,
                job_id=entry.job.job_id,
                completed_at=entry.completes_at,
                released_node_seconds=entry.committed_node_seconds,
                shards=entry.shard_ids,
            )
            self.stats.coalloc_retired += 1

    def _step_to(self, target: float) -> int:
        """Move every live shard (and the co-alloc ledger) to ``target``."""
        self._now = max(self._now, target)
        ran = 0
        for shard in self.live_shards():
            ran += shard.broker.advance_to(self._now)
        self._retire_coallocations()
        return ran

    def advance_to(self, now: float) -> int:
        """Advance the shared clock, stepping shards in lockstep.

        Between the current time and ``now`` the clock stops at every
        shard's next due cycle / completion / retry wake-up and at every
        co-allocation completion, so cross-shard event order is the
        global virtual-time order regardless of how coarsely the caller
        steps.  Returns the number of shard cycles run.
        """
        if now < self._now - TIME_EPSILON:
            raise SchedulingError(
                f"virtual clock must be monotone: at {self._now}, got {now}"
            )
        ran = 0
        for _ in range(1_000_000):
            due = self._next_event_time(now)
            if due is None:
                break
            ran += self._step_to(due)
        else:  # pragma: no cover - defensive
            raise SchedulingError("advance_to did not converge")
        ran += self._step_to(now)
        return ran

    def pump(self) -> int:
        """Run every shard cycle due at the current time."""
        ran = 0
        for shard in self.live_shards():
            ran += shard.broker.pump()
        return ran

    def is_idle(self) -> bool:
        """Whether no shard owns work and no co-allocation is active."""
        if self._coalloc is not None and self._coalloc.active_count > 0:
            return False
        return all(shard.broker.is_idle for shard in self.live_shards())

    def drain(self, max_steps: int = 100_000) -> float:
        """Run until every live shard is idle; returns the final time."""
        for _ in range(max_steps):
            if self.is_idle():
                return self._now
            due = self._next_event_time(float("inf"))
            if due is None:  # pragma: no cover - defensive
                raise SchedulingError(
                    "federation is not idle but no shard has a pending event"
                )
            self._step_to(due)
        raise SchedulingError(f"drain() did not converge within {max_steps} steps")

    def process(self, arrivals: Iterable[tuple[float, Job]]) -> FederationStats:
        """Feed a timed arrival stream through the federation and drain."""
        for arrival_time, job in arrivals:
            self.advance_to(arrival_time)
            self.submit(job)
            self.pump()
        self.drain()
        return self.stats

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _resettle(self, job: Job, lost_shard: int) -> bool:
        """Re-route one evacuated job; DROPPED (traced) when impossible."""
        if self.live_shards():
            shard, reasons = self._offer(job, rerouted_from=lost_shard)
            if shard is not None:
                self.stats.rerouted += 1
                return True
            if self._COALLOC_REASONS.intersection(reasons):
                entry = self._try_coallocate(job)
                if entry is not None:
                    self.stats.rerouted += 1
                    return True
        self.events.emit(
            EventType.DROPPED,
            job_id=job.job_id,
            cause="shard_lost",
            shard=lost_shard,
        )
        self.stats.dropped += 1
        return False

    def kill_shard(self, shard_id: int) -> list[Job]:
        """Take one shard down, evacuating and re-routing its jobs.

        The dead broker's queue, retry buffer and active windows are
        evacuated (traced shard-side as DROPPED / REVOKED+ABANDONED);
        co-allocations with a leg on the shard are torn down, surviving
        legs released to their live shards.  Every displaced job is then
        re-offered to the surviving shards — or DROPPED at the
        federation level with cause ``shard_lost`` — so no admitted job
        silently disappears.  Returns the evacuated jobs.
        """
        if not 0 <= shard_id < len(self.shards):
            raise ConfigurationError(f"no shard {shard_id}")
        shard = self.shards[shard_id]
        if not shard.alive:
            raise SchedulingError(f"shard {shard_id} is already dead")
        shard.alive = False
        self.stats.shard_losses += 1
        evacuated = shard.broker.evacuate(cause="shard_lost")
        self.events.emit(
            EventType.SHARD_LOST,
            shard=shard_id,
            evacuated=len(evacuated),
            nodes=list(shard.node_ids),
        )
        displaced = list(evacuated)
        if self._coalloc is not None:
            for entry, released, forfeited in self._coalloc.fail_shard(
                shard_id, self._live_pools()
            ):
                self.events.emit(
                    EventType.REVOKED,
                    job_id=entry.job.job_id,
                    cause="shard_lost",
                    shard=shard_id,
                    node_seconds=forfeited,
                    released_node_seconds=released,
                )
                displaced.append(entry.job)
        for job in displaced:
            self._resettle(job, shard_id)
        return evacuated
