"""Asyncio client for the federation frame protocol.

One client = one connection = one outstanding request at a time (the
protocol has no correlation ids; responses arrive in request order, and
a strictly alternating client needs none).  Benchmarks open several
clients for concurrency instead of multiplexing one.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from repro.federation.protocol import ProtocolError, read_frame, write_frame
from repro.io import job_to_dict
from repro.model.job import Job


class FederationClientError(Exception):
    """The server answered ``ok: false`` or the connection broke."""


class FederationClient:
    """Typed request helpers over one framed connection."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 0
    ) -> "FederationClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "FederationClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Raw request/response
    # ------------------------------------------------------------------
    async def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send one frame and await its response frame."""
        await write_frame(self._writer, message)
        try:
            response = await read_frame(self._reader)
        except ProtocolError as error:
            raise FederationClientError(str(error)) from error
        if response is None:
            raise FederationClientError(
                "connection closed before a response arrived"
            )
        return response

    async def _checked(self, message: dict[str, Any]) -> dict[str, Any]:
        response = await self.request(message)
        if not response.get("ok"):
            raise FederationClientError(
                response.get("error", "request failed")
            )
        return response

    # ------------------------------------------------------------------
    # Typed operations
    # ------------------------------------------------------------------
    async def ping(self) -> float:
        """Liveness probe; returns the federation's virtual clock."""
        return float((await self._checked({"op": "ping"}))["now"])

    async def submit(
        self,
        job: Job,
        at: Optional[float] = None,
        tenant_id: Optional[str] = None,
    ) -> dict[str, Any]:
        """Offer a job, optionally advancing the clock to its arrival.

        ``tenant_id`` rebinds the job to that billing identity before it
        enters the federation (requires tenancy on the server to have
        any effect beyond relabelling the owner).
        """
        message: dict[str, Any] = {"op": "submit", "job": job_to_dict(job)}
        if at is not None:
            message["at"] = at
        if tenant_id is not None:
            message["tenant_id"] = tenant_id
        return await self._checked(message)

    async def status(self, job_id: str) -> dict[str, Any]:
        return await self._checked({"op": "status", "job_id": job_id})

    async def cancel(self, job_id: str) -> bool:
        response = await self._checked({"op": "cancel", "job_id": job_id})
        return bool(response["cancelled"])

    async def stats(self) -> dict[str, Any]:
        return (await self._checked({"op": "stats"}))["stats"]

    async def advance(self, to: float) -> float:
        response = await self._checked({"op": "advance", "to": to})
        return float(response["now"])

    async def drain(self) -> float:
        return float((await self._checked({"op": "drain"}))["now"])

    async def kill_shard(self, shard: int) -> list[str]:
        response = await self._checked({"op": "kill-shard", "shard": shard})
        return list(response["evacuated"])

    async def credits(self) -> dict[str, Any]:
        """The shared tenancy snapshot (ledger totals + pricing state)."""
        return (await self._checked({"op": "credits"}))["credits"]

    async def tenants(self) -> list[dict[str, Any]]:
        """Per-tenant balance, weight and DRF dominant share."""
        return list((await self._checked({"op": "tenants"}))["tenants"])

    async def shutdown(self) -> None:
        await self._checked({"op": "shutdown"})
