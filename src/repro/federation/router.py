"""Placement policies: which shard should try a job first.

The router does not decide *whether* a job runs — every shard's own
admission control still has the last word — it decides the *order* in
which shards are offered the job.  Three policies:

* ``hash`` — deterministic spread by job id (CRC-32, not the builtin
  ``hash``, which is salted per process and would destroy replayability);
* ``least-loaded`` — live backlog (queue depth + active windows), the
  classic join-the-shortest-queue heuristic;
* ``criterion`` — a cheapest-fit / earliest-fit *estimate* per shard
  under the service's optimisation criterion, the mediator-style routing
  of Oliveira & Barbosa: shards whose estimate says the job cannot fit
  at all are still offered last rather than skipped, because estimates
  are bounds, not verdicts.

Every policy returns a total order over the live shards so the intake
tier can fall through to the next shard on rejection, and ties break on
shard id — orderings must be deterministic for trace replay.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.criteria import Criterion
from repro.model.errors import ConfigurationError
from repro.model.job import Job, ResourceRequest
from repro.model.slot import TIME_EPSILON
from repro.model.slotpool import SlotPool
from repro.service.admission import cheapest_feasible_cost

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.federation.sharding import Shard


def stable_hash(job_id: str) -> int:
    """A process-stable non-negative hash of a job id.

    CRC-32 rather than ``hash()``: Python salts string hashing per
    process, which would make shard placement — and therefore every
    downstream trace — unreproducible across runs.
    """
    return zlib.crc32(job_id.encode("utf-8"))


def earliest_fit_estimate(
    request: ResourceRequest, pool: SlotPool
) -> Optional[float]:
    """Lower bound on the start time of any window for ``request``.

    Per matching node with at least one slot long enough for the task,
    take the earliest such slot's start; the ``n``-th smallest of those
    is the earliest instant ``n`` distinct nodes *could* all be free.
    ``None`` when fewer than ``n`` usable nodes exist.  Mirrors
    :func:`~repro.service.admission.cheapest_feasible_cost`, which is
    the analogous bound on the cost axis.
    """
    earliest_by_node: dict[int, float] = {}
    for slot in pool:
        node = slot.node
        if not request.node_matches(node):
            continue
        if slot.length < request.task_runtime_on(node) - TIME_EPSILON:
            continue
        known = earliest_by_node.get(node.node_id)
        if known is None or slot.start < known:
            earliest_by_node[node.node_id] = slot.start
    if len(earliest_by_node) < request.node_count:
        return None
    return sorted(earliest_by_node.values())[request.node_count - 1]


class PlacementPolicy:
    """Interface: order the live shards for one job, best first."""

    name: str = "abstract"

    def order(self, job: Job, shards: Sequence["Shard"]) -> list["Shard"]:
        raise NotImplementedError  # pragma: no cover - interface


class HashPolicy(PlacementPolicy):
    """Deterministic id-based placement with rotation fallback.

    The primary shard is ``crc32(job_id) mod n`` over the live shards;
    on rejection the next shards are tried in rotation, so the fallback
    order is as deterministic as the primary choice.
    """

    name = "hash"

    def order(self, job: Job, shards: Sequence["Shard"]) -> list["Shard"]:
        if not shards:
            return []
        primary = stable_hash(job.job_id) % len(shards)
        return [shards[(primary + step) % len(shards)] for step in range(len(shards))]


class LeastLoadedPolicy(PlacementPolicy):
    """Join the shortest backlog (queued + active), shard id tie-break."""

    name = "least-loaded"

    def order(self, job: Job, shards: Sequence["Shard"]) -> list["Shard"]:
        return sorted(
            shards,
            key=lambda shard: (
                shard.broker.queue_depth + shard.broker.active_count,
                shard.shard_id,
            ),
        )


class CriterionAwarePolicy(PlacementPolicy):
    """Route by a per-shard fit estimate under the VO criterion.

    Cost-like criteria rank shards by the cheapest-window lower bound;
    time-like criteria by the earliest-fit bound.  Shards where the
    estimate finds no fit at all come last (still tried — the bound can
    be stale by one cycle), ordered by shard id.
    """

    name = "criterion"

    _COST_LIKE = frozenset(
        {Criterion.COST, Criterion.PROCESSOR_TIME, Criterion.ENERGY}
    )

    def __init__(self, criterion: Criterion):
        self.criterion = criterion

    def _estimate(self, job: Job, pool: SlotPool) -> Optional[float]:
        if self.criterion in self._COST_LIKE:
            return cheapest_feasible_cost(job.request, pool)
        return earliest_fit_estimate(job.request, pool)

    def order(self, job: Job, shards: Sequence["Shard"]) -> list["Shard"]:
        scored: list[tuple[float, int, "Shard"]] = []
        hopeless: list["Shard"] = []
        for shard in shards:
            estimate = self._estimate(job, shard.broker.pool)
            if estimate is None:
                hopeless.append(shard)
            else:
                scored.append((estimate, shard.shard_id, shard))
        scored.sort(key=lambda item: (item[0], item[1]))
        hopeless.sort(key=lambda shard: shard.shard_id)
        return [shard for _, _, shard in scored] + hopeless


def make_policy(name: str, criterion: Criterion) -> PlacementPolicy:
    """Instantiate a policy by its configuration name."""
    if name == "hash":
        return HashPolicy()
    if name == "least-loaded":
        return LeastLoadedPolicy()
    if name == "criterion":
        return CriterionAwarePolicy(criterion)
    raise ConfigurationError(f"unknown placement policy {name!r}")
