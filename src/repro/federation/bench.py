"""Federation benchmark: real sockets, honest clocks, checked invariants.

The benchmark drives a live :class:`~repro.federation.server.FederationServer`
over loopback TCP — actual asyncio streams, framing, and backpressure,
not an in-process shortcut — at several shard counts and reports

* submit-to-schedule latency (p50/p99 wall seconds, measured server-side
  from the intake ``SUBMITTED`` event to the owning shard's ``SCHEDULED``
  or the federation's ``COALLOCATED`` event), and
* end-to-end submission throughput (jobs per wall second over the full
  submit-and-drain run).

Two refuse-to-record guards keep the numbers honest, in the spirit of
the simulation bench's invariance check:

* every run's merged trace must pass
  :class:`~repro.federation.tracing.FederationTraceValidator` with the
  drained laws — a bench that leaks node-seconds records nothing;
* the 1-shard hash-policy run must produce exactly the same scheduled /
  dropped / rejected counts as a plain single-broker run over the same
  pool and arrival stream — federating must change *where* decisions
  happen, never *which* decisions happen.
"""

from __future__ import annotations

import asyncio
import json
import platform
import sys
from time import perf_counter
from typing import Any, Optional, Sequence

from repro.core.vectorized import scan_counters
from repro.environment.generator import EnvironmentConfig, EnvironmentGenerator
from repro.federation.client import FederationClient
from repro.federation.config import FederationConfig
from repro.federation.server import FederationServer
from repro.federation.sharding import ShardManager
from repro.federation.tracing import FederationTraceValidator
from repro.service.broker import BrokerService
from repro.service.config import ServiceConfig
from repro.service.events import Event, EventSink, EventType
from repro.service.stats import ReservoirSampler
from repro.hostinfo import usable_cpu_count
from repro.simulation.bench import InvarianceError
from repro.simulation.jobgen import JobGenerator


class SubmitLatencyRecorder(EventSink):
    """Server-side wall-clock stopwatch per job.

    Stamps the intake ``SUBMITTED`` event and resolves at the first
    placement proof: the owning shard's ``SCHEDULED`` or the intake
    tier's ``COALLOCATED``.  Jobs that are rejected or dropped simply
    never resolve — latency is a property of placed work.

    Resolved latencies land in a seeded :class:`ReservoirSampler`
    rather than an unbounded list (an earlier revision grew one float
    per placed job, a leak over soak-length runs); ``count`` and
    ``peak`` stay exact while quantiles are estimated over the
    fixed-capacity uniform sample.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self._pending: dict[str, float] = {}
        self._reservoir = ReservoirSampler(capacity=capacity)
        self.peak = 0.0

    @property
    def samples(self) -> list[float]:
        """The retained latency samples (at most ``capacity`` of them)."""
        return list(self._reservoir._samples)

    @property
    def count(self) -> int:
        """Exact number of resolved (placed) jobs."""
        return self._reservoir.count

    def quantiles(self, *qs: float) -> tuple[float, ...]:
        """Estimated stream quantiles from the reservoir."""
        return self._reservoir.quantiles(*qs)

    def emit(self, event: Event) -> None:
        if event.job_id is None:
            return
        shard_tagged = "shard_id" in event.fields
        if event.type is EventType.SUBMITTED and not shard_tagged:
            self._pending[event.job_id] = perf_counter()
        elif (event.type is EventType.SCHEDULED and shard_tagged) or (
            event.type is EventType.COALLOCATED and not shard_tagged
        ):
            started = self._pending.pop(event.job_id, None)
            if started is not None:
                sample = perf_counter() - started
                self._reservoir.add(sample)
                if sample > self.peak:
                    self.peak = sample


def _make_pool(node_count: int, seed: int):
    config = EnvironmentConfig(node_count=node_count, seed=seed)
    return EnvironmentGenerator(config).generate().slot_pool()


def _make_arrivals(jobs: int, rate: float, seed: int):
    return list(JobGenerator(seed=seed).iter_arrivals(jobs, rate=rate))


def _single_broker_counts(
    node_count: int,
    arrivals: Sequence[tuple[float, Any]],
    service: ServiceConfig,
    seed: int,
) -> dict[str, int]:
    """Reference counts from an unfederated broker on the same stream."""
    with BrokerService(_make_pool(node_count, seed), config=service) as broker:
        stats = broker.process(iter(arrivals))
    return {
        "scheduled": stats.scheduled,
        "dropped": stats.dropped,
        "rejected": stats.rejected,
        "retired": stats.retired,
    }


async def _run_one(
    shards: int,
    node_count: int,
    arrivals: Sequence[tuple[float, Any]],
    policy: str,
    service: ServiceConfig,
    seed: int,
) -> dict[str, Any]:
    """One shard count: serve over loopback, submit, drain, validate."""
    recorder = SubmitLatencyRecorder()
    validator = FederationTraceValidator()
    manager = ShardManager(
        _make_pool(node_count, seed),
        config=FederationConfig(shards=shards, policy=policy, service=service),
        sinks=[recorder, validator],
    )
    server = FederationServer(manager)
    await server.start()
    try:
        client = await FederationClient.connect(port=server.port)
        async with client:
            await client.ping()
            started = perf_counter()
            for arrival_time, job in arrivals:
                await client.submit(job, at=arrival_time)
            await client.drain()
            elapsed = perf_counter() - started
            stats = await client.stats()
            await client.shutdown()
    finally:
        await server.stop()
    # Refuse to record timings for a run whose trace breaks the laws.
    validator.check(expect_drained=True)
    latency_p50, latency_p99 = recorder.quantiles(0.50, 0.99)
    return {
        "shards": shards,
        "policy": policy,
        "jobs": len(arrivals),
        "elapsed_s": round(elapsed, 6),
        "jobs_per_s": round(len(arrivals) / elapsed, 3) if elapsed else None,
        "submit_to_schedule_s": {
            "samples": recorder.count,
            "p50": round(latency_p50, 6),
            "p99": round(latency_p99, 6),
            "max": round(recorder.peak, 6),
        },
        "frames": server.frames_served,
        "counts": {
            "federation": stats["federation"],
            "aggregate": stats["aggregate"],
        },
    }


def bench_federation(
    shard_counts: Sequence[int] = (1, 4, 16),
    jobs: int = 200,
    rate: float = 2.0,
    node_count: int = 64,
    seed: int = 2013,
    policy: str = "hash",
) -> dict[str, Any]:
    """Benchmark the federation front door across shard counts.

    Returns a JSON-ready payload.  Raises
    :class:`~repro.simulation.bench.InvarianceError` when the 1-shard
    federation diverges from the single-broker reference, and the trace
    validator raises when any run's merged trace breaks a conservation
    law — either way, no timings are reported.
    """
    service = ServiceConfig(workers=1, check_invariants=False)
    arrivals = _make_arrivals(jobs, rate, seed)
    rows = []
    equivalence: Optional[dict[str, Any]] = None
    for shards in shard_counts:
        row = asyncio.run(
            _run_one(shards, node_count, arrivals, policy, service, seed)
        )
        if shards == 1 and policy == "hash":
            reference = _single_broker_counts(
                node_count, arrivals, service, seed
            )
            aggregate = row["counts"]["aggregate"]
            observed = {key: aggregate[key] for key in reference}
            if observed != reference:
                raise InvarianceError(
                    "1-shard federation diverged from the single broker: "
                    f"federation={observed} reference={reference}"
                )
            equivalence = {
                "checked": True,
                "reference": reference,
                "federation": observed,
            }
        rows.append(row)
    cpus = usable_cpu_count()
    return {
        "bench": "federation",
        "config": {
            "shard_counts": list(shard_counts),
            "jobs": jobs,
            "rate": rate,
            "node_count": node_count,
            "seed": seed,
            "policy": policy,
            "workers_per_shard": service.workers,
        },
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "cpus": cpus,
            # Server, client and every shard broker share one process;
            # on a single-CPU host the throughput column measures the
            # host, not the protocol.
            "cpu_limited": cpus < 2,
        },
        "single_shard_equivalence": equivalence,
        "scan_kernel": dict(scan_counters),
        "results": rows,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.federation.bench`` entry point."""
    payload = bench_federation()
    json.dump(payload, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
