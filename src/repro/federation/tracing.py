"""Conservation laws for merged federation traces.

A federation trace interleaves two tiers: shard-broker events (tagged
with a ``shard_id`` payload field by
:class:`~repro.federation.sharding.ShardTagSink`) and the intake tier's
own events (SUBMITTED/ROUTED/COALLOCATED/REJECTED/DROPPED/RETIRED/
REVOKED/SHARD_LOST, no ``shard_id``).  Feeding that merged stream to a
plain :class:`~repro.service.tracing.TraceValidator` would trip every
single-broker invariant — interleaved cycles, per-shard sequence
restarts, federation-only event types — so this validator *demultiplexes*
first: each shard's sub-stream replays through its own single-broker
validator (every per-shard law still holds shard-locally), while the
federation events drive an intake-level state machine and ledger.

Federation-level laws (:meth:`FederationTraceValidator.check`):

* every per-shard sub-trace passes the single-broker validator (dead
  shards are exempt from the drained checks);
* ``ROUTED`` events == the sum of shard-level admissions — the
  "admitted = sum of shard outcomes" law: every routing landed exactly
  one shard admission and vice versa;
* every submission reached a verdict (no job stuck in ``submitted``)
  and every shard-loss displacement resolved (none stuck ``displaced``);
* co-allocation ledger: released + forfeited node-seconds never exceed
  committed, and with ``expect_drained`` they balance exactly — the
  "rollback forfeits zero committed node-seconds" acceptance criterion.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional

from repro.model.slot import TIME_EPSILON
from repro.service.events import Event, EventSink, EventType, load_trace
from repro.service.tracing import (
    CREDIT_EVENT_TYPES,
    CreditReplay,
    TraceInvariantError,
    TraceValidator,
)


class FedJobState(enum.Enum):
    """Intake-tier view of a job's placement."""

    SUBMITTED = "submitted"  #: offered to the federation, verdict pending
    ROUTED = "routed"  #: owned by one shard broker (its machine takes over)
    COALLOCATED = "coallocated"  #: holds a committed cross-shard window
    DISPLACED = "displaced"  #: lost its co-allocation to a shard death
    REJECTED = "rejected"  #: turned away at the federation door
    DROPPED = "dropped"  #: displaced and not re-routable
    RETIRED = "retired"  #: cross-shard window completed

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL


_TERMINAL = frozenset(
    {FedJobState.REJECTED, FedJobState.DROPPED, FedJobState.RETIRED}
)

#: Intake-tier transitions.  ROUTED -> ROUTED is a shard-loss re-route;
#: ROUTED/DISPLACED -> COALLOCATED is the re-route falling back to the
#: cross-shard path; COALLOCATED -> DISPLACED (via REVOKED) is a shard
#: death tearing the window down.
_FED_TRANSITIONS: dict[
    EventType, tuple[tuple[Optional[FedJobState], FedJobState], ...]
] = {
    EventType.ROUTED: (
        (FedJobState.SUBMITTED, FedJobState.ROUTED),
        (FedJobState.ROUTED, FedJobState.ROUTED),
        (FedJobState.DISPLACED, FedJobState.ROUTED),
    ),
    EventType.COALLOCATED: (
        (FedJobState.SUBMITTED, FedJobState.COALLOCATED),
        (FedJobState.ROUTED, FedJobState.COALLOCATED),
        (FedJobState.DISPLACED, FedJobState.COALLOCATED),
    ),
    EventType.REJECTED: ((FedJobState.SUBMITTED, FedJobState.REJECTED),),
    EventType.DROPPED: (
        (FedJobState.ROUTED, FedJobState.DROPPED),
        (FedJobState.DISPLACED, FedJobState.DROPPED),
    ),
    EventType.RETIRED: ((FedJobState.COALLOCATED, FedJobState.RETIRED),),
    EventType.REVOKED: ((FedJobState.COALLOCATED, FedJobState.DISPLACED),),
}


class FederationTraceValidator(EventSink):
    """Demultiplexes a merged trace and checks both tiers' laws."""

    def __init__(self) -> None:
        self.violations: list[str] = []
        self.shard_validators: dict[int, TraceValidator] = {}
        self.dead_shards: set[int] = set()
        self.counts: dict[EventType, int] = {t: 0 for t in EventType}
        self._states: dict[str, FedJobState] = {}
        #: Prior state stashed when an in-flight id is resubmitted; the
        #: only legal follow-up is an immediate duplicate REJECTED, which
        #: restores it.
        self._dup_pending: dict[str, FedJobState] = {}
        self._coalloc_committed = 0.0
        self._coalloc_released = 0.0
        self._coalloc_forfeited = 0.0
        #: One credit replay for the whole federation: shard brokers and
        #: the co-allocator debit a single shared ledger, so per-shard
        #: replays would see balance gaps wherever a tenant's spending
        #: interleaves across shards.
        self._credit = CreditReplay()
        self.events_seen = 0

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def emit(self, event: Event) -> None:
        """EventSink interface: validate as the federation runs."""
        self.observe(event)

    def observe(self, event: Event) -> None:
        """Demultiplex one event to its shard machine or the fed machine."""
        self.events_seen += 1
        if event.type in CREDIT_EVENT_TYPES:
            # Credit events replay against the federation's one shared
            # ledger regardless of emitting tier (shard-tagged commits
            # and intake-tier co-allocation debits hit the same
            # accounts), so they are checked here, not per shard.
            self.counts[event.type] = self.counts.get(event.type, 0) + 1
            for message in self._credit.observe(event):
                self._violate(event, message)
            return
        shard_id = event.fields.get("shard_id")
        if shard_id is not None:
            validator = self.shard_validators.get(shard_id)
            if validator is None:
                validator = self.shard_validators[shard_id] = TraceValidator()
            validator.observe(event)
            return
        self.counts[event.type] = self.counts.get(event.type, 0) + 1
        self._observe_federation(event)

    def observe_all(self, events: Iterable[Event]) -> "FederationTraceValidator":
        """Feed a whole event sequence; returns ``self`` for chaining."""
        for event in events:
            self.observe(event)
        return self

    # ------------------------------------------------------------------
    # The intake-tier machine
    # ------------------------------------------------------------------
    def _violate(self, event: Optional[Event], message: str) -> None:
        prefix = f"event {event.seq} ({event.type.value}): " if event else ""
        self.violations.append(prefix + message)

    def _observe_federation(self, event: Event) -> None:
        if event.type is EventType.SHARD_LOST:
            shard = event.fields.get("shard")
            if not isinstance(shard, int):
                self._violate(event, "shard_lost carries no integer 'shard'")
            elif shard in self.dead_shards:
                self._violate(event, f"shard {shard} lost twice")
            else:
                self.dead_shards.add(shard)
            return
        job_id = event.job_id
        if job_id is None:
            self._violate(event, "federation event without a job id")
            return
        if event.type is EventType.SUBMITTED:
            self._on_submitted(event, job_id)
            return
        pending = self._dup_pending.pop(job_id, None)
        if pending is not None:
            # A duplicate submission may only be REJECTED; the stashed
            # in-flight state survives the episode untouched.
            if event.type is EventType.REJECTED:
                self._states[job_id] = pending
                return
            self._violate(
                event,
                f"job {job_id!r} resubmitted while in flight was not "
                "immediately rejected",
            )
            self._states[job_id] = pending
        state = self._states.get(job_id)
        allowed = _FED_TRANSITIONS.get(event.type)
        if allowed is None:
            self._violate(
                event,
                f"event type {event.type.value!r} is not part of the "
                "federation intake taxonomy",
            )
            return
        for source, target in allowed:
            if state is source:
                self._states[job_id] = target
                break
        else:
            have = "never seen" if state is None else state.value
            self._violate(
                event,
                f"illegal federation transition for job {job_id!r}: "
                f"{event.type.value} while {have}",
            )
            return
        if event.type is EventType.COALLOCATED:
            self._on_coallocated(event)
        elif event.type is EventType.RETIRED:
            self._add_ledger(event, "released_node_seconds", "released")
        elif event.type is EventType.REVOKED:
            self._add_ledger(event, "node_seconds", "forfeited")
            self._add_ledger(event, "released_node_seconds", "released")

    def _on_submitted(self, event: Event, job_id: str) -> None:
        state = self._states.get(job_id)
        if state is not None and not state.terminal:
            self._dup_pending[job_id] = state
        else:
            # A fresh (or re-) submission starts a new per-job credit
            # episode; an in-flight duplicate does not.
            self._credit.reset_job(job_id)
        self._states[job_id] = FedJobState.SUBMITTED

    def _on_coallocated(self, event: Event) -> None:
        node_seconds = event.fields.get("node_seconds")
        if not isinstance(node_seconds, (int, float)) or node_seconds < 0:
            self._violate(
                event, "coallocated event without valid 'node_seconds'"
            )
            return
        self._coalloc_committed += float(node_seconds)
        shards = event.fields.get("shards")
        if isinstance(shards, (list, tuple)) and self.dead_shards.intersection(
            shards
        ):
            self._violate(
                event,
                f"co-allocation uses dead shard(s) "
                f"{sorted(self.dead_shards.intersection(shards))}",
            )

    def _add_ledger(self, event: Event, field: str, kind: str) -> None:
        value = event.fields.get(field)
        if not isinstance(value, (int, float)) or value < 0:
            self._violate(event, f"{event.type.value} without valid {field!r}")
            return
        if kind == "released":
            self._coalloc_released += float(value)
        else:
            self._coalloc_forfeited += float(value)
        if (
            self._coalloc_released + self._coalloc_forfeited
            > self._coalloc_committed + TIME_EPSILON
        ):
            self._violate(
                event,
                f"co-allocation released ({self._coalloc_released}) + "
                f"forfeited ({self._coalloc_forfeited}) node-seconds exceed "
                f"committed ({self._coalloc_committed})",
            )

    # ------------------------------------------------------------------
    # Terminal accounting
    # ------------------------------------------------------------------
    @property
    def coalloc_committed_node_seconds(self) -> float:
        return self._coalloc_committed

    @property
    def coalloc_released_node_seconds(self) -> float:
        return self._coalloc_released

    @property
    def coalloc_forfeited_node_seconds(self) -> float:
        return self._coalloc_forfeited

    def job_states(self) -> dict[str, FedJobState]:
        """Snapshot of the intake machine (for tests and tooling)."""
        return dict(self._states)

    def _tally(self) -> dict[FedJobState, int]:
        tally = {state: 0 for state in FedJobState}
        for state in self._states.values():
            tally[state] += 1
        return tally

    def check(self, expect_drained: bool = False) -> "FederationTraceValidator":
        """Run both tiers' end-of-trace laws; raises on any failure.

        ``expect_drained`` requires every *live* shard's sub-trace to be
        drained and the co-allocation ledger to balance exactly; dead
        shards are checked without the drained laws (their abandoned
        windows are accounted as forfeits, not leaks).
        """
        failures = list(self.violations)
        failures.extend(self._credit.check())
        shard_admitted = 0
        for shard_id in sorted(self.shard_validators):
            validator = self.shard_validators[shard_id]
            shard_admitted += validator.counts[EventType.ADMITTED]
            try:
                validator.check(
                    expect_drained=expect_drained
                    and shard_id not in self.dead_shards
                )
            except TraceInvariantError as error:
                failures.append(f"shard {shard_id}: {error}")
        routed = self.counts[EventType.ROUTED]
        if routed != shard_admitted:
            failures.append(
                f"routing events ({routed}) != shard admissions "
                f"({shard_admitted}): a routing verdict and its shard "
                "admission came apart"
            )
        tally = self._tally()
        if tally[FedJobState.SUBMITTED]:
            failures.append(
                f"{tally[FedJobState.SUBMITTED]} submission(s) never reached "
                "a routing verdict"
            )
        if tally[FedJobState.DISPLACED]:
            failures.append(
                f"{tally[FedJobState.DISPLACED]} displaced job(s) were "
                "neither re-routed nor dropped"
            )
        if self._dup_pending:
            failures.append(
                f"{len(self._dup_pending)} duplicate submission(s) never "
                "resolved"
            )
        if (
            self._coalloc_released + self._coalloc_forfeited
            > self._coalloc_committed + TIME_EPSILON
        ):
            failures.append(
                f"co-allocation released ({self._coalloc_released}) + "
                f"forfeited ({self._coalloc_forfeited}) node-seconds exceed "
                f"committed ({self._coalloc_committed})"
            )
        if expect_drained:
            if tally[FedJobState.COALLOCATED]:
                failures.append(
                    f"trace claims a drained federation but "
                    f"{tally[FedJobState.COALLOCATED]} co-allocation(s) are "
                    "still active"
                )
            balance = self._coalloc_committed - (
                self._coalloc_released + self._coalloc_forfeited
            )
            if abs(balance) > TIME_EPSILON:
                failures.append(
                    f"drained federation leaks {balance} committed "
                    "co-allocation node-seconds (released + forfeited != "
                    "committed)"
                )
        if failures:
            raise TraceInvariantError(
                "federation trace violates invariants:\n  "
                + "\n  ".join(failures)
            )
        return self

    def summary(self) -> dict[str, object]:
        """Counter view of the replay (CLI output and CI logs)."""
        tally = self._tally()
        return {
            "events": self.events_seen,
            "submitted": self.counts[EventType.SUBMITTED],
            "routed": self.counts[EventType.ROUTED],
            "coallocated": self.counts[EventType.COALLOCATED],
            "rejected": self.counts[EventType.REJECTED],
            "dropped": self.counts[EventType.DROPPED],
            "retired": self.counts[EventType.RETIRED],
            "shard_losses": self.counts[EventType.SHARD_LOST],
            "shards": {
                shard_id: validator.summary()
                for shard_id, validator in sorted(
                    self.shard_validators.items()
                )
            },
            "dead_shards": sorted(self.dead_shards),
            "coalloc_committed_node_seconds": round(
                self._coalloc_committed, 6
            ),
            "coalloc_released_node_seconds": round(self._coalloc_released, 6),
            "coalloc_forfeited_node_seconds": round(
                self._coalloc_forfeited, 6
            ),
            "jobs_routed_live": tally[FedJobState.ROUTED],
            "credits": self._credit.summary(),
            "violations": len(self.violations),
        }


def validate_federation_trace_file(
    path: str, expect_drained: bool = False
) -> FederationTraceValidator:
    """Load a merged JSONL trace and run the full two-tier validation."""
    return (
        FederationTraceValidator()
        .observe_all(load_trace(path))
        .check(expect_drained=expect_drained)
    )
