"""Cross-shard co-allocation: one window composed from several pools.

The fallback path of "Towards General Distributed Resource Selection":
when no single autonomous pool can host a job — too few matching nodes,
or a budget only met by combining the cheap nodes of several pools — a
window is searched over the *union* of the live shard pools and then
committed shard by shard.

The commit is two-phase in the transactional sense: every leg group is
cut from its shard's pool in deterministic shard order, and the first
failure rolls back every already-committed group via
:meth:`~repro.model.SlotPool.release` before reporting the attempt as
failed.  Partial commits therefore never leak node-seconds — the
property the federation trace laws (released + forfeited <= committed)
verify end to end.

The co-allocator keeps its own virtual-clock ledger of active entries:
legs are released back to their shards at the window's completion time,
and a shard death forfeits exactly the dead shard's legs while the
surviving legs flow back to their (still live) pools.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Mapping, Optional

from repro.core.algorithms.csa import CSA
from repro.model.errors import AllocationError
from repro.model.job import Job, JobBatch
from repro.model.slot import TIME_EPSILON
from repro.model.slotpool import SlotPool
from repro.model.window import Window, WindowSlot
from repro.scheduling.metascheduler import BatchScheduler
from repro.service.config import ServiceConfig


@dataclass(frozen=True)
class CoAllocation:
    """One committed cross-shard window.

    ``legs`` maps each participating shard id to the sub-window (same
    start, that shard's legs only) cut from its pool; releasing every
    sub-window restores exactly what the commit took.
    """

    job: Job
    legs: dict[int, Window]
    committed_node_seconds: float
    scheduled_at: float
    completes_at: float

    @property
    def shard_ids(self) -> list[int]:
        """Participating shards, ascending."""
        return sorted(self.legs)


class CoAllocator:
    """Searches, commits and retires cross-shard windows."""

    def __init__(
        self,
        service: ServiceConfig,
        alternatives: int = 10,
        *,
        tenancy=None,
        emitter=None,
    ):
        # Union-pool planning goes through BatchScheduler.find_alternatives,
        # i.e. the class-grouped phase-1 entry point: repeated placements
        # of equal requests reuse the union snapshot's cached scan plans,
        # and multi-job batches (future work) collapse to one search per
        # request class.
        self._scheduler = BatchScheduler(
            search=CSA(max_alternatives=alternatives),
            criterion=service.criterion,
            alternatives_per_job=alternatives,
        )
        self._cut_mode = service.cut_mode
        self._completion_factor = service.completion_factor
        #: Shared tenancy manager (the federation's, so shard brokers and
        #: cross-shard windows debit one ledger) and the federation
        #: emitter the credit events go to.  ``None`` keeps the
        #: co-allocator credit-free and byte-identical.
        self._tenancy = tenancy
        self._emitter = emitter
        self._active: dict[str, CoAllocation] = {}

    # ------------------------------------------------------------------
    # Ledger introspection
    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        """Committed cross-shard windows not yet completed."""
        return len(self._active)

    def active_ids(self) -> set[str]:
        """Job ids currently holding a cross-shard window."""
        return set(self._active)

    def get(self, job_id: str) -> Optional[CoAllocation]:
        """The active entry for ``job_id``, or ``None``."""
        return self._active.get(job_id)

    def next_completion(self) -> Optional[float]:
        """Earliest completion among active entries, ``None`` when idle."""
        if not self._active:
            return None
        return min(entry.completes_at for entry in self._active.values())

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def try_place(
        self, job: Job, pools: Mapping[int, SlotPool], now: float
    ) -> Optional[CoAllocation]:
        """Search the union of ``pools`` and two-phase-commit the window.

        Returns the committed entry, or ``None`` when no feasible window
        exists — or when a commit leg fails, in which case every leg
        already cut has been released again (zero leaked node-seconds).
        """
        if not pools:
            return None
        union = SlotPool(
            min_usable_length=max(
                pool.min_usable_length for pool in pools.values()
            )
        )
        node_shard: dict[int, int] = {}
        for shard_id in sorted(pools):
            for slot in pools[shard_id]:
                union.add(slot, coalesce=False)
                node_shard[slot.node.node_id] = shard_id
        plan_job = job
        multiplier = 1.0
        if self._tenancy is not None:
            multiplier = self._tenancy.price_multiplier
            if multiplier != 1.0:
                # Same uniform-scaling trick as the broker cycle: live
                # window cost m*C fits budget b iff static cost C fits
                # b/m, so the union search sees live prices by scaling
                # the budget and price cap instead of the slots.
                request = plan_job.request
                budget = request.effective_budget
                cap = request.max_price_per_unit
                plan_job = replace(
                    plan_job,
                    request=replace(
                        request,
                        budget=(
                            None if not math.isfinite(budget)
                            else budget / multiplier
                        ),
                        max_price_per_unit=(
                            None if cap is None else cap / multiplier
                        ),
                    ),
                )
        batch = JobBatch()
        batch.add(plan_job)
        report = self._scheduler.plan(batch, union)
        window = report.scheduled.get(job.job_id)
        if window is None:
            return None

        by_shard: dict[int, list[WindowSlot]] = {}
        for ws in window.slots:
            by_shard.setdefault(node_shard[ws.slot.node.node_id], []).append(ws)
        committed: list[tuple[SlotPool, Window]] = []
        legs: dict[int, Window] = {}
        try:
            for shard_id in sorted(by_shard):
                sub = Window(start=window.start, slots=tuple(by_shard[shard_id]))
                pools[shard_id].commit_window(sub, mode=self._cut_mode)
                committed.append((pools[shard_id], sub))
                legs[shard_id] = sub
        except AllocationError:
            # Roll back in reverse: everything cut so far goes straight
            # back, so a half-committed window never holds capacity.
            for pool, sub in reversed(committed):
                pool.release(sub)
            return None
        if self._tenancy is not None and not self._tenancy.charge_commit(
            job, window, self._emitter, multiplier=multiplier
        ):
            # The tenant cannot pay for the cross-shard window: the
            # two-phase commit rolls back exactly like a failed leg, so
            # an unfunded attempt never holds capacity either.
            for pool, sub in reversed(committed):
                pool.release(sub)
            return None
        entry = CoAllocation(
            job=job,
            legs=legs,
            committed_node_seconds=window.processor_time,
            scheduled_at=now,
            completes_at=window.start + window.runtime * self._completion_factor,
        )
        self._active[job.job_id] = entry
        return entry

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def release_due(
        self, pools: Mapping[int, SlotPool], now: float
    ) -> list[CoAllocation]:
        """Retire every entry complete by ``now``, releasing all legs.

        Deterministic order (completion time, then job id), like the
        broker lifecycle's retire sweep.  Returns the retired entries.
        """
        due = [
            entry
            for entry in self._active.values()
            if entry.completes_at <= now + TIME_EPSILON
        ]
        due.sort(key=lambda entry: (entry.completes_at, entry.job.job_id))
        for entry in due:
            for shard_id in sorted(entry.legs):
                pools[shard_id].release(entry.legs[shard_id])
            del self._active[entry.job.job_id]
            if self._tenancy is not None:
                # Clean completion settles the escrow into revenue.
                self._tenancy.on_retired(entry.job.job_id)
        return due

    def fail_shard(
        self, shard_id: int, live_pools: Mapping[int, SlotPool]
    ) -> list[tuple[CoAllocation, float, float]]:
        """Tear down every entry with a leg on a dead shard.

        Surviving legs are released into their live shards' pools; the
        dead shard's legs are forfeited (the pool underneath is gone).
        Returns ``(entry, released, forfeited)`` node-second triples in
        job-id order for the caller to trace.
        """
        victims = sorted(
            (
                entry
                for entry in self._active.values()
                if shard_id in entry.legs
            ),
            key=lambda entry: entry.job.job_id,
        )
        results: list[tuple[CoAllocation, float, float]] = []
        for entry in victims:
            released = 0.0
            forfeited = 0.0
            forfeited_cost = 0.0
            for leg_shard in sorted(entry.legs):
                sub = entry.legs[leg_shard]
                if leg_shard != shard_id and leg_shard in live_pools:
                    live_pools[leg_shard].release(sub)
                    released += sub.processor_time
                else:
                    forfeited += sub.processor_time
                    forfeited_cost += sub.total_cost
            del self._active[entry.job.job_id]
            if self._tenancy is not None:
                # The dead legs forfeit (partial refund on their share
                # of the escrow); the surviving legs never ran, so the
                # rest of the escrow flows back in full.
                self._tenancy.on_forfeit(
                    entry.job.job_id, forfeited_cost, self._emitter
                )
                self._tenancy.on_release(entry.job.job_id, self._emitter)
            results.append((entry, released, forfeited))
        return results
