"""Asyncio front door for a :class:`~repro.federation.sharding.ShardManager`.

One server owns one federation.  Connections are served concurrently by
asyncio streams, but every operation dispatches *synchronously* inside
the event loop — the federation's virtual clock and shard brokers are
single-threaded state, and the event loop is their serialisation point.
That keeps the concurrency model honest: sockets overlap, scheduling
decisions never do.

Backpressure is per connection: each response is written through
:func:`~repro.federation.protocol.write_frame`, whose ``drain()`` parks
the connection's coroutine while its transport buffer is full, so one
slow client throttles only itself.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import Any, Optional

from repro.federation.protocol import ProtocolError, read_frame, write_frame
from repro.federation.sharding import ShardManager
from repro.io import job_from_dict
from repro.model.errors import ReproError


class FederationServer:
    """Serve a federation over length-prefixed JSON frames."""

    def __init__(
        self,
        manager: ShardManager,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.manager = manager
        self._host = host
        self._port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()
        self.connections_served = 0
        self.frames_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves port 0 after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port
        )

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` op or :meth:`stop` arrives."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        """Flag the server to stop (safe from signal handlers via loop)."""
        self._shutdown.set()

    async def stop(self) -> None:
        """Stop accepting, close the listener, and close the federation."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._shutdown.set()
        self.manager.close()

    # ------------------------------------------------------------------
    # Connection loop
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as error:
                    # The stream is unframed from here on: report and drop.
                    await write_frame(
                        writer, {"ok": False, "error": str(error)}
                    )
                    break
                if request is None:
                    break
                response = self._dispatch(request)
                self.frames_served += 1
                await write_frame(writer, response)
                if request.get("op") == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------
    # Synchronous dispatch (the serialisation point)
    # ------------------------------------------------------------------
    def _dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        handler = self._HANDLERS.get(op)
        if handler is None:
            return {"ok": False, "error": f"unknown op {op!r}"}
        try:
            return handler(self, request)
        except ReproError as error:
            # Any library error (bad payload, dead shard, non-monotone
            # clock, ...) is the client's problem, not the connection's.
            return {"ok": False, "error": str(error)}

    def _op_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        return {"ok": True, "now": self.manager.now}

    def _op_submit(self, request: dict[str, Any]) -> dict[str, Any]:
        payload = request.get("job")
        if not isinstance(payload, dict):
            return {"ok": False, "error": "submit requires a 'job' object"}
        job = job_from_dict(payload)
        tenant_id = request.get("tenant_id")
        if tenant_id is not None:
            if not isinstance(tenant_id, str) or not tenant_id:
                return {
                    "ok": False,
                    "error": "'tenant_id' must be a non-empty string",
                }
            # The wire-level tenant wins over whatever owner the job
            # payload carried: the connection is the billing identity.
            job = replace(job, owner=tenant_id)
        at = request.get("at")
        if at is not None:
            if not isinstance(at, (int, float)):
                return {"ok": False, "error": "'at' must be a number"}
            if float(at) > self.manager.now:
                self.manager.advance_to(float(at))
        decision = self.manager.submit(job)
        response: dict[str, Any] = {
            "ok": True,
            "job_id": job.job_id,
            "admitted": decision.admitted,
            "now": self.manager.now,
        }
        if decision.shard_id is not None:
            response["shard"] = decision.shard_id
        if decision.coallocated:
            response["coallocated"] = True
            response["shards"] = list(decision.shard_ids)
        if decision.reason is not None:
            response["reason"] = decision.reason
        return response

    def _op_status(self, request: dict[str, Any]) -> dict[str, Any]:
        job_id = request.get("job_id")
        if not isinstance(job_id, str):
            return {"ok": False, "error": "status requires a 'job_id' string"}
        located = self.manager.locate(job_id)
        if located is None:
            return {"ok": True, "job_id": job_id, "state": "unknown"}
        return {"ok": True, "job_id": job_id, **located}

    def _op_cancel(self, request: dict[str, Any]) -> dict[str, Any]:
        job_id = request.get("job_id")
        if not isinstance(job_id, str):
            return {"ok": False, "error": "cancel requires a 'job_id' string"}
        return {"ok": True, "cancelled": self.manager.cancel(job_id)}

    def _op_stats(self, request: dict[str, Any]) -> dict[str, Any]:
        return {"ok": True, "stats": self.manager.stats_snapshot()}

    def _op_advance(self, request: dict[str, Any]) -> dict[str, Any]:
        to = request.get("to")
        if not isinstance(to, (int, float)):
            return {"ok": False, "error": "advance requires a numeric 'to'"}
        cycles = self.manager.advance_to(float(to))
        return {"ok": True, "now": self.manager.now, "cycles": cycles}

    def _op_drain(self, request: dict[str, Any]) -> dict[str, Any]:
        now = self.manager.drain()
        return {"ok": True, "now": now}

    def _op_kill_shard(self, request: dict[str, Any]) -> dict[str, Any]:
        shard = request.get("shard")
        if not isinstance(shard, int):
            return {"ok": False, "error": "kill-shard requires an int 'shard'"}
        evacuated = self.manager.kill_shard(shard)
        return {
            "ok": True,
            "shard": shard,
            "evacuated": [job.job_id for job in evacuated],
        }

    def _op_credits(self, request: dict[str, Any]) -> dict[str, Any]:
        tenancy = self.manager.tenancy
        if tenancy is None:
            return {"ok": False, "error": "tenancy is not enabled"}
        return {"ok": True, "credits": tenancy.snapshot()}

    def _op_tenants(self, request: dict[str, Any]) -> dict[str, Any]:
        tenancy = self.manager.tenancy
        if tenancy is None:
            return {"ok": False, "error": "tenancy is not enabled"}
        from repro.tenancy.drf import dominant_share

        tenants = []
        for name in tenancy.ledger.tenants():
            account = tenancy.ledger.account(name)
            tenants.append(
                {
                    "name": name,
                    "weight": account.weight,
                    "balance": account.balance,
                    "committed_node_seconds": account.committed_node_seconds,
                    "dominant_share": dominant_share(
                        account.committed_node_seconds, account.weight
                    ),
                }
            )
        return {"ok": True, "tenants": tenants}

    def _op_shutdown(self, request: dict[str, Any]) -> dict[str, Any]:
        self._shutdown.set()
        return {"ok": True, "now": self.manager.now}

    _HANDLERS = {
        "ping": _op_ping,
        "submit": _op_submit,
        "status": _op_status,
        "cancel": _op_cancel,
        "stats": _op_stats,
        "advance": _op_advance,
        "drain": _op_drain,
        "kill-shard": _op_kill_shard,
        "credits": _op_credits,
        "tenants": _op_tenants,
        "shutdown": _op_shutdown,
    }
