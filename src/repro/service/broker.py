"""The on-line broker service: streaming intake over a shared slot pool.

This is the long-running counterpart of the one-shot batch cycle
(:class:`~repro.scheduling.BatchScheduler`): jobs are submitted one at a
time through admission control into a bounded queue; a size-or-deadline
trigger coalesces them into scheduling cycles; each cycle runs phase one
in parallel across jobs on one shared read-only pool snapshot (reused
persistent worker pool), picks the phase-two combination, and commits it
onto the shared pool under one lock.  A
virtual-clock lifecycle retires finished jobs and returns their slots
via :meth:`~repro.model.SlotPool.release`, so the service can run
indefinitely without fragmenting or leaking the pool.

Threading model: every public method takes the broker lock, and the
only concurrency *inside* the lock is the phase-one worker pool over
read-only snapshots — so the shared pool is mutated (trim, cut,
release) strictly sequentially.  Virtual time is monotone and entirely
caller-driven (``advance_to``), which keeps runs reproducible: the
assignments of a run depend only on the submitted jobs, their times and
the configuration — never on wall-clock or worker count.
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import replace
from time import perf_counter
from typing import Iterable, Optional, Sequence

from repro.core.algorithms.csa import CSA
from repro.model.errors import SchedulingError
from repro.model.job import Job, JobBatch
from repro.model.slot import TIME_EPSILON
from repro.model.slotpool import SlotPool
from repro.model.window import Window
from repro.scheduling.metascheduler import BatchScheduler, CycleReport
from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionOutlook,
)
from repro.service.config import ServiceConfig
from repro.service.events import EventEmitter, EventSink, EventType
from repro.service.lifecycle import ActiveJob, JobLifecycle
from repro.service.parallel import parallel_find_alternatives
from repro.service.queueing import BoundedJobQueue, CycleTrigger, QueuedJob
from repro.service.stats import ServiceStats


class BrokerService:
    """Streaming job intake, cycle batching, and slot lifecycle.

    Parameters
    ----------
    pool:
        The shared slot pool the service owns and mutates (commits, trims,
        releases).  Typically ``environment.slot_pool()``.
    config:
        Operational knobs (queue bound, batching, workers, policy).
    scheduler:
        The two-phase cycle kernel; by default CSA phase one capped at
        ``config.alternatives_per_job`` with ``config.criterion`` phase two.
    clock_start:
        Initial virtual time; free time before it is trimmed immediately.
    sinks:
        Event consumers (ring buffer, JSONL writer, trace validator, ...)
        fed every job/cycle state transition; empty means tracing is a
        no-op.  All components share one emitter, so sequence numbers
        totally order the trace.  Every emitted field is deterministic
        for a given job stream and configuration except ``wall_``-prefixed
        timing fields, preserving PR 1's worker-count invariance.
    horizon_source:
        Optional rolling-horizon slot supply
        (:class:`~repro.environment.RollingHorizonSource`).  When set,
        every retire-and-trim step also tops the pool up to ``now +
        lead`` — trim garbage-collects the past while the source
        publishes the future, so the pool stays inside a bounded window
        over unbounded virtual time.  ``None`` (the default) keeps the
        paper's fixed-interval behaviour.
    tenancy:
        Optional shared :class:`~repro.tenancy.TenancyManager`.  A
        federation passes one manager to every shard broker so credit
        balances and the pricing EWMA are deployment-global; a
        standalone broker builds its own from ``config.tenancy``.
    """

    def __init__(
        self,
        pool: SlotPool,
        config: Optional[ServiceConfig] = None,
        scheduler: Optional[BatchScheduler] = None,
        clock_start: float = 0.0,
        sinks: Sequence[EventSink] = (),
        horizon_source=None,
        tenancy=None,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.pool = pool
        self.scheduler = (
            scheduler
            if scheduler is not None
            else BatchScheduler(
                search=CSA(max_alternatives=self.config.alternatives_per_job),
                criterion=self.config.criterion,
                alternatives_per_job=self.config.alternatives_per_job,
            )
        )
        self.stats = ServiceStats()
        self.assignments: dict[str, Window] = {}
        self.last_report: Optional[CycleReport] = None
        self.events = EventEmitter(sinks, clock=lambda: self._now)
        #: Warm-start evidence: every cycle's batched/placed/wait outcome
        #: is folded in; the admission controller consults it when the
        #: ``outlook_min_fit`` gate is enabled (off by default).
        self.outlook = AdmissionOutlook(decay=self.config.outlook_decay)
        self._admission = AdmissionController(
            emitter=self.events,
            outlook=self.outlook,
            criterion=self.config.criterion.value,
            min_fit=self.config.outlook_min_fit,
            min_fit_cycles=self.config.outlook_min_fit_cycles,
        )
        self._queue = BoundedJobQueue(self.config.queue_capacity, emitter=self.events)
        self._trigger = CycleTrigger(self.config.batch_size, self.config.max_wait)
        self._lifecycle = JobLifecycle(emitter=self.events)
        self._lock = threading.RLock()
        self._now = clock_start
        #: Live fault injection + recovery; ``None`` (the default) keeps
        #: every clock/cycle path — and the traces — byte-identical to a
        #: broker without the subsystem.  Imported lazily: the manager
        #: module pulls in service submodules, so a module-level import
        #: would close an import cycle for some entry points.
        #: Multi-tenant economics (credit ledger, DRF ordering, pricing);
        #: ``None`` keeps every path byte-identical to a broker without
        #: the subsystem.  A shared manager (federation) wins over
        #: building one from the config; imported lazily like the
        #: resilience manager to keep the optional package out of the
        #: default import graph.
        self._tenancy = tenancy
        if self._tenancy is None and self.config.tenancy is not None:
            from repro.tenancy.manager import TenancyManager

            self._tenancy = TenancyManager(self.config.tenancy)
        self._resilience = None
        if self.config.resilience is not None:
            from repro.service.resilience.manager import ResilienceManager

            self._resilience = ResilienceManager(
                self.config.resilience,
                pool=self.pool,
                lifecycle=self._lifecycle,
                queue=self._queue,
                stats=self.stats,
                emitter=self.events,
                assignments=self.assignments,
                cut_mode=self.config.cut_mode,
                completion_factor=self.config.completion_factor,
                record_assignments=self.config.record_assignments,
                tenancy=self._tenancy,
            )
        #: Persistent phase-one executor, created on first parallel cycle
        #: and reused for the broker's lifetime (thread spawn per cycle
        #: was pure overhead); ``close()`` shuts it down.
        self._executor: Optional[Executor] = None
        self._horizon = horizon_source
        self.pool.trim_before(self._now)
        if self._horizon is not None:
            self.stats.slots_published += self._horizon.ensure(self.pool, self._now)

    # ------------------------------------------------------------------
    # Resource management
    # ------------------------------------------------------------------
    def _phase_one_executor(self) -> Optional[Executor]:
        """The persistent worker pool (lazily created; None when inline).

        ``worker_mode`` picks the executor flavour; the process pool is
        fed through per-cycle shared-memory snapshots (see
        :mod:`repro.service.parallel`), so its tasks carry block names,
        never pickled pools.
        """
        if self.config.workers <= 1:
            return None
        if self._executor is None:
            if self.config.worker_mode == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self.config.workers
                )
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.config.workers,
                    thread_name_prefix="repro-phase1",
                )
        return self._executor

    def close(self) -> None:
        """Release the phase-one worker pool (idempotent).

        The broker remains usable afterwards — the next parallel cycle
        simply creates a fresh executor.
        """
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    def __enter__(self) -> "BrokerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Clock and introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def queue_depth(self) -> int:
        """Jobs admitted but not yet scheduled."""
        return self._queue.depth

    @property
    def active_count(self) -> int:
        """Jobs scheduled and not yet retired."""
        return self._lifecycle.active_count

    @property
    def resilience(self):
        """The resilience manager, or ``None`` when the layer is off."""
        return self._resilience

    @property
    def tenancy(self):
        """The tenancy manager, or ``None`` when the layer is off."""
        return self._tenancy

    @property
    def is_idle(self) -> bool:
        """No queued jobs, no active windows, no pending retries."""
        with self._lock:
            pending = (
                self._resilience.pending_retries
                if self._resilience is not None
                else 0
            )
            return (
                self._queue.depth == 0
                and self._lifecycle.active_count == 0
                and pending == 0
            )

    def next_event_time(self) -> Optional[float]:
        """Earliest virtual time at which this broker has work to do.

        The minimum over the cycle trigger's next fire time, the next
        job completion, and the next retry wake-up; ``None`` when idle.
        A federation stepping several shard brokers on one shared clock
        uses this to advance in lockstep without skipping any shard's
        due cycle or retirement.
        """
        with self._lock:
            candidates: list[float] = []
            fire = self._trigger.next_fire_time(self._queue, self._now)
            if fire is not None:
                candidates.append(fire)
            completion = self._lifecycle.next_completion()
            if completion is not None:
                candidates.append(completion)
            if self._resilience is not None:
                wake = self._resilience.next_wakeup()
                if wake is not None:
                    candidates.append(wake)
            if not candidates:
                return None
            return max(self._now, min(candidates))

    def in_flight_ids(self) -> set[str]:
        """Ids of every job the broker currently owns in any form.

        Queued, actively holding a window, or waiting out a replan
        backoff — the set admission checks duplicates against, exposed
        so a federation can run the same check across shards.
        """
        with self._lock:
            known = self._queue.job_ids() | self._lifecycle.active_ids()
            if self._resilience is not None:
                known |= self._resilience.pending_ids()
            return known

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> AdmissionDecision:
        """Offer one job to the service; returns the admission outcome.

        Admission is evaluated against the *current* pool and queue: a
        full queue, a duplicate id, too few matching nodes, or a budget
        below the cheapest possible window all reject immediately, so the
        caller learns the fate of hopeless jobs at submission rather than
        after cycles of deferral.
        """
        with self._lock:
            self.stats.submitted += 1
            self.events.emit(EventType.SUBMITTED, job_id=job.job_id)
            # A replanned job waiting out its backoff is still in flight:
            # resubmitting its id would fork the job, so in_flight_ids
            # includes the retry buffer.
            known = self.in_flight_ids()
            price_multiplier = 1.0
            credit_balance = None
            if self._tenancy is not None:
                price_multiplier = self._tenancy.price_multiplier
                credit_balance = self._tenancy.admission_balance(job.owner)
            decision = self._admission.evaluate(
                job,
                self.pool,
                queue_depth=self._queue.depth,
                queue_capacity=self._queue.capacity,
                known_ids=known,
                price_multiplier=price_multiplier,
                credit_balance=credit_balance,
            )
            if decision.admitted:
                self._queue.push(job, self._now)
                self.stats.admitted += 1
            else:
                assert decision.reason is not None
                self.stats.record_rejection(decision.reason.value)
            self.stats.queue_depth = self._queue.depth
            return decision

    def cancel(self, job_id: str) -> bool:
        """Withdraw a *queued* job; returns whether anything was removed.

        Only pending (queued, not yet scheduled) jobs can be cancelled —
        a scheduled job's window is committed on the pool and runs to
        retirement.  The cancelled job is traced as DROPPED with cause
        ``cancelled`` so the conservation laws still see a terminal state.
        """
        with self._lock:
            removed = self._queue.remove(job_id)
            if removed is None:
                return False
            self.stats.dropped += 1
            self.stats.queue_depth = self._queue.depth
            self.events.emit(
                EventType.DROPPED,
                job_id=job_id,
                cause="cancelled",
                deferrals=removed.deferrals,
            )
            if self._resilience is not None:
                self._resilience.forget(job_id)
            return True

    def evacuate(self, cause: str = "shard_lost") -> list[Job]:
        """Empty the broker for teardown; returns every in-flight job.

        The shard-death path of the federation: queued jobs and buffered
        retries are DROPPED (cause ``cause``), and every active window is
        REVOKED in full and then ABANDONED — its node-seconds are
        forfeited, never released, because the pool underneath is gone.
        The returned jobs (intake order: queued, retry-buffered, then
        active by window start) are the candidates the caller may
        re-route elsewhere.  The worker pool is closed; the broker stays
        structurally usable but owns no work afterwards.
        """
        with self._lock:
            evacuated: list[Job] = []
            while self._queue.depth > 0:
                for item in self._queue.pop_batch(self._queue.depth):
                    self.stats.dropped += 1
                    self.events.emit(
                        EventType.DROPPED,
                        job_id=item.job.job_id,
                        cause=cause,
                        deferrals=item.deferrals,
                    )
                    if self._resilience is not None:
                        self._resilience.forget(item.job.job_id)
                    evacuated.append(item.job)
            if self._resilience is not None:
                for job in self._resilience.drain_pending():
                    self.stats.dropped += 1
                    self.events.emit(
                        EventType.DROPPED,
                        job_id=job.job_id,
                        cause=cause,
                        deferrals=0,
                    )
                    evacuated.append(job)
            for entry in self._lifecycle.entries():
                window = entry.window
                node_seconds = window.processor_time
                self.events.emit(
                    EventType.REVOKED,
                    job_id=entry.job.job_id,
                    cause=cause,
                    nodes=window.nodes(),
                    node_seconds=node_seconds,
                )
                if self._tenancy is not None:
                    # The whole window is forfeited: partial refund on
                    # its full escrowed cost, then close out whatever
                    # remains (nothing runnable survives the shard).
                    self._tenancy.on_forfeit(
                        entry.job.job_id, window.total_cost, self.events
                    )
                    self._tenancy.on_release(entry.job.job_id, self.events)
                self.events.emit(
                    EventType.ABANDONED,
                    job_id=entry.job.job_id,
                    cause=cause,
                    released_node_seconds=0.0,
                )
                self.stats.revocations += 1
                self.stats.legs_revoked += len(window.slots)
                self.stats.abandoned += 1
                self.stats.record_forfeit(entry.job.owner, node_seconds)
                self._lifecycle.cancel(entry.job.job_id)
                self.assignments.pop(entry.job.job_id, None)
                if self._resilience is not None:
                    self._resilience.forget(entry.job.job_id)
                evacuated.append(entry.job)
            self.stats.queue_depth = 0
            self.stats.active_jobs = 0
            self.close()
            return evacuated

    # ------------------------------------------------------------------
    # Clock driving
    # ------------------------------------------------------------------
    def pump(self) -> int:
        """Run every cycle due at the current time; returns cycles run.

        Call after :meth:`submit` to honour the batch-size trigger
        immediately instead of waiting for the next clock advance.
        """
        with self._lock:
            ran = 0
            while self._trigger.should_fire(self._queue, self._now):
                self._run_cycle()
                ran += 1
            return ran

    def _step_clock(self, target: float) -> None:
        """Move the clock to ``target``, injecting faults along the way.

        Without a resilience layer this is a plain clock assignment.
        With one, the interval ``[now, target)`` is sampled for local-job
        arrivals on the active nodes and each preemption is applied *at
        its arrival time*: jobs that complete before it are retired
        first (their windows are no longer revocable), then the
        compromised windows are recovered.  The ordering makes revocation
        timing independent of how coarsely callers step the clock.
        """
        if self._resilience is None or target <= self._now + TIME_EPSILON:
            self._now = max(self._now, target)
            return
        for hit in self._resilience.sample_interval(self._now, target):
            self._now = max(self._now, hit.arrival)
            self._retire_and_trim()
            self._resilience.apply(hit, self._now)
        self._now = max(self._now, target)

    def advance_to(self, now: float) -> int:
        """Advance the virtual clock, firing cycles as they come due.

        Cycles triggered by the max-wait deadline fire *at* their deadline
        (not at ``now``), so batching behaviour does not depend on how
        coarsely the caller steps the clock.  Finished jobs are retired,
        past free time trimmed, and — with a resilience layer — due
        retry re-enqueues and sampled revocations applied in order.
        Returns the number of cycles run.  The clock is monotone: moving
        backwards raises.
        """
        if now < self._now - TIME_EPSILON:
            raise SchedulingError(
                f"virtual clock must be monotone: at {self._now}, got {now}"
            )
        with self._lock:
            ran = 0
            while True:
                due: list[float] = []
                fire = self._trigger.next_fire_time(self._queue, self._now)
                if fire is not None and fire <= now + TIME_EPSILON:
                    due.append(fire)
                if self._resilience is not None:
                    wake = self._resilience.next_wakeup()
                    if wake is not None and wake <= now + TIME_EPSILON:
                        due.append(wake)
                if not due:
                    break
                target = min(due)
                self._step_clock(target)
                if self._resilience is not None:
                    self._resilience.release_due_retries(self._now)
                if fire is not None and fire <= target + TIME_EPSILON:
                    self._run_cycle()
                    ran += 1
            self._step_clock(now)
            if self._resilience is not None:
                self._resilience.release_due_retries(self._now)
            self._retire_and_trim()
            return ran

    def drain(self, max_cycles: int = 100_000) -> float:
        """Run until the queue is empty and every job retired.

        Advances the clock to each pending trigger, retry wake-up or
        completion in turn; deferral and retry caps guarantee progress.
        Returns the final virtual time.
        """
        with self._lock:
            for _ in range(max_cycles):
                pending_retries = (
                    self._resilience.pending_retries
                    if self._resilience is not None
                    else 0
                )
                if (
                    self._queue.depth == 0
                    and self._lifecycle.active_count == 0
                    and pending_retries == 0
                ):
                    return self._now
                wake = (
                    self._resilience.next_wakeup()
                    if self._resilience is not None
                    else None
                )
                fire = self._trigger.next_fire_time(self._queue, self._now)
                if fire is not None:
                    # Step to the retry wake-up first when it is earlier,
                    # so re-enqueues happen at their ready time (as in
                    # advance_to), not lumped onto the next cycle.
                    target = fire if wake is None else min(fire, wake)
                    self._step_clock(max(self._now, target))
                    if self._resilience is not None:
                        self._resilience.release_due_retries(self._now)
                    if fire <= target + TIME_EPSILON:
                        self._run_cycle()
                    continue
                candidates = []
                completion = self._lifecycle.next_completion()
                if completion is not None:
                    candidates.append(completion)
                if wake is not None:
                    candidates.append(wake)
                assert candidates  # queue empty => jobs active or retries pending
                self._step_clock(max(self._now, min(candidates)))
                if self._resilience is not None:
                    self._resilience.release_due_retries(self._now)
                self._retire_and_trim()
            raise SchedulingError(
                f"drain() did not converge within {max_cycles} cycles"
            )

    # ------------------------------------------------------------------
    # The cycle
    # ------------------------------------------------------------------
    def _retire_and_trim(self) -> list[ActiveJob]:
        """Retire finished jobs (releasing slots) and drop past free time.

        With a rolling-horizon source attached, this is also where the
        future is published: after the past is trimmed, the pool is
        topped up to ``now + lead``, so each step leaves the pool inside
        the bounded window the source guarantees.
        """
        retired = self._lifecycle.retire_due(self._now, self.pool)
        self.stats.retired += len(retired)
        for entry in retired:
            # Goodput numerator: node-seconds actually delivered to jobs
            # that ran to completion (repaired windows count in full).
            self.stats.delivered_node_seconds += entry.window.processor_time
            if self._resilience is not None:
                self._resilience.forget(entry.job.job_id)
            if self._tenancy is not None:
                # A clean retirement settles the escrow: the window's
                # cost becomes provider revenue, no event to replay.
                self._tenancy.on_retired(entry.job.job_id)
        self.pool.trim_before(self._now)
        if self._horizon is not None:
            self.stats.slots_published += self._horizon.ensure(self.pool, self._now)
        self.stats.active_jobs = self._lifecycle.active_count
        return retired

    def _run_cycle(self) -> CycleReport:
        """One scheduling cycle at the current virtual time (locked).

        Retire & trim, pop a batch, search phase one in parallel over
        snapshots, choose the phase-two combination, commit it onto the
        shared pool, start lifecycles, and requeue or drop the rest.
        """
        cycle_started = perf_counter()
        cycle_index = self.stats.cycles
        self._retire_and_trim()
        self.events.emit(
            EventType.CYCLE_START,
            cycle=cycle_index,
            queue_depth=self._queue.depth,
            active_jobs=self._lifecycle.active_count,
        )
        if self._tenancy is not None:
            queued = self._tenancy.drain_batch(self._queue, self.config.batch_size)
        else:
            queued = self._queue.pop_batch(self.config.batch_size)
        price_multiplier = (
            1.0 if self._tenancy is None else self._tenancy.price_multiplier
        )
        batch = JobBatch()
        by_id: dict[str, QueuedJob] = {}
        for item in queued:
            by_id[item.job.job_id] = item
            request = item.job.request
            if price_multiplier != 1.0:
                # Live prices are the static prices scaled uniformly by
                # the multiplier ``m``, so "window cost m*C fits budget
                # b" is exactly "C fits b/m": scaling the *budget* (and
                # the per-node price cap) lets phase one and phase two
                # see live prices without touching the slot snapshot.
                budget = request.effective_budget
                cap = request.max_price_per_unit
                request = replace(
                    request,
                    budget=(
                        None if not math.isfinite(budget)
                        else budget / price_multiplier
                    ),
                    max_price_per_unit=(
                        None if cap is None else cap / price_multiplier
                    ),
                )
            # Ageing: every deferral bumps the priority, as in the flow
            # simulation, so waiting jobs eventually win conflicts.
            batch.add(
                Job(
                    item.job.job_id,
                    request,
                    priority=item.job.priority + item.deferrals,
                    owner=item.job.owner,
                )
            )

        search_started = perf_counter()
        jobs_by_priority = batch.by_priority()
        alternatives = parallel_find_alternatives(
            self.scheduler.search,
            jobs_by_priority,
            self.pool,
            workers=self.config.workers,
            limit=self.config.alternatives_per_job,
            executor=self._phase_one_executor(),
            mode=self.config.worker_mode,
        )
        search_seconds = perf_counter() - search_started
        self.stats.search_seconds += search_seconds
        self.stats.windows_found += sum(len(found) for found in alternatives.values())
        # Per-broker grouping telemetry: how many phase-1 searches the
        # request-class grouping collapsed this cycle (the process-wide
        # scan_counters cannot attribute savings to one broker).
        self.stats.phase1_jobs += len(jobs_by_priority)
        self.stats.phase1_classes += len({job.request for job in jobs_by_priority})

        report = self.scheduler.plan(batch, self.pool, alternatives=alternatives)
        credit_blocked: list[str] = []
        for job_id, window in report.scheduled.items():
            if self._tenancy is not None and not self._tenancy.charge_commit(
                by_id[job_id].job,
                window,
                self.events,
                multiplier=price_multiplier,
            ):
                # The tenant cannot pay for the window it won: the
                # commit is withheld (the pool is untouched — phase-two
                # windows are disjoint, so skipping one never invalidates
                # the others) and the job rides the defer/drop path below.
                credit_blocked.append(job_id)
                continue
            # Commit by span containment: earlier commits this cycle may
            # have replaced a leg's snapshot slot with its remainders.
            self.pool.commit_window(window, mode=self.config.cut_mode)
            self._lifecycle.start(
                by_id[job_id].job,
                window,
                self._now,
                completion_factor=self.config.completion_factor,
            )
            if self.config.record_assignments:
                self.assignments[job_id] = window
            self.events.emit(
                EventType.SCHEDULED,
                job_id=job_id,
                cycle=cycle_index,
                window_start=window.start,
                window_finish=window.finish,
                cost=window.total_cost,
                nodes=window.nodes(),
                node_seconds=window.processor_time,
            )
            if self._resilience is not None:
                self._resilience.on_scheduled(job_id, self._now)
        committed = len(report.scheduled) - len(credit_blocked)
        self.stats.scheduled += committed
        if queued:
            # Feed the warm-start outlook: this cycle's demonstrated fit
            # ratio and the batch's mean queue wait (virtual time).
            mean_wait = sum(
                self._now - item.enqueued_at for item in queued
            ) / len(queued)
            self.outlook.observe_cycle(
                self.config.criterion.value,
                len(queued),
                committed,
                mean_wait,
            )

        for job_id in list(report.unscheduled) + credit_blocked:
            item = by_id[job_id]
            deferrals = item.deferrals + 1
            if deferrals > self.config.max_deferrals:
                self.stats.dropped += 1
                self.events.emit(
                    EventType.DROPPED,
                    job_id=job_id,
                    cycle=cycle_index,
                    cause="max_deferrals",
                    deferrals=item.deferrals,
                )
                if self._resilience is not None:
                    self._resilience.forget(job_id)
            elif not self._queue.push(item.job, self._now, deferrals=deferrals):
                # The re-push can meet a full queue (e.g. the bound was
                # shrunk while the batch was in flight); counting the job
                # as dropped keeps the admitted = scheduled + dropped +
                # queued conservation law — ignoring the push result here
                # used to lose the job without a trace.
                self.stats.dropped += 1
                self.events.emit(
                    EventType.DROPPED,
                    job_id=job_id,
                    cycle=cycle_index,
                    cause="queue_full",
                    deferrals=item.deferrals,
                )
                if self._resilience is not None:
                    self._resilience.forget(job_id)
            else:
                self.stats.deferred += 1
                self.events.emit(
                    EventType.DEFERRED,
                    job_id=job_id,
                    cycle=cycle_index,
                    deferrals=deferrals,
                )

        self.stats.cycles += 1
        self.stats.queue_depth = self._queue.depth
        self.stats.active_jobs = self._lifecycle.active_count
        cycle_seconds = perf_counter() - cycle_started
        self.stats.cycle_latency.add(cycle_seconds)
        cycle_fields: dict[str, object] = dict(
            cycle=cycle_index,
            batch=len(queued),
            scheduled=committed,
            unscheduled=len(report.unscheduled) + len(credit_blocked),
            queue_depth=self._queue.depth,
            active_jobs=self._lifecycle.active_count,
            wall_search_seconds=search_seconds,
            wall_cycle_seconds=cycle_seconds,
        )
        if self._tenancy is not None:
            # Fold this cycle's utilization into the pricing EWMA: the
            # node-seconds held by live windows against what the pool
            # still offers.  The updated multiplier prices the *next*
            # cycle and every admission until then.
            held = sum(
                entry.window.processor_time
                for entry in self._lifecycle.entries()
            )
            arrays = self.pool.as_arrays()
            free = float((arrays.end - arrays.start).sum())
            cycle_fields["price_multiplier"] = self._tenancy.observe_cycle(
                held, free
            )
        self.events.emit(EventType.CYCLE_END, **cycle_fields)
        if self.config.check_invariants:
            self.pool.assert_disjoint_per_node()
        self.last_report = report
        return report

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def process(self, arrivals: Iterable[tuple[float, Job]]) -> ServiceStats:
        """Feed a timed arrival stream through the service and drain it.

        The scripted-trace entry point: for each ``(time, job)`` pair the
        clock advances to ``time`` (firing due cycles), the job is
        submitted, and immediate batch-size triggers are pumped.  After
        the stream ends the service drains completely.
        """
        for arrival_time, job in arrivals:
            self.advance_to(arrival_time)
            self.submit(job)
            self.pump()
        self.drain()
        return self.stats
