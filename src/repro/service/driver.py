"""Scripted-trace driver and throughput benchmark for the broker service.

``run_service_trace`` is what ``repro serve`` executes: generate an
environment, stream a seeded Poisson arrival trace through a
:class:`~repro.service.BrokerService`, and report the stats block.
``bench_service`` is the ``repro bench-service`` workhorse: the same
run, wall-clock timed at several pool sizes, emitting the JSON payload
archived in ``BENCH_service.json`` so successive PRs have a throughput
trajectory to beat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional, Sequence

from repro.core.vectorized import scan_counters
from repro.environment.generator import EnvironmentConfig, EnvironmentGenerator
from repro.hostinfo import host_payload
from repro.model.errors import ConfigurationError
from repro.service.broker import BrokerService
from repro.service.config import ServiceConfig
from repro.service.events import EventSink, JsonlSink
from repro.service.tracing import TraceValidator
from repro.simulation.jobgen import JobGenerator


@dataclass(frozen=True)
class TraceConfig:
    """Parameters of one scripted service run.

    ``trace_path`` attaches a JSONL event sink (the ``repro serve
    --trace`` wiring); ``validate_trace`` rides a
    :class:`~repro.service.tracing.TraceValidator` along the stream and
    checks the conservation invariants once the run has drained.
    """

    jobs: int = 100
    rate: float = 2.0
    node_count: int = 50
    seed: Optional[int] = 7
    service: ServiceConfig = field(default_factory=ServiceConfig)
    trace_path: Optional[str] = None
    validate_trace: bool = False

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ConfigurationError(f"jobs must be >= 0, got {self.jobs}")
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate}")
        if self.node_count < 1:
            raise ConfigurationError(f"node_count must be >= 1, got {self.node_count}")


@dataclass(frozen=True)
class TraceResult:
    """Outcome of one scripted run: the service plus timing."""

    service: BrokerService
    elapsed_seconds: float
    final_virtual_time: float
    validator: Optional[TraceValidator] = None

    def snapshot(self) -> dict[str, object]:
        """JSON-friendly summary (stats block plus run timing)."""
        payload = self.service.stats.snapshot(elapsed_seconds=self.elapsed_seconds)
        payload["elapsed_seconds"] = round(self.elapsed_seconds, 3)
        payload["final_virtual_time"] = round(self.final_virtual_time, 1)
        if self.validator is not None:
            payload["trace"] = self.validator.summary()
        return payload


def build_service(
    config: TraceConfig, sinks: Sequence[EventSink] = ()
) -> BrokerService:
    """A broker over a freshly generated environment pool."""
    environment = EnvironmentGenerator(
        EnvironmentConfig(node_count=config.node_count, seed=config.seed)
    ).generate()
    return BrokerService(environment.slot_pool(), config=config.service, sinks=sinks)


def run_service_trace(
    config: TraceConfig, service: Optional[BrokerService] = None
) -> TraceResult:
    """Stream a seeded arrival trace through a broker and drain it.

    When ``config`` asks for tracing the JSONL sink is closed (flushed)
    before the validator verdict, so the trace file is complete on disk
    even when :meth:`TraceValidator.check` raises — CI uploads it as the
    failure artifact.
    """
    validator = TraceValidator() if config.validate_trace else None
    if service is None:
        sinks: list[EventSink] = []
        if config.trace_path is not None:
            sinks.append(JsonlSink(config.trace_path))
        if validator is not None:
            sinks.append(validator)
        service = build_service(config, sinks=sinks)
    elif validator is not None:
        service.events.add_sink(validator)
    generator = JobGenerator(seed=config.seed)
    started = perf_counter()
    try:
        with service:
            service.process(generator.iter_arrivals(config.jobs, rate=config.rate))
        elapsed = perf_counter() - started
    finally:
        service.events.close()
    if validator is not None:
        validator.check(expect_drained=True)
    return TraceResult(
        service=service,
        elapsed_seconds=elapsed,
        final_virtual_time=service.now,
        validator=validator,
    )


def _trace_path_for_nodes(trace_path: str, node_count: int) -> str:
    """Per-pool-size JSONL path: ``trace.jsonl`` -> ``trace-50nodes.jsonl``."""
    stem, dot, suffix = trace_path.rpartition(".")
    if not dot:
        return f"{trace_path}-{node_count}nodes"
    return f"{stem}-{node_count}nodes.{suffix}"


def bench_service(
    node_counts: Sequence[int] = (50, 200),
    jobs: int = 200,
    rate: float = 2.0,
    workers: int = 4,
    seed: int = 2013,
    trace_path: Optional[str] = None,
) -> dict[str, object]:
    """Throughput benchmark across pool sizes.

    Invariant checking is disabled (measured, not verified, runs) and the
    phase-one fan-out uses ``workers`` threads.  ``trace_path`` archives
    each run's event stream to a per-pool-size JSONL file.  Returns the
    payload written to ``BENCH_service.json``; per row it reports both
    the offered rate (``jobs_per_second``, submissions over wall time)
    and the useful throughput (``scheduled_per_second``).
    """
    results: list[dict[str, object]] = []
    for node_count in node_counts:
        config = TraceConfig(
            jobs=jobs,
            rate=rate,
            node_count=node_count,
            seed=seed,
            service=ServiceConfig(workers=workers, check_invariants=False),
            trace_path=(
                _trace_path_for_nodes(trace_path, node_count)
                if trace_path is not None
                else None
            ),
        )
        outcome = run_service_trace(config)
        stats = outcome.service.stats
        latency_p50, latency_p95 = stats.cycle_latency.quantiles(0.50, 0.95)
        elapsed = outcome.elapsed_seconds
        results.append(
            {
                "nodes": node_count,
                "jobs": jobs,
                "elapsed_seconds": round(elapsed, 3),
                "jobs_per_second": round(jobs / elapsed, 1) if elapsed > 0 else 0.0,
                "scheduled_per_second": round(stats.scheduled / elapsed, 1)
                if elapsed > 0
                else 0.0,
                "cycles": stats.cycles,
                "cycle_latency_ms_p50": round(latency_p50 * 1e3, 3),
                "cycle_latency_ms_p95": round(latency_p95 * 1e3, 3),
                "windows_per_second": round(stats.windows_per_second, 1),
                "scheduled": stats.scheduled,
                "rejected": stats.rejected,
                "dropped": stats.dropped,
                "retired": stats.retired,
            }
        )
    return {
        "benchmark": "service_throughput",
        "config": {
            "jobs": jobs,
            "rate": rate,
            "workers": workers,
            "seed": seed,
            "criterion": ServiceConfig().criterion.value,
            "batch_size": ServiceConfig().batch_size,
            "max_wait": ServiceConfig().max_wait,
        },
        "host": host_payload(parallel_target=max(workers, 2)),
        "scan_kernel": dict(scan_counters),
        "results": results,
    }
