"""Soak benchmark: 10^5 jobs through a rolling-horizon broker.

The long-running counterpart of ``bench-service``'s short bursts: a
Poisson stream of jobs is driven through one broker whose pool is fed by
a :class:`~repro.environment.RollingHorizonSource`, so virtual time
crosses hundreds of horizon segments while ``trim_before`` keeps the
pool inside a bounded window.  The run exists to prove two properties a
short benchmark cannot:

* **flat memory** — every structure a cycle touches is bounded (windowed
  latency trackers, reservoir samplers, the rolling pool itself), so RSS
  after two hundred intervals matches RSS after twenty;
* **stable latency** — the incremental columnar maintenance keeps
  snapshot cost independent of run length, so p99 cycle latency in the
  last decile of cycles matches the first decile.

Four refuse-to-record gates (:class:`SoakGateError`) keep the payload
honest, in the tradition of the repo's invariance-checked benches:

1. RSS growth between the first and last decile of samples must stay
   under ``max_rss_ratio``;
2. last-decile p99 cycle latency must stay within ``max_p99_ratio`` of
   the first decile;
3. the periodically sampled incremental-snapshot cost must beat a
   cold per-cycle columnar rebuild by at least ``min_speedup``;
4. the scan kernel must actually have dispatched vectorized (a silent
   object-loop fallback run records nothing).
"""

from __future__ import annotations

import json
import os
import sys
from time import perf_counter
from typing import Any, Optional, Sequence

from repro.core.algorithms.csa import CSA
from repro.environment.generator import EnvironmentConfig
from repro.environment.rolling import HorizonConfig, RollingHorizonSource
from repro.hostinfo import host_payload
from repro.model.slotarrays import SlotArrays
from repro.model.slotpool import SlotPool
from repro.scheduling.metascheduler import BatchScheduler
from repro.service.broker import BrokerService
from repro.service.config import ServiceConfig
from repro.service.events import Event, EventSink, EventType
from repro.service.stats import percentile
from repro.simulation.jobgen import JobGenerator


class SoakGateError(RuntimeError):
    """A refuse-to-record gate failed; no numbers are reported."""


def _rss_bytes() -> int:
    """Resident set size from ``/proc/self/statm`` (0 where unavailable)."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        return 0


class _CycleProbe(EventSink):
    """Collects every cycle's wall latency (one float per cycle).

    The broker's own :class:`~repro.service.stats.LatencyTracker` keeps a
    sliding window by design; the first-vs-last-decile gate needs the
    *whole* series, which is bounded by cycle count (~jobs / batch_size
    floats), not job count.
    """

    def __init__(self) -> None:
        self.wall_seconds: list[float] = []

    def emit(self, event: Event) -> None:
        if event.type is EventType.CYCLE_END:
            self.wall_seconds.append(float(event.fields["wall_cycle_seconds"]))


def _decile_split(series: Sequence[float]) -> tuple[list[float], list[float]]:
    """First and last tenth of a series (at least one element each)."""
    width = max(1, len(series) // 10)
    return list(series[:width]), list(series[-width:])


def bench_soak(
    jobs: int = 100_000,
    node_count: int = 200,
    rate: float = 0.8,
    seed: int = 2013,
    lead: float = 600.0,
    stride: float = 600.0,
    batch_size: int = 8,
    amp_policy: str = "cheapest",
    sample_every: int = 64,
    warmup_fraction: float = 0.1,
    min_speedup: float = 5.0,
    max_p99_ratio: float = 1.2,
    max_rss_ratio: float = 1.2,
) -> dict[str, Any]:
    """Drive ``jobs`` arrivals through a rolling-horizon broker and gate.

    Returns a JSON-ready payload; raises :class:`SoakGateError` when any
    refuse-to-record gate fails.  The defaults cross ``jobs / rate /
    stride`` ≈ 200 horizon segments — hundreds of rolling intervals, the
    regime where a leak or an O(run-length) snapshot cost would show.

    ``amp_policy`` defaults to ``"cheapest"``, the AMP variant whose scan
    the columnar kernel serves (the paper-faithful ``"first"`` eviction
    scan is a per-slot object loop about 5x slower per cycle — fine for
    a 200-job bench, prohibitive for 10^5).  The first
    ``warmup_fraction`` of cycles is excluded from the stability gates:
    the broker starts on an empty pool and ramps to its steady-state
    active-job population over the first few dozen cycles, a one-time
    transient that would otherwise read as drift.
    """
    from repro.core.vectorized import scan_counters

    config = EnvironmentConfig(node_count=node_count, seed=seed)
    source = RollingHorizonSource(config, HorizonConfig(lead=lead, stride=stride))
    service = ServiceConfig(batch_size=batch_size, check_invariants=False)
    scheduler = BatchScheduler(
        search=CSA(
            max_alternatives=service.alternatives_per_job, amp_policy=amp_policy
        ),
        criterion=service.criterion,
        alternatives_per_job=service.alternatives_per_job,
    )
    probe = _CycleProbe()
    pool = SlotPool()
    scan_before = dict(scan_counters)

    rss_samples: list[int] = []
    incremental_seconds = 0.0
    rebuild_seconds = 0.0
    snapshot_samples = 0
    pool_sizes: list[int] = []

    arrivals = JobGenerator(seed=seed).iter_arrivals(jobs, rate=rate)
    started = perf_counter()
    with BrokerService(
        pool,
        config=service,
        scheduler=scheduler,
        sinks=[probe],
        horizon_source=source,
    ) as broker:
        next_probe = sample_every
        for arrival_time, job in arrivals:
            broker.advance_to(arrival_time)
            broker.submit(job)
            broker.pump()
            if broker.stats.cycles >= next_probe:
                next_probe = broker.stats.cycles + sample_every
                rss_samples.append(_rss_bytes())
                pool_sizes.append(len(pool))
                # Paired sample of the tentpole comparison: one fresh
                # gather through the maintained permutation (what every
                # cycle actually pays after mutations) against the cold
                # per-slot rebuild it replaced.  The store is this
                # module's own internals — the probe bypasses the pool's
                # snapshot cache on purpose, since a cached hit times
                # nothing.
                tick = perf_counter()
                pool._store.snapshot()
                incremental_seconds += perf_counter() - tick
                tick = perf_counter()
                SlotArrays.from_slots(list(pool))
                rebuild_seconds += perf_counter() - tick
                snapshot_samples += 1
        broker.drain()
        stats = broker.stats
        final_time = broker.now
        outlook_view = broker.outlook.snapshot()
    elapsed = perf_counter() - started

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------
    cycles = probe.wall_seconds
    if len(cycles) < 20 or snapshot_samples < 2 or len(rss_samples) < 2:
        raise SoakGateError(
            f"run too short to gate: {len(cycles)} cycles, "
            f"{snapshot_samples} snapshot samples — raise jobs or lower "
            f"sample_every"
        )
    warmup_cycles = int(len(cycles) * warmup_fraction)
    steady = cycles[warmup_cycles:]
    steady_rss = rss_samples[int(len(rss_samples) * warmup_fraction):]
    first_cycles, last_cycles = _decile_split(steady)
    p99_first = percentile(first_cycles, 0.99)
    p99_last = percentile(last_cycles, 0.99)
    p99_ratio = p99_last / p99_first if p99_first > 0 else float("inf")
    if p99_ratio > max_p99_ratio:
        raise SoakGateError(
            f"p99 cycle latency drifted: first decile {p99_first * 1e3:.3f}ms "
            f"-> last decile {p99_last * 1e3:.3f}ms "
            f"({p99_ratio:.2f}x > {max_p99_ratio}x)"
        )
    first_rss, last_rss = _decile_split(steady_rss)
    rss_first = sum(first_rss) / len(first_rss)
    rss_last = sum(last_rss) / len(last_rss)
    rss_ratio = rss_last / rss_first if rss_first > 0 else float("inf")
    if rss_ratio > max_rss_ratio:
        raise SoakGateError(
            f"RSS grew: first decile {rss_first / 1e6:.1f}MB -> last decile "
            f"{rss_last / 1e6:.1f}MB ({rss_ratio:.2f}x > {max_rss_ratio}x)"
        )
    snapshot_speedup = (
        rebuild_seconds / incremental_seconds
        if incremental_seconds > 0
        else float("inf")
    )
    if snapshot_speedup < min_speedup:
        raise SoakGateError(
            f"incremental snapshot only {snapshot_speedup:.2f}x faster than "
            f"a per-cycle rebuild (gate {min_speedup}x) over "
            f"{snapshot_samples} paired samples"
        )
    scan_delta = {
        key: scan_counters[key] - scan_before.get(key, 0) for key in scan_counters
    }
    if scan_delta.get("vectorized", 0) <= 0:
        raise SoakGateError(
            f"scan kernel never dispatched vectorized during the soak: "
            f"{scan_delta}"
        )

    return {
        "bench": "soak",
        "config": {
            "jobs": jobs,
            "node_count": node_count,
            "rate": rate,
            "seed": seed,
            "lead": lead,
            "stride": stride,
            "batch_size": batch_size,
            "criterion": service.criterion.value,
            "amp_policy": amp_policy,
            "sample_every": sample_every,
            "warmup_fraction": warmup_fraction,
        },
        "gates": {
            "min_speedup": min_speedup,
            "max_p99_ratio": max_p99_ratio,
            "max_rss_ratio": max_rss_ratio,
            "warmup_cycles_excluded": warmup_cycles,
        },
        "host": host_payload(parallel_target=1),
        "elapsed_s": round(elapsed, 3),
        "jobs_per_s": round(jobs / elapsed, 1) if elapsed else None,
        "virtual": {
            "final_time": round(final_time, 3),
            "segments_published": source.segments_published,
            "slots_published": stats.slots_published,
            "pool_size_mean": (
                round(sum(pool_sizes) / len(pool_sizes), 1) if pool_sizes else 0.0
            ),
            "pool_size_max": max(pool_sizes) if pool_sizes else 0,
        },
        "counts": {
            "submitted": stats.submitted,
            "admitted": stats.admitted,
            "rejected": stats.rejected,
            "scheduled": stats.scheduled,
            "dropped": stats.dropped,
            "retired": stats.retired,
            "cycles": stats.cycles,
        },
        "cycle_latency_ms": {
            "p99_first_decile": round(p99_first * 1e3, 3),
            "p99_last_decile": round(p99_last * 1e3, 3),
            "p99_ratio": round(p99_ratio, 3),
            "p50_overall": round(percentile(cycles, 0.50) * 1e3, 3),
            "p99_overall": round(percentile(cycles, 0.99) * 1e3, 3),
        },
        "rss_mb": {
            "first_decile": round(rss_first / 1e6, 1),
            "last_decile": round(rss_last / 1e6, 1),
            "ratio": round(rss_ratio, 3),
            "samples": len(rss_samples),
        },
        "snapshot": {
            "samples": snapshot_samples,
            "incremental_us_mean": round(
                incremental_seconds / snapshot_samples * 1e6, 2
            ),
            "rebuild_us_mean": round(rebuild_seconds / snapshot_samples * 1e6, 2),
            "speedup": round(snapshot_speedup, 2),
        },
        "scan_kernel": scan_delta,
        "outlook": outlook_view,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.service.soak`` entry point."""
    payload = bench_soak()
    json.dump(payload, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
