"""Admission control: reject at the door what can never be scheduled.

The broker's queue is a shared, bounded resource; admitting a job whose
budget ``S = F·t_s·n`` cannot be met by *any* window over the current
pool only burns cycles deferring it.  The feasibility test here is a
lower bound — per matching node, the cheapest cost that node could
charge for the job's task — so it never rejects a schedulable job, and
rejects with a precise reason everything structurally hopeless:
duplicate ids, more nodes than the pool offers, budgets below the
``n`` cheapest usable nodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import AbstractSet, Optional

from repro.model.job import Job, ResourceRequest
from repro.model.slot import TIME_EPSILON
from repro.model.slotpool import SlotPool
from repro.model.window import COST_EPSILON
from repro.service.events import EventEmitter, EventType


class RejectionReason(enum.Enum):
    """Why a submission was turned away."""

    QUEUE_FULL = "queue_full"
    DUPLICATE_ID = "duplicate_id"
    TOO_FEW_NODES = "too_few_nodes"
    BUDGET_INFEASIBLE = "budget_infeasible"


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of admission control for one submission."""

    admitted: bool
    reason: Optional[RejectionReason] = None
    detail: str = ""

    def __bool__(self) -> bool:
        return self.admitted

    @classmethod
    def accept(cls) -> "AdmissionDecision":
        return cls(admitted=True)

    @classmethod
    def reject(cls, reason: RejectionReason, detail: str = "") -> "AdmissionDecision":
        return cls(admitted=False, reason=reason, detail=detail)


def cheapest_feasible_cost(request: ResourceRequest, pool: SlotPool) -> Optional[float]:
    """Lower bound on the cost of any window for ``request`` over ``pool``.

    For every node that matches the hardware/price filter and has at least
    one slot long enough to host the task, the node's task cost is fixed
    (``price · duration``); the cheapest possible window therefore costs
    at least the sum over the ``n`` cheapest such nodes.  Returns ``None``
    when fewer than ``n`` usable nodes exist (no window can ever form,
    regardless of budget).
    """
    best_by_node: dict[int, float] = {}
    for slot in pool:
        node = slot.node
        if not request.node_matches(node):
            continue
        duration = request.task_runtime_on(node)
        if slot.length < duration - TIME_EPSILON:
            continue
        cost = node.usage_cost(duration)
        known = best_by_node.get(node.node_id)
        if known is None or cost < known:
            best_by_node[node.node_id] = cost
    if len(best_by_node) < request.node_count:
        return None
    return sum(sorted(best_by_node.values())[: request.node_count])


class AdmissionController:
    """Validates submissions against the queue and the current pool.

    Parameters
    ----------
    strict_budget:
        When ``True`` (default), reject jobs whose budget is below the
        cheapest-possible window cost over the current pool.  Disabling
        keeps only the structural checks (duplicates, queue bound, node
        count), which admits more but defers more.
    emitter:
        Optional event emitter; every verdict is traced as ``ADMITTED``
        or ``REJECTED{reason}``.
    """

    def __init__(
        self, strict_budget: bool = True, emitter: Optional[EventEmitter] = None
    ):
        self.strict_budget = strict_budget
        self._emitter = emitter if emitter is not None else EventEmitter()

    def evaluate(
        self,
        job: Job,
        pool: SlotPool,
        queue_depth: int,
        queue_capacity: int,
        known_ids: AbstractSet[str],
    ) -> AdmissionDecision:
        """Admit or reject one submission (called under the broker lock)."""
        decision = self._decide(job, pool, queue_depth, queue_capacity, known_ids)
        if decision.admitted:
            self._emitter.emit(EventType.ADMITTED, job_id=job.job_id)
        else:
            assert decision.reason is not None
            self._emitter.emit(
                EventType.REJECTED,
                job_id=job.job_id,
                reason=decision.reason.value,
            )
        return decision

    def _decide(
        self,
        job: Job,
        pool: SlotPool,
        queue_depth: int,
        queue_capacity: int,
        known_ids: AbstractSet[str],
    ) -> AdmissionDecision:
        if queue_depth >= queue_capacity:
            return AdmissionDecision.reject(
                RejectionReason.QUEUE_FULL,
                f"queue holds {queue_depth}/{queue_capacity} jobs",
            )
        if job.job_id in known_ids:
            return AdmissionDecision.reject(
                RejectionReason.DUPLICATE_ID,
                f"job id {job.job_id!r} is already queued or running",
            )
        request = job.request
        lower_bound = cheapest_feasible_cost(request, pool)
        if lower_bound is None:
            return AdmissionDecision.reject(
                RejectionReason.TOO_FEW_NODES,
                f"request needs {request.node_count} matching nodes; "
                f"the pool cannot host that many",
            )
        budget = request.effective_budget
        if self.strict_budget and lower_bound > budget * (1.0 + COST_EPSILON) + COST_EPSILON:
            return AdmissionDecision.reject(
                RejectionReason.BUDGET_INFEASIBLE,
                f"cheapest possible window costs {lower_bound:.1f}, "
                f"budget is {budget:.1f}",
            )
        return AdmissionDecision.accept()
