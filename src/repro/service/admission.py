"""Admission control: reject at the door what can never be scheduled.

The broker's queue is a shared, bounded resource; admitting a job whose
budget ``S = F·t_s·n`` cannot be met by *any* window over the current
pool only burns cycles deferring it.  The feasibility test here is a
lower bound — per matching node, the cheapest cost that node could
charge for the job's task — so it never rejects a schedulable job, and
rejects with a precise reason everything structurally hopeless:
duplicate ids, more nodes than the pool offers, budgets below the
``n`` cheapest usable nodes.

The lower bound is evaluated on the pool's columnar snapshot
(:meth:`~repro.model.SlotPool.as_arrays`) with numpy column arithmetic
and memoized per (snapshot, request shape): a burst of submissions
between cycles — when the pool's generation is unchanged — pays the
per-node analysis once, not once per job.  The arithmetic performs the
same IEEE operations as the per-slot object loop
(:func:`cheapest_feasible_cost_reference`), so the verdicts are
*identical*, not merely close (property-tested).

:class:`AdmissionOutlook` adds the warm-start layer: exponentially
decayed per-criterion fit-probability and queue-wait estimates from
recent cycle outcomes.  With ``min_fit`` enabled, admission uses that
outlook instead of a cold "the queue will sort it out" heuristic —
jobs arriving while the broker demonstrably fails to place its batches
are turned away at the door (``PREDICTED_MISS``) rather than deferred
to death.  The gate defaults to off, keeping decision streams
byte-identical to brokers without the layer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import AbstractSet, Optional

import numpy as np

from repro.model.job import Job, ResourceRequest
from repro.model.slot import TIME_EPSILON
from repro.model.slotarrays import SlotArrays
from repro.model.slotpool import SlotPool
from repro.model.window import COST_EPSILON
from repro.service.events import EventEmitter, EventType

#: Bound on the per-snapshot admission memo (distinct request shapes
#: seen against one pool generation; FIFO-evicted beyond this).
ADMISSION_CACHE_LIMIT = 64


class RejectionReason(enum.Enum):
    """Why a submission was turned away."""

    QUEUE_FULL = "queue_full"
    DUPLICATE_ID = "duplicate_id"
    TOO_FEW_NODES = "too_few_nodes"
    BUDGET_INFEASIBLE = "budget_infeasible"
    PREDICTED_MISS = "predicted_miss"
    INSUFFICIENT_CREDIT = "insufficient_credit"


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of admission control for one submission."""

    admitted: bool
    reason: Optional[RejectionReason] = None
    detail: str = ""

    def __bool__(self) -> bool:
        return self.admitted

    @classmethod
    def accept(cls) -> "AdmissionDecision":
        return cls(admitted=True)

    @classmethod
    def reject(cls, reason: RejectionReason, detail: str = "") -> "AdmissionDecision":
        return cls(admitted=False, reason=reason, detail=detail)


def cheapest_feasible_cost_reference(
    request: ResourceRequest, pool: SlotPool
) -> Optional[float]:
    """Per-slot object-loop twin of :func:`cheapest_feasible_cost`.

    The pre-vectorization implementation, kept as the equivalence
    baseline: the property suite asserts the columnar path returns the
    *same* float (or the same ``None``) for arbitrary pools and request
    shapes.
    """
    best_by_node: dict[int, float] = {}
    for slot in pool:
        node = slot.node
        if not request.node_matches(node):
            continue
        duration = request.task_runtime_on(node)
        if slot.length < duration - TIME_EPSILON:
            continue
        cost = node.usage_cost(duration)
        known = best_by_node.get(node.node_id)
        if known is None or cost < known:
            best_by_node[node.node_id] = cost
    if len(best_by_node) < request.node_count:
        return None
    return sum(sorted(best_by_node.values())[: request.node_count])


def _admission_key(request: ResourceRequest) -> tuple:
    """The request fields the usable-node cost analysis depends on.

    Deliberately excludes ``node_count`` and budget: the memoized value
    is the *sorted usable-node cost list*, from which any ``n``-cheapest
    prefix sum is derived per call.
    """
    return (
        request.reservation_time,
        request.reference_performance,
        request.min_performance,
        request.min_clock_speed,
        request.min_ram,
        request.min_disk,
        request.required_os,
        request.max_price_per_unit,
    )


def _usable_node_costs(arrays: SlotArrays, request: ResourceRequest) -> list[float]:
    """Sorted task costs of the nodes that could host one leg (memoized).

    A node qualifies when it passes the hardware/price filter and owns
    at least one slot long enough for its task duration.  Every float
    is produced by the same IEEE operation as the object loop:
    elementwise ``*``/``/``/``-`` match their scalar counterparts, and
    the usability comparison is the exact complement of the loop's
    ``slot.length < duration - TIME_EPSILON`` skip.
    """
    cache = getattr(arrays, "_admission_cache", None)
    if cache is None:
        cache = {}
        arrays._admission_cache = cache
    key = _admission_key(request)
    costs = cache.get(key)
    if costs is not None:
        return costs
    duration = (
        request.reservation_time * request.reference_performance
    ) / arrays.performance
    lengths = arrays.end - arrays.start
    usable = ~(lengths < (duration[arrays.node_row] - TIME_EPSILON))
    hosts = np.zeros(arrays.node_count, dtype=bool)
    hosts[arrays.node_row[usable]] = True
    hosts &= arrays.match_mask(request)
    costs_array = np.sort(arrays.price[hosts] * duration[hosts])
    costs = [float(cost) for cost in costs_array]
    if len(cache) >= ADMISSION_CACHE_LIMIT:
        cache.pop(next(iter(cache)))
    cache[key] = costs
    return costs


def cheapest_feasible_cost(request: ResourceRequest, pool: SlotPool) -> Optional[float]:
    """Lower bound on the cost of any window for ``request`` over ``pool``.

    For every node that matches the hardware/price filter and has at least
    one slot long enough to host the task, the node's task cost is fixed
    (``price · duration``); the cheapest possible window therefore costs
    at least the sum over the ``n`` cheapest such nodes.  Returns ``None``
    when fewer than ``n`` usable nodes exist (no window can ever form,
    regardless of budget).

    Served from the pool's columnar snapshot with a per-(generation,
    request-shape) memo — the snapshot object is reused until the pool
    mutates, so bursts of submissions between cycles amortize the
    per-node analysis to one numpy pass.
    """
    costs = _usable_node_costs(pool.as_arrays(), request)
    if len(costs) < request.node_count:
        return None
    # Ascending sequential sum — float-identical to the object loop's
    # ``sum(sorted(...)[:n])`` (equal values commute bitwise).
    total = 0.0
    for cost in costs[: request.node_count]:
        total += cost
    return total


class AdmissionOutlook:
    """Exponentially decayed warm-start statistics from recent cycles.

    The broker reports every cycle's outcome per criterion: how many
    jobs the batch held, how many were placed, and how long the batch
    had waited in the queue.  The outlook folds those into decayed
    means — ``fit``, the probability a batched job gets a window, and
    ``wait``, the queue latency a new arrival should expect — so the
    admission controller can consult the broker's *demonstrated* recent
    ability instead of a cold heuristic.  Decay ``d`` gives cycle ``k``
    ago weight ``d^k`` (an exponential window: ~``1/(1-d)`` effective
    cycles), so a backlogged phase fades within tens of cycles once
    conditions recover.

    Statistics are keyed per criterion: a process serving several
    brokers with different phase-two policies (a federation) keeps
    their evidence separate, since fit probability under ``MinCost``
    says nothing about ``MinFinish``.
    """

    def __init__(self, decay: float = 0.85):
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        self.decay = decay
        #: criterion key -> [decayed weight, decayed fit sum, decayed
        #: wait sum, cycles observed]
        self._by_criterion: dict[str, list[float]] = {}

    def observe_cycle(
        self, criterion: str, batched: int, scheduled: int, mean_wait: float
    ) -> None:
        """Fold one cycle's outcome into the decayed estimates.

        Empty batches carry no placement evidence and are skipped — a
        quiet broker keeps its last informed outlook rather than
        decaying toward optimism.
        """
        if batched <= 0:
            return
        state = self._by_criterion.get(criterion)
        if state is None:
            state = [0.0, 0.0, 0.0, 0.0]
            self._by_criterion[criterion] = state
        fit = scheduled / batched
        decay = self.decay
        state[0] = state[0] * decay + 1.0
        state[1] = state[1] * decay + fit
        state[2] = state[2] * decay + mean_wait
        state[3] += 1.0

    def cycles_observed(self, criterion: str) -> int:
        """Number of non-empty cycles folded in for ``criterion``."""
        state = self._by_criterion.get(criterion)
        return int(state[3]) if state is not None else 0

    def fit_probability(self, criterion: str) -> Optional[float]:
        """Decayed probability a batched job is placed; ``None`` if cold."""
        state = self._by_criterion.get(criterion)
        if state is None or state[0] <= 0.0:
            return None
        return state[1] / state[0]

    def predicted_wait(self, criterion: str) -> Optional[float]:
        """Decayed mean queue wait (virtual time); ``None`` if cold."""
        state = self._by_criterion.get(criterion)
        if state is None or state[0] <= 0.0:
            return None
        return state[2] / state[0]

    def snapshot(self) -> dict[str, dict[str, float]]:
        """JSON-friendly per-criterion view of the current estimates."""
        view: dict[str, dict[str, float]] = {}
        for criterion in self._by_criterion:
            view[criterion] = {
                "fit_probability": round(self.fit_probability(criterion) or 0.0, 6),
                "predicted_wait": round(self.predicted_wait(criterion) or 0.0, 6),
                "cycles_observed": self.cycles_observed(criterion),
            }
        return view


class AdmissionController:
    """Validates submissions against the queue and the current pool.

    Parameters
    ----------
    strict_budget:
        When ``True`` (default), reject jobs whose budget is below the
        cheapest-possible window cost over the current pool.  Disabling
        keeps only the structural checks (duplicates, queue bound, node
        count), which admits more but defers more.
    emitter:
        Optional event emitter; every verdict is traced as ``ADMITTED``
        or ``REJECTED{reason}``.
    outlook:
        Optional :class:`AdmissionOutlook` consulted for warm-start
        verdicts; requires ``criterion`` to select the evidence stream.
    min_fit:
        Predictive gate threshold: once the outlook has evidence
        (``min_fit_cycles`` non-empty cycles), jobs are rejected with
        ``PREDICTED_MISS`` while the decayed fit probability sits below
        this value.  ``0.0`` (default) disables the gate entirely, so
        decision streams stay byte-identical to pre-outlook brokers.
    min_fit_cycles:
        Evidence floor before the predictive gate may fire — a single
        unlucky first cycle must not slam the door.
    """

    def __init__(
        self,
        strict_budget: bool = True,
        emitter: Optional[EventEmitter] = None,
        outlook: Optional[AdmissionOutlook] = None,
        criterion: str = "",
        min_fit: float = 0.0,
        min_fit_cycles: int = 3,
    ):
        self.strict_budget = strict_budget
        self._emitter = emitter if emitter is not None else EventEmitter()
        self.outlook = outlook
        self.criterion = criterion
        self.min_fit = min_fit
        self.min_fit_cycles = min_fit_cycles

    def evaluate(
        self,
        job: Job,
        pool: SlotPool,
        queue_depth: int,
        queue_capacity: int,
        known_ids: AbstractSet[str],
        price_multiplier: float = 1.0,
        credit_balance: Optional[float] = None,
    ) -> AdmissionDecision:
        """Admit or reject one submission (called under the broker lock).

        ``price_multiplier`` scales the cheapest-feasible lower bound to
        live prices; ``credit_balance``, when given, additionally gates
        on the tenant's ability to pay that bound (tenancy layer).
        """
        decision = self._decide(
            job,
            pool,
            queue_depth,
            queue_capacity,
            known_ids,
            price_multiplier,
            credit_balance,
        )
        if decision.admitted:
            self._emitter.emit(EventType.ADMITTED, job_id=job.job_id)
        else:
            assert decision.reason is not None
            if decision.reason is RejectionReason.INSUFFICIENT_CREDIT:
                lower_bound = cheapest_feasible_cost(job.request, pool) or 0.0
                self._emitter.emit(
                    EventType.INSUFFICIENT_CREDIT,
                    job_id=job.job_id,
                    tenant=job.owner,
                    required=lower_bound * price_multiplier,
                    balance=credit_balance if credit_balance is not None else 0.0,
                )
            self._emitter.emit(
                EventType.REJECTED,
                job_id=job.job_id,
                reason=decision.reason.value,
            )
        return decision

    def _decide(
        self,
        job: Job,
        pool: SlotPool,
        queue_depth: int,
        queue_capacity: int,
        known_ids: AbstractSet[str],
        price_multiplier: float = 1.0,
        credit_balance: Optional[float] = None,
    ) -> AdmissionDecision:
        if queue_depth >= queue_capacity:
            return AdmissionDecision.reject(
                RejectionReason.QUEUE_FULL,
                f"queue holds {queue_depth}/{queue_capacity} jobs",
            )
        if job.job_id in known_ids:
            return AdmissionDecision.reject(
                RejectionReason.DUPLICATE_ID,
                f"job id {job.job_id!r} is already queued or running",
            )
        request = job.request
        lower_bound = cheapest_feasible_cost(request, pool)
        if lower_bound is None:
            return AdmissionDecision.reject(
                RejectionReason.TOO_FEW_NODES,
                f"request needs {request.node_count} matching nodes; "
                f"the pool cannot host that many",
            )
        budget = request.effective_budget
        live_bound = lower_bound * price_multiplier
        if self.strict_budget and live_bound > budget * (1.0 + COST_EPSILON) + COST_EPSILON:
            return AdmissionDecision.reject(
                RejectionReason.BUDGET_INFEASIBLE,
                f"cheapest possible window costs {live_bound:.1f} at live "
                f"prices, budget is {budget:.1f}",
            )
        if (
            credit_balance is not None
            and live_bound > credit_balance * (1.0 + COST_EPSILON) + COST_EPSILON
        ):
            return AdmissionDecision.reject(
                RejectionReason.INSUFFICIENT_CREDIT,
                f"cheapest possible window costs {live_bound:.1f} at live "
                f"prices, tenant {job.owner!r} holds {credit_balance:.1f} "
                "credits",
            )
        if self.min_fit > 0.0 and self.outlook is not None:
            if self.outlook.cycles_observed(self.criterion) >= self.min_fit_cycles:
                fit = self.outlook.fit_probability(self.criterion)
                if fit is not None and fit < self.min_fit:
                    return AdmissionDecision.reject(
                        RejectionReason.PREDICTED_MISS,
                        f"recent cycles place {fit:.0%} of batched jobs "
                        f"under {self.criterion or 'the current criterion'}; "
                        f"gate requires {self.min_fit:.0%}",
                    )
        return AdmissionDecision.accept()
